//! Property-based credential-lifecycle invariants: certificates never
//! validate outside their window for any (issue, TTL, probe) triple,
//! revocation is immediate and irreversible under arbitrary op interleavings,
//! and minted token material never collides at portal scale.

use eus_fedauth::{
    BrokerPolicy, CertificateAuthority, CredentialBroker, IdentityProvider, RealmId, SignedToken,
};
use eus_simcore::{SimDuration, SimTime};
use eus_simos::{Uid, UserDb};
use hpc_user_separation::portal::PortalAuth;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// A certificate is valid exactly on `[issued, issued + ttl)` — never
    /// before, never at or after expiry — for any triple of times.
    #[test]
    fn certs_never_validate_outside_their_window(
        issued_s in 0u64..100_000,
        ttl_s in 1u64..10_000,
        probe_s in 0u64..120_000,
    ) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let idp = IdentityProvider::new(RealmId(1), 1);
        let mut ca = CertificateAuthority::new(RealmId(1), 1)
            .with_cert_ttl(SimDuration::from_secs(ttl_s));

        let issued = SimTime::from_secs(issued_s);
        let assertion = idp.assert_identity(&db, alice, None, issued).unwrap();
        let cert = ca.mint_cert(&assertion, issued);

        let probe = SimTime::from_secs(probe_s);
        let inside = probe_s >= issued_s && probe_s < issued_s + ttl_s;
        prop_assert_eq!(
            ca.verify_cert(&cert, probe).is_ok(),
            inside,
            "issued={}s ttl={}s probe={}s",
            issued_s,
            ttl_s,
            probe_s
        );
    }

    /// For any interleaving of logins, revocations, clock advances, and
    /// checks: a token captured before its revocation never validates
    /// afterwards — not even after the user re-authenticates.
    #[test]
    fn revocation_is_immediate_and_irreversible(
        ops in proptest::collection::vec((0u8..4, 0u8..3), 1..60)
    ) {
        let mut db = UserDb::new();
        let users: Vec<Uid> = (0..3)
            .map(|i| db.create_user(&format!("u{i}")).unwrap())
            .collect();
        let mut broker = CredentialBroker::new(RealmId(1), 2, BrokerPolicy::default());
        // Every token ever minted, with whether its serial was revoked.
        let mut captured: Vec<(SignedToken, bool)> = Vec::new();
        let mut clock = SimTime::ZERO;

        for (action, subject) in ops {
            let user = users[subject as usize];
            match action {
                0 => {
                    let t = broker.login(&db, user, None).unwrap();
                    captured.push((t, false));
                }
                1 => {
                    if let Some(live) = broker.current_token(user) {
                        broker.revoke_user(user);
                        for (t, revoked) in captured.iter_mut() {
                            if t.serial == live.serial {
                                *revoked = true;
                            }
                        }
                    }
                }
                2 => {
                    clock += SimDuration::from_secs(60);
                    broker.advance_to(clock);
                }
                _ => {}
            }
            // Invariant after every step: revoked serials never validate.
            for (t, revoked) in &captured {
                if *revoked {
                    prop_assert!(
                        broker.validate_token(t).is_err(),
                        "revoked {} accepted",
                        t.serial
                    );
                }
            }
        }
    }
}

#[test]
fn ten_thousand_logins_never_collide() {
    let mut db = UserDb::new();
    let alice = db.create_user("alice").unwrap();

    // Broker-issued tokens: serials and bearer material all distinct.
    let mut broker = CredentialBroker::new(RealmId(1), 3, BrokerPolicy::default());
    let mut serials = std::collections::BTreeSet::new();
    let mut materials = std::collections::BTreeSet::new();
    for _ in 0..10_000 {
        let t = broker.login(&db, alice, None).unwrap();
        assert!(serials.insert(t.serial), "serial reuse at {}", t.serial);
        assert!(materials.insert(t.material), "material collision");
    }

    // Portal-local tokens (no broker): same guarantee.
    let mut auth = PortalAuth::new();
    let mut tokens = std::collections::BTreeSet::new();
    for _ in 0..10_000 {
        let t = auth.login(&db, alice).unwrap();
        assert!(tokens.insert(t), "portal token collision");
    }
    assert_eq!(auth.live_sessions(), 10_000);
}

#[test]
fn expired_sessions_sweep_cleanly_at_scale() {
    let mut db = UserDb::new();
    let alice = db.create_user("alice").unwrap();
    let mut auth = PortalAuth::new().with_ttl(SimDuration::from_secs(100));
    let early: Vec<_> = (0..50).map(|_| auth.login(&db, alice).unwrap()).collect();
    auth.advance_to(SimTime::from_secs(50));
    let late: Vec<_> = (0..50).map(|_| auth.login(&db, alice).unwrap()).collect();

    auth.advance_to(SimTime::from_secs(120));
    assert_eq!(auth.sweep_expired(), 50, "only the early batch expired");
    for t in early {
        assert!(auth.whoami(t).is_err());
    }
    for t in late {
        assert!(auth.whoami(t).is_ok());
    }
}
