//! Observational equivalence: the optimized scheduler (incremental
//! placement index, capacity-vector EASY shadow, order-indexed queue) must
//! behave **identically** to the retained scan-the-world reference
//! implementation — same start times, same placements, same epilogs, same
//! squeue views — over random traces × every `NodeSharing` policy, with
//! backfill on and off, node failures injected, partitions configured, and
//! per-job `--exclusive` requests mixed in.
//!
//! The two engines share job/node/policy types, so any divergence is in the
//! scheduling data structures themselves — exactly what this suite guards.

use hpc_user_separation::obs::ObsConfig;
use hpc_user_separation::sched::{
    JobSpec, JobState, NodeSharing, PrivateData, QosClass, ReferenceScheduler, SchedConfig,
    Scheduler,
};
use hpc_user_separation::simcore::{SimDuration, SimRng, SimTime};
use hpc_user_separation::simos::{Credentials, Gid, NodeId, Uid, UserDb};
use hpc_user_separation::workloads::{UserPopulation, WorkloadMix};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::Arc;

/// Per-property case count; CI can raise it via `SCHED_PROPTEST_CASES`.
fn cases(default: u32) -> u32 {
    std::env::var("SCHED_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn policy_from(i: u8) -> NodeSharing {
    match i % 3 {
        0 => NodeSharing::Shared,
        1 => NodeSharing::Exclusive,
        _ => NodeSharing::WholeNodeUser,
    }
}

/// A randomized trace decorated with the request shapes the engines must
/// agree on: per-job `--exclusive`, tight wall-time limits (Timeout path +
/// backfill bounds), QoS classes (carried but inert with the policy plane
/// off — the default config under test), and partition routing (including
/// a submit-time reject).
fn decorated_trace(seed: u64, with_partitions: bool) -> Vec<(SimTime, Arc<JobSpec>)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, 10, 3, 1.0, &mut rng);
    let trace = WorkloadMix::llsc_like().generate(&pop, SimTime::from_secs(900), &mut rng);
    trace
        .entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let mut spec = e.spec.clone();
            if i % 7 == 3 {
                spec.request_exclusive = true;
            }
            spec.qos = match i % 9 {
                0..=4 => QosClass::Bulk,
                5 | 6 => QosClass::Normal,
                7 => QosClass::Interactive,
                _ => QosClass::Urgent,
            };
            if i % 11 == 5 {
                // Requested limit under the true runtime: slurmstepd kills
                // at the limit (and backfill reasons over the limit).
                spec.time_limit =
                    SimDuration::from_secs_f64((spec.duration.as_secs_f64() / 2.0).max(1.0));
            }
            if with_partitions {
                spec.partition = match i % 6 {
                    0 => Some("batch".to_string()),
                    1 => Some("debug".to_string()),
                    2 if i % 36 == 2 => Some("nope".to_string()), // rejected at submit
                    _ => None,
                };
            }
            (e.at, Arc::new(spec))
        })
        .collect()
}

struct Pair {
    opt: Scheduler,
    reference: ReferenceScheduler,
}

fn build_pair(
    policy: NodeSharing,
    nodes: u32,
    cores: u32,
    gpus: u32,
    backfill: bool,
    with_partitions: bool,
    private_data: PrivateData,
) -> Pair {
    let config = SchedConfig {
        policy,
        backfill,
        private_data,
        ..SchedConfig::default()
    };
    let mut opt = Scheduler::new(config.clone());
    let mut reference = ReferenceScheduler::new(config);
    for _ in 0..nodes {
        opt.add_node(cores, 65_536, gpus);
        reference.add_node(cores, 65_536, gpus);
    }
    if with_partitions {
        let half = nodes / 2;
        let batch: Vec<NodeId> = (1..=half).map(NodeId).collect();
        let debug: Vec<NodeId> = (half + 1..=nodes).map(NodeId).collect();
        opt.partitions_mut()
            .add("batch", batch.clone(), true)
            .unwrap();
        opt.partitions_mut()
            .add("debug", debug.clone(), false)
            .unwrap();
        reference.partitions.add("batch", batch, true).unwrap();
        reference.partitions.add("debug", debug, false).unwrap();
    }
    Pair { opt, reference }
}

/// Drive both schedulers through the same trace + failure schedule and
/// assert identical observable behavior, both in lockstep (squeue views,
/// counts) and at the end (states, start/end times, placements, epilogs).
///
/// Both engines run with their flight recorders on (the optimized engine
/// via full `enable_obs`, so every green run here is also a proof that
/// instrumentation does not perturb scheduling decisions). On any
/// divergence the last events of **both** recorders are printed —
/// replayable forensics instead of an opaque mismatch. Set
/// `SCHED_EQUIV_FORCE_FAIL=1` to force a failure and see the tails.
fn assert_equivalent(
    seed: u64,
    policy: NodeSharing,
    nodes: u32,
    backfill: bool,
    failures: u32,
    with_partitions: bool,
) -> Result<(), TestCaseError> {
    // Odd seeds run with the paper's PrivateData filtering, so the squeue
    // comparison also covers whole-row redaction.
    let private_data = if seed % 2 == 1 {
        PrivateData::llsc()
    } else {
        PrivateData::open()
    };
    let mut pair = build_pair(
        policy,
        nodes,
        16,
        2,
        backfill,
        with_partitions,
        private_data,
    );
    pair.opt
        .enable_obs(ObsConfig::enabled().with_flight_capacity(256));
    pair.reference.enable_flight(256);
    let result = drive_pair(&mut pair, seed, nodes, failures, with_partitions);
    if result.is_err() {
        eprintln!(
            "{}",
            pair.opt.obs.rec.flight.render_tail("optimized engine", 48)
        );
        if let Some(fr) = &pair.reference.flight {
            eprintln!("{}", fr.render_tail("reference engine", 48));
        }
    }
    result
}

fn drive_pair(
    pair: &mut Pair,
    seed: u64,
    nodes: u32,
    failures: u32,
    with_partitions: bool,
) -> Result<(), TestCaseError> {
    let trace = decorated_trace(seed, with_partitions);
    for (at, spec) in &trace {
        let a = pair.opt.submit_at_shared(*at, Arc::clone(spec));
        let b = pair.reference.submit_at_shared(*at, Arc::clone(spec));
        prop_assert_eq!(a, b, "job ids assigned in lockstep");
    }
    let mut frng = SimRng::seed_from_u64(seed ^ 0xfa11);
    for _ in 0..failures {
        let at = SimTime::from_secs(frng.range_u64(1, 900));
        let node = NodeId(frng.range_u64(1, nodes as u64 + 1) as u32);
        pair.opt.schedule_node_failure(at, node);
        pair.reference.schedule_node_failure(at, node);
    }

    // Lockstep advance, comparing live views along the way.
    let viewers = [Credentials::new(Uid(1001), Gid(2001)), Credentials::root()];
    let mut t = 0u64;
    loop {
        t += 157;
        let horizon = SimTime::from_secs(t);
        pair.opt.run_until(horizon);
        pair.reference.run_until(horizon);
        prop_assert_eq!(pair.opt.pending_count(), pair.reference.pending_count());
        prop_assert_eq!(pair.opt.running_count(), pair.reference.running_count());
        for v in &viewers {
            prop_assert_eq!(pair.opt.squeue(v), pair.reference.squeue(v), "squeue views");
        }
        if pair.opt.pending_count() == 0 && pair.opt.running_count() == 0 && t > 900 {
            break;
        }
        // A job too big for its (Exclusive-policy) partition pends forever
        // — in both schedulers. All genuine activity is over long before
        // this horizon (arrivals ≤900s, durations ≤4h, repairs 600s).
        if t > 40_000 {
            prop_assert_eq!(pair.opt.running_count(), 0, "no runaway jobs");
            break;
        }
    }
    let end_opt = pair.opt.run_to_completion();
    let end_ref = pair.reference.run_to_completion();
    prop_assert_eq!(end_opt, end_ref, "identical makespan");

    // Full per-job comparison: states, times, placements.
    prop_assert_eq!(pair.opt.jobs.len(), pair.reference.jobs.len());
    for (id, a) in &pair.opt.jobs {
        let b = &pair.reference.jobs[id];
        prop_assert_eq!(a.state, b.state, "state of {}", id);
        prop_assert_eq!(a.submitted, b.submitted);
        prop_assert_eq!(a.started, b.started, "start time of {}", id);
        prop_assert_eq!(a.ended, b.ended, "end time of {}", id);
        prop_assert_eq!(&a.allocations, &b.allocations, "placement of {}", id);
    }
    // Epilog streams (order matters: the cluster layer consumes them).
    prop_assert_eq!(pair.opt.drain_epilogs(), pair.reference.drain_epilogs());
    // Failure records.
    prop_assert_eq!(pair.opt.failures.len(), pair.reference.failures.len());
    for (fa, fb) in pair.opt.failures.iter().zip(pair.reference.failures.iter()) {
        prop_assert_eq!(fa.node, fb.node);
        prop_assert_eq!(fa.at, fb.at);
        prop_assert_eq!(&fa.failed_jobs, &fb.failed_jobs);
    }
    // Aggregate metrics.
    prop_assert_eq!(
        pair.opt.metrics.completed.get(),
        pair.reference.metrics.completed.get()
    );
    prop_assert_eq!(
        pair.opt.metrics.failed.get(),
        pair.reference.metrics.failed.get()
    );
    prop_assert_eq!(
        pair.opt.metrics.timed_out.get(),
        pair.reference.metrics.timed_out.get()
    );
    prop_assert_eq!(
        pair.opt.metrics.wait_times.len(),
        pair.reference.metrics.wait_times.len()
    );
    // Forced-failure hook: proves the flight tails actually print on a red
    // run (`SCHED_EQUIV_FORCE_FAIL=1 cargo test --test sched_equivalence`).
    if std::env::var_os("SCHED_EQUIV_FORCE_FAIL").is_some() {
        prop_assert!(
            false,
            "forced failure via SCHED_EQUIV_FORCE_FAIL — flight-recorder tails follow"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(12), ..ProptestConfig::default() })]

    /// Random traces × policy × backfill on/off on a healthy cluster.
    #[test]
    fn equivalent_on_healthy_cluster(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
        backfill in any::<bool>(),
    ) {
        assert_equivalent(seed, policy_from(policy_idx), 12, backfill, 0, false)?;
    }

    /// Same, with node failures injected mid-run (kills + repairs + the
    /// index rebuild paths).
    #[test]
    fn equivalent_under_node_failures(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
        failures in 1u32..4,
    ) {
        assert_equivalent(seed, policy_from(policy_idx), 10, true, failures, false)?;
    }

    /// Same, with partitions configured (eligible-set-filtered placement,
    /// submit-time rejects) and backfill on/off.
    #[test]
    fn equivalent_with_partitions(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
        backfill in any::<bool>(),
    ) {
        assert_equivalent(seed, policy_from(policy_idx), 12, backfill, 0, true)?;
    }
}

/// EASY invariant pinned at 1k-node scale: a backfilled job may never delay
/// the head job's shadow start. 999 nodes run full-width long jobs; node
/// 1000 has a 2-core hole. The head needs a whole node, so its shadow start
/// is the first release (t=100). A short filler fits the hole and ends
/// before the shadow → backfills; a long filler would overrun the shadow →
/// must wait behind the head.
#[test]
fn backfill_never_delays_head_at_1k_nodes() {
    let mut s = Scheduler::new(SchedConfig {
        policy: NodeSharing::Shared,
        backfill: true,
        ..SchedConfig::default()
    });
    for _ in 0..1000 {
        s.add_node(8, 65_536, 0);
    }
    let wall = |user: u32, name: &str, tasks: u32, secs: u64| {
        JobSpec::new(Uid(user), name, SimDuration::from_secs(secs))
            .with_tasks(tasks)
            .with_cpus_per_task(1)
            .with_mem_per_task(64)
    };
    // Fill nodes 1..=999 completely for 100s; node 1000 gets 6/8 cores.
    for _ in 0..999 {
        s.submit_at(SimTime::ZERO, wall(1, "wall", 8, 100));
    }
    s.submit_at(SimTime::ZERO, wall(1, "hole", 6, 100));
    // Head wants a full node → shadow = 100.
    let head = s.submit_at(SimTime::from_secs(1), wall(2, "head", 8, 10).exclusive());
    // Short filler: 2 cores, ends 2+50 < 100 → may backfill into the hole.
    let short = s.submit_at(SimTime::from_secs(2), wall(3, "short", 2, 50));
    // Long filler: 2 cores, 2+500 > 100 → would delay the head; must wait.
    let long = s.submit_at(SimTime::from_secs(3), wall(4, "long", 2, 500));
    s.run_until(SimTime::from_secs(5));
    assert_eq!(s.jobs[&head].state, JobState::Pending, "head blocked");
    assert_eq!(s.jobs[&short].state, JobState::Running, "short backfilled");
    assert_eq!(s.jobs[&long].state, JobState::Pending, "long refused");
    s.run_to_completion();
    assert_eq!(
        s.jobs[&head].started,
        Some(SimTime::from_secs(100)),
        "head started exactly at its shadow time — backfill delayed nothing"
    );
    assert!(s.jobs[&long].started.unwrap() >= SimTime::from_secs(100));
}
