//! Property-based test of the whole system: for *any* combination of
//! mechanism toggles, the audit must open exactly the channels whose
//! governing mechanism is disabled (plus the always-open residuals).
//!
//! This is the strongest statement of the paper's architecture: the
//! mechanisms are independent, each closes a specific set of channels, and
//! together they close everything closable.

use hpc_user_separation::audit::{run_audit, Channel};
use hpc_user_separation::sched::NodeSharing;
use hpc_user_separation::{ClusterSpec, SeparationConfig};
use proptest::prelude::*;

/// Which channels a configuration is expected to leave open.
fn expected_open(cfg: &SeparationConfig) -> Vec<Channel> {
    let mut open = vec![
        // Residuals leak under every configuration.
        Channel::FsTmpFilename,
        Channel::AbstractSocket,
        Channel::RdmaNativeCm,
    ];
    if !cfg.hidepid {
        open.push(Channel::ProcList);
        open.push(Channel::ProcCmdline);
    }
    if !cfg.private_data {
        open.push(Channel::SchedQueue);
        open.push(Channel::SchedAccounting);
    }
    if !cfg.pam_slurm {
        open.push(Channel::SshForeignNode);
    }
    if cfg.node_policy == NodeSharing::Shared {
        open.push(Channel::NodeCohabitation);
    }
    if !cfg.fsperm {
        open.push(Channel::FsWorldBit);
        open.push(Channel::FsAclGrant);
        open.push(Channel::FsHomeAccess);
    }
    if !cfg.ubf {
        open.push(Channel::NetTcp);
        open.push(Channel::NetUdp);
        open.push(Channel::RdmaTcpSetup);
    }
    if !cfg.portal_authz {
        open.push(Channel::PortalCrossUser);
    }
    if !cfg.federated_auth {
        open.push(Channel::AuthTokenReplay);
        open.push(Channel::SshExpiredCert);
        open.push(Channel::CrossRealmSpoof);
    }
    if !cfg.gpu_dev_perms {
        open.push(Channel::GpuDevAccess);
    }
    if !cfg.gpu_scrub {
        open.push(Channel::GpuRemanence);
    }
    open.sort();
    open
}

fn arb_config() -> impl Strategy<Value = SeparationConfig> {
    (
        (
            any::<bool>(),
            any::<bool>(),
            prop_oneof![
                Just(NodeSharing::Shared),
                Just(NodeSharing::Exclusive),
                Just(NodeSharing::WholeNodeUser),
            ],
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
        ),
        // Broker shard count rides along: the audit outcome must be
        // invariant under sharding (observational equivalence).
        1u32..5,
    )
        .prop_map(
            |(
                (
                    hidepid,
                    private_data,
                    node_policy,
                    pam_slurm,
                    fsperm,
                    ubf,
                    portal,
                    gperm,
                    gscrub,
                    fedauth,
                ),
                broker_shards,
            )| {
                SeparationConfig {
                    hidepid,
                    private_data,
                    node_policy,
                    pam_slurm,
                    fsperm,
                    ubf,
                    portal_authz: portal,
                    gpu_dev_perms: gperm,
                    gpu_scrub: gscrub,
                    federated_auth: fedauth,
                    broker_shards,
                    trusted_realms: Vec::new(),
                    ..SeparationConfig::baseline()
                }
            },
        )
}

proptest! {
    // Each case audits 18 fresh clusters; keep the case count modest.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn audit_open_set_is_exactly_the_disabled_mechanisms(cfg in arb_config()) {
        let report = run_audit(&cfg, &ClusterSpec::tiny());
        let mut open = report.open_channels();
        open.sort();
        prop_assert_eq!(
            open,
            expected_open(&cfg),
            "config {:?}\n{}",
            cfg,
            report
        );
    }
}

#[test]
fn extremes_check_without_proptest_overhead() {
    // Belt and braces at the two corners.
    let base = run_audit(&SeparationConfig::baseline(), &ClusterSpec::tiny());
    let mut open = base.open_channels();
    open.sort();
    assert_eq!(open, expected_open(&SeparationConfig::baseline()));
    assert_eq!(
        open.len(),
        Channel::all().len(),
        "baseline opens everything"
    );

    let full = run_audit(&SeparationConfig::llsc(), &ClusterSpec::tiny());
    let mut open = full.open_channels();
    open.sort();
    assert_eq!(open, expected_open(&SeparationConfig::llsc()));
    assert_eq!(open.len(), 3, "full config leaves only the residuals");
}
