//! Trace-layer (obs v2) properties:
//!
//! 1. **Quiet-vs-loud equality** — the same portal/scheduler/revsync op
//!    sequence produces *identical decisions* with tracing off and on.
//!    Tracing is pure measurement: a `TraceCtx` rides along with the
//!    work but never steers it.
//! 2. **Well-formedness** — every trace a loud run mints assembles into
//!    a proper tree: exactly one root, no orphan parents, and sim-time
//!    monotone from parent to child (`eus_core::obs::check_well_formed`).
//! 3. **The acceptance chain** — whenever a portal revocation reaches a
//!    lagging sister and the feed later delivers it, the revoke trace
//!    carries the full `portal.route.revoke → cred.revoke.serial →
//!    revsync.mesh.push → revsync.replica.apply` prefix, whatever the
//!    surrounding schedule.

use eus_fedauth::{shared_broker, BrokerPolicy, CredError, CredentialBroker, RealmId, SignedToken};
use eus_simcore::{SimDuration, SimTime};
use hpc_user_separation::obs::{check_well_formed, ObsConfig, TraceSpan};
use hpc_user_separation::sched::JobSpec;
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Collapse a credential outcome to its observable shape.
fn shape<T>(r: &Result<T, CredError>) -> String {
    match r {
        Ok(_) => "ok".into(),
        Err(e) => format!("{e:?}"),
    }
}

/// One cluster under a fixed op sequence; `loud` turns every ring on.
struct Run {
    c: SecureCluster,
    sister: eus_fedauth::SharedBroker,
    minted: Vec<SignedToken>,
    clock: SimTime,
    /// The observable decision stream — must match quiet vs loud.
    outcomes: Vec<String>,
}

impl Run {
    fn new(loud: bool) -> Self {
        let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        if loud {
            c.enable_obs(ObsConfig::enabled());
        }
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xFED5,
            BrokerPolicy::default(),
        ));
        if loud {
            if let Some(tb) = sister.read().trace_buffer() {
                tb.set_enabled(true);
            }
        }
        c.register_sister_realm(RealmId(2), sister.clone());
        Run {
            c,
            sister,
            minted: Vec::new(),
            clock: SimTime::ZERO,
            outcomes: Vec::new(),
        }
    }

    fn step(&mut self, alice: eus_simos::Uid, op: (u8, u8)) {
        let (action, subject) = op;
        let out = match action % 6 {
            0 => {
                let spec = JobSpec::new(alice, "job", SimDuration::from_secs(10 + subject as u64));
                format!("submit:{}", shape(&self.c.try_submit(spec)))
            }
            1 => {
                self.clock += SimDuration::from_secs(10 * (1 + subject as u64 % 3));
                self.c.advance_to(self.clock);
                format!("advance:{}", self.clock)
            }
            2 => {
                let db = self.c.db.read().clone();
                let r = self.sister.write().login(&db, alice, None);
                let s = shape(&r);
                if let Ok(t) = r {
                    self.minted.push(t);
                }
                format!("login:{s}")
            }
            3 => match self.minted.get(subject as usize) {
                Some(t) => {
                    let t = *t;
                    format!("validate:{}", shape(&self.c.validate_federated_token(&t)))
                }
                None => "validate:none".into(),
            },
            4 => match self.minted.get(subject as usize) {
                Some(t) => {
                    let serial = t.serial;
                    format!("revoke:{}", self.c.portal_revoke_serial(RealmId(2), serial))
                }
                None => "revoke:none".into(),
            },
            _ => {
                let down = subject % 2 == 0;
                self.c.partition_sister_feed(RealmId(2), down);
                format!("partition:{down}")
            }
        };
        self.outcomes.push(out);
    }

    /// Every span on every ring this run can reach.
    fn all_spans(&self) -> Vec<TraceSpan> {
        let mut spans = Vec::new();
        spans.extend(self.c.obs.trace.spans());
        spans.extend(self.c.portal.obs.trace.spans());
        spans.extend(self.c.sched.read().obs.trace.spans());
        if let Some(b) = &self.c.broker {
            if let Some(tb) = b.read().trace_buffer() {
                spans.extend(tb.spans());
            }
        }
        if let Some(m) = &self.c.revsync {
            spans.extend(m.obs.trace.spans());
        }
        if let Some(tb) = self.sister.read().trace_buffer() {
            spans.extend(tb.spans());
        }
        spans
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Properties 1 and 2 on arbitrary op sequences.
    #[test]
    fn tracing_never_changes_decisions_and_every_tree_is_well_formed(
        ops in proptest::collection::vec((0u8..6, 0u8..8), 1..60),
    ) {
        let mut quiet = Run::new(false);
        let mut loud = Run::new(true);
        let alice_q = quiet.c.add_user("alice").unwrap();
        let alice_l = loud.c.add_user("alice").unwrap();
        for &op in &ops {
            quiet.step(alice_q, op);
            loud.step(alice_l, op);
        }

        // 1. Identical decision streams.
        prop_assert_eq!(&quiet.outcomes, &loud.outcomes);
        // The quiet run recorded nothing on any ring.
        prop_assert!(quiet.all_spans().is_empty());

        // 2. Every loud trace assembles into a well-formed tree.
        let traces: BTreeSet<u64> = loud.all_spans().iter().map(|s| s.trace).collect();
        for trace in traces {
            let spans = loud.c.collect_trace(trace);
            if let Err(e) = check_well_formed(&spans) {
                prop_assert!(false, "trace {trace:#x}: {e}\nspans: {spans:?}");
            }
        }
    }

    /// Property 3: delivered revocations keep the acceptance chain shape.
    #[test]
    fn delivered_revokes_keep_the_cross_plane_chain(
        pre_advances in 0u64..4,
        extra_tokens in 0usize..3,
    ) {
        let mut run = Run::new(true);
        let alice = run.c.add_user("alice").unwrap();
        let db = run.c.db.read().clone();
        for _ in 0..extra_tokens {
            let t = run.sister.write().login(&db, alice, None).unwrap();
            run.minted.push(t);
        }
        for i in 0..pre_advances {
            run.c.advance_to(SimTime::from_secs((i + 1) * 10));
        }
        let token = run.sister.write().login(&db, alice, None).unwrap();
        let now = run.c.broker.as_ref().unwrap().read().now();
        prop_assert!(run.c.portal_revoke_serial(RealmId(2), token.serial));
        // One feed interval later the delta has landed at the home replica.
        run.c
            .advance_to(now + run.c.config.revsync_feed_interval + SimDuration::from_secs(1));
        prop_assert_eq!(
            run.c.validate_federated_token(&token),
            Err(CredError::Revoked(token.serial))
        );

        let root = run
            .c
            .portal
            .obs
            .trace
            .spans()
            .into_iter()
            .rfind(|s| s.name == "portal.route.revoke")
            .expect("portal minted the revoke root");
        let spans = run.c.collect_trace(root.trace);
        check_well_formed(&spans).expect("well-formed revoke tree");
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        for expect in [
            "portal.route.revoke",
            "cred.revoke.serial",
            "revsync.mesh.push",
            "revsync.replica.apply",
        ] {
            prop_assert!(names.contains(&expect), "missing {} in {:?}", expect, names);
        }
        // Parentage: the WAN hop hangs under the issuer-side revoke span.
        let by_id = |id: u64| spans.iter().find(|s| s.span == id);
        let push = spans.iter().find(|s| s.name == "revsync.mesh.push").unwrap();
        let parent = by_id(push.parent).expect("push span has a live parent");
        prop_assert_eq!(parent.name, "cred.revoke.serial");
        prop_assert!(parent.start <= push.start, "sim-time monotone down the chain");
    }
}
