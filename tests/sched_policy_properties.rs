//! Property tests for the scheduler policy plane: fair-share, preemption,
//! and reservations may reorder *when* jobs run, but they must never
//! weaken the paper's separation story or the scheduler's accounting:
//!
//! * **scrub-before-reassignment** — every preempted allocation emits its
//!   separation epilog (the scrub/cleanup hook) at preemption time, and no
//!   different-user job is ever observed on that node at an earlier
//!   instant; the epilog stream stays chronologically ordered (the cluster
//!   layer consumes it in order, epilogs before prologs);
//! * **no lost or duplicated work** — every submitted job still reaches a
//!   terminal state exactly once, preempted jobs rerun their full
//!   duration, and node capacity is never overcommitted;
//! * **reservations never double-book cores** — at any sampled instant,
//!   the capacity promised by overlapping reservations plus the capacity
//!   still held by running jobs fits inside every node;
//! * **knobs off = reference** — with the whole plane disabled, traces
//!   decorated with QoS classes replay bit-identically on the optimized
//!   engine and the retained `ReferenceScheduler` (QoS is carried, not
//!   acted on).

use hpc_user_separation::obs::ObsConfig;
use hpc_user_separation::sched::{
    JobSpec, JobState, NodeSharing, QosClass, ReferenceScheduler, SchedConfig, Scheduler,
};
use hpc_user_separation::simcore::{SimDuration, SimRng, SimTime};
use hpc_user_separation::simos::UserDb;
use hpc_user_separation::workloads::UserPopulation;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-property case count; CI can raise it via `SCHED_PROPTEST_CASES`.
fn cases(default: u32) -> u32 {
    std::env::var("SCHED_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn qos_from(i: usize) -> QosClass {
    match i % 10 {
        0..=4 => QosClass::Bulk,
        5..=7 => QosClass::Normal,
        8 => QosClass::Interactive,
        _ => QosClass::Urgent,
    }
}

/// A mixed-QoS trace over two partitions.
fn qos_trace(seed: u64, with_partitions: bool) -> Vec<(SimTime, Arc<JobSpec>)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, 8, 2, 1.0, &mut rng);
    (0..120)
        .map(|i| {
            let at = SimTime::from_secs(rng.range_u64(0, 600));
            let tasks = 1 + (rng.range_u64(0, 12) as u32);
            let secs = 30 + rng.range_u64(0, 900);
            let mut spec = JobSpec::new(
                pop.active_user(&mut rng),
                format!("q{i}"),
                SimDuration::from_secs(secs),
            )
            .with_tasks(tasks)
            .with_mem_per_task(512)
            .with_qos(qos_from(i));
            if with_partitions {
                spec.partition = match i % 3 {
                    0 => Some("batch".to_string()),
                    1 => Some("debug".to_string()),
                    _ => None,
                };
            }
            (at, Arc::new(spec))
        })
        .collect()
}

fn plane_scheduler(policy: NodeSharing, nodes: u32, with_partitions: bool) -> Scheduler {
    let mut s = Scheduler::new(SchedConfig {
        policy,
        fair_share: true,
        preemption: true,
        reservations: 4,
        ..SchedConfig::default()
    });
    for _ in 0..nodes {
        s.add_node(8, 16_384, 2);
    }
    if with_partitions {
        let half = nodes / 2;
        let batch: Vec<_> = (1..=half).map(hpc_user_separation::simos::NodeId).collect();
        let debug: Vec<_> = (half + 1..=nodes)
            .map(hpc_user_separation::simos::NodeId)
            .collect();
        s.partitions_mut().add("batch", batch, true).unwrap();
        s.partitions_mut().add("debug", debug, false).unwrap();
    }
    s
}

/// Separation + accounting invariants under the full plane.
///
/// Runs with the flight recorder on (so every green case also re-proves
/// that instrumentation does not perturb the policy plane); on failure the
/// recorder tail is printed for forensics.
fn assert_plane_invariants(
    seed: u64,
    policy: NodeSharing,
    with_partitions: bool,
) -> Result<(), TestCaseError> {
    let mut s = plane_scheduler(policy, 8, with_partitions);
    s.enable_obs(ObsConfig::enabled().with_flight_capacity(256));
    let result = run_plane_invariants(&mut s, seed, with_partitions);
    if result.is_err() {
        eprintln!("{}", s.obs.rec.flight.render_tail("policy plane", 48));
    }
    result
}

fn run_plane_invariants(
    s: &mut Scheduler,
    seed: u64,
    with_partitions: bool,
) -> Result<(), TestCaseError> {
    for (at, spec) in qos_trace(seed, with_partitions) {
        s.submit_at_shared(at, spec);
    }

    // Advance in steps, draining epilogs and recording job starts as the
    // cluster layer would observe them.
    let mut epilogs = Vec::new();
    let mut starts: Vec<(SimTime, hpc_user_separation::sched::JobId)> = Vec::new();
    let mut seen_started: BTreeMap<hpc_user_separation::sched::JobId, SimTime> = BTreeMap::new();
    let mut t = 0u64;
    while t < 50_000 {
        t += 97;
        s.run_until(SimTime::from_secs(t));
        epilogs.extend(s.drain_epilogs());
        for j in s.jobs.values() {
            if let Some(st) = j.started {
                let prev = seen_started.insert(j.id, st);
                if prev != Some(st) {
                    starts.push((st, j.id));
                }
            }
        }
        if s.pending_count() == 0 && s.running_count() == 0 && t > 2000 {
            break;
        }
    }
    s.run_to_completion();
    epilogs.extend(s.drain_epilogs());

    // Epilog stream is chronological (the cluster consumes it in order).
    prop_assert!(
        epilogs.windows(2).all(|w| w[0].at <= w[1].at),
        "epilogs out of order"
    );

    // Every preempted allocation got its epilog at preemption time, and no
    // different-user job observed on that node started earlier than the
    // victim's scrub instant while overlapping it.
    for p in &s.preemptions {
        for &node in &p.nodes {
            prop_assert!(
                epilogs
                    .iter()
                    .any(|e| e.job == p.victim && e.node == node && e.at == p.at),
                "missing epilog for preempted {} on {}",
                p.victim,
                node
            );
        }
        // The preemptor starts at the same instant, never before.
        let preemptor_start = s.jobs[&p.preempted_by].started;
        if let Some(st) = preemptor_start {
            // Started may be later if it was itself requeued; it is never
            // before the scrub instant of the capacity it took.
            prop_assert!(st >= p.at, "preemptor ran before the victim's epilog");
        }
    }

    // No lost/duplicated work: every non-cancelled job terminal, counters
    // add up, and preempted jobs still ran their full duration.
    let mut terminal = 0u64;
    for j in s.jobs.values() {
        prop_assert!(j.state.is_terminal(), "{} not terminal", j.id);
        if j.state != JobState::Cancelled {
            terminal += 1;
        }
        if j.state == JobState::Completed {
            let ran = j.ended.unwrap().since(j.started.unwrap());
            prop_assert!(
                ran == j.spec.duration.min(j.spec.time_limit),
                "{} ran {:?} of {:?}",
                j.id,
                ran,
                j.spec.duration
            );
        }
    }
    prop_assert_eq!(
        terminal,
        s.metrics.completed.get() + s.metrics.failed.get() + s.metrics.timed_out.get()
    );
    // All nodes idle and at full capacity at the end (no leaked claims).
    prop_assert!(s.nodes.values().all(|n| n.is_idle()));
    prop_assert!(s
        .nodes
        .values()
        .all(|n| n.free_cores() == n.cores && n.free_gpus() == n.gpus));
    Ok(())
}

/// Reservations never double-book: sampled mid-trace, for every node the
/// cores promised by time-overlapping reservations plus cores held by
/// running jobs that have not released by that instant fit in the node.
fn assert_no_double_booking(seed: u64) -> Result<(), TestCaseError> {
    let mut s = Scheduler::new(SchedConfig {
        policy: NodeSharing::Shared,
        reservations: 6,
        ..SchedConfig::default()
    });
    s.enable_obs(ObsConfig::enabled().with_flight_capacity(256));
    for _ in 0..6 {
        s.add_node(8, 16_384, 0);
    }
    let result = run_no_double_booking(&mut s, seed);
    if result.is_err() {
        eprintln!("{}", s.obs.rec.flight.render_tail("reservations", 48));
    }
    result
}

fn run_no_double_booking(s: &mut Scheduler, seed: u64) -> Result<(), TestCaseError> {
    for (at, spec) in qos_trace(seed, false) {
        s.submit_at_shared(at, spec);
    }
    let mut t = 0u64;
    while t < 4000 {
        t += 131;
        s.run_until(SimTime::from_secs(t));
        let held = s.held_reservations();
        // Pairwise time-overlapping reservations + running holds per node.
        for (i, a) in held.iter().enumerate() {
            // Probe at each reservation start: sum capacity promised or
            // held at that instant on each of its nodes.
            let probe = a.start;
            for &(node, alloc) in &a.allocs {
                let mut claimed = alloc.cores as u64;
                for (k, b) in held.iter().enumerate() {
                    if k == i {
                        continue;
                    }
                    if b.start <= probe && probe < b.end {
                        claimed += b
                            .allocs
                            .iter()
                            .filter(|(n, _)| *n == node)
                            .map(|(_, al)| al.cores as u64)
                            .sum::<u64>();
                    }
                }
                // Running jobs that still hold the node at `probe` (they
                // release at started + duration in the EASY model).
                for j in s.jobs.values() {
                    if j.state == JobState::Running {
                        let release = j.started.unwrap() + j.spec.duration;
                        if release > probe {
                            claimed += j
                                .allocations
                                .get(&node)
                                .map(|al| al.cores as u64)
                                .unwrap_or(0);
                        }
                    }
                }
                let cap = s.nodes[&node].cores as u64;
                prop_assert!(
                    claimed <= cap,
                    "node {} promised {} cores of {} at {:?} (seed {})",
                    node,
                    claimed,
                    cap,
                    probe,
                    seed
                );
            }
        }
        if s.pending_count() == 0 && s.running_count() == 0 && t > 1200 {
            break;
        }
    }
    Ok(())
}

/// Knobs off ⇒ QoS-decorated traces replay identically to the reference.
fn assert_off_matches_reference(seed: u64, policy: NodeSharing) -> Result<(), TestCaseError> {
    let config = SchedConfig {
        policy,
        ..SchedConfig::default()
    };
    assert!(!config.policy_plane_active());
    let mut opt = Scheduler::new(config.clone());
    let mut reference = ReferenceScheduler::new(config);
    opt.enable_obs(ObsConfig::enabled().with_flight_capacity(256));
    reference.enable_flight(256);
    for _ in 0..8 {
        opt.add_node(8, 16_384, 2);
        reference.add_node(8, 16_384, 2);
    }
    let result = run_off_matches_reference(&mut opt, &mut reference, seed);
    if result.is_err() {
        eprintln!("{}", opt.obs.rec.flight.render_tail("optimized engine", 48));
        if let Some(fr) = &reference.flight {
            eprintln!("{}", fr.render_tail("reference engine", 48));
        }
    }
    result
}

fn run_off_matches_reference(
    opt: &mut Scheduler,
    reference: &mut ReferenceScheduler,
    seed: u64,
) -> Result<(), TestCaseError> {
    for (at, spec) in qos_trace(seed, false) {
        let a = opt.submit_at_shared(at, Arc::clone(&spec));
        let b = reference.submit_at_shared(at, spec);
        prop_assert_eq!(a, b);
    }
    let end_a = opt.run_to_completion();
    let end_b = reference.run_to_completion();
    prop_assert_eq!(end_a, end_b, "identical makespan");
    for (id, a) in &opt.jobs {
        let b = &reference.jobs[id];
        prop_assert_eq!(a.state, b.state);
        prop_assert_eq!(a.started, b.started, "start of {}", id);
        prop_assert_eq!(&a.allocations, &b.allocations);
    }
    prop_assert_eq!(opt.drain_epilogs(), reference.drain_epilogs());
    prop_assert!(opt.preemptions.is_empty(), "no preemption with knobs off");
    prop_assert!(opt.held_reservations().is_empty());
    Ok(())
}

fn policy_from(i: u8) -> NodeSharing {
    match i % 3 {
        0 => NodeSharing::Shared,
        1 => NodeSharing::Exclusive,
        _ => NodeSharing::WholeNodeUser,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(10), ..ProptestConfig::default() })]

    /// Separation + accounting invariants with the full plane on, across
    /// node-sharing policies, with and without partitions.
    #[test]
    fn plane_preserves_separation_invariants(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
        with_partitions in any::<bool>(),
    ) {
        assert_plane_invariants(seed, policy_from(policy_idx), with_partitions)?;
    }

    /// The reservation calendar never double-books cores.
    #[test]
    fn reservations_never_double_book(seed in 0u64..10_000) {
        assert_no_double_booking(seed)?;
    }

    /// QoS-decorated traces with every knob off are trace-identical to the
    /// reference scheduler.
    #[test]
    fn knobs_off_is_reference_identical(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
    ) {
        assert_off_matches_reference(seed, policy_from(policy_idx))?;
    }
}

/// Deterministic regression: under fair-share + preemption, a preempted
/// node is scrubbed (epilog with `user_still_active_on_node == false`)
/// before the preemptor's user can be placed there.
#[test]
fn preempted_node_scrub_precedes_reassignment() {
    let mut s = Scheduler::new(SchedConfig {
        policy: NodeSharing::WholeNodeUser,
        fair_share: true,
        preemption: true,
        ..SchedConfig::default()
    });
    let node = s.add_node(8, 16_384, 2);
    let victim = s.submit_at(
        SimTime::ZERO,
        JobSpec::new(
            hpc_user_separation::simos::Uid(1),
            "bulk",
            SimDuration::from_secs(1000),
        )
        .with_tasks(8)
        .with_gpus_per_task(0)
        .with_mem_per_task(512)
        .with_qos(QosClass::Bulk),
    );
    let urgent = s.submit_at(
        SimTime::from_secs(5),
        JobSpec::new(
            hpc_user_separation::simos::Uid(2),
            "urgent",
            SimDuration::from_secs(30),
        )
        .with_tasks(4)
        .with_mem_per_task(512)
        .with_qos(QosClass::Urgent),
    );
    s.run_until(SimTime::from_secs(6));
    assert_eq!(s.jobs[&urgent].state, JobState::Running);
    assert_eq!(s.preemptions.len(), 1);
    let epilogs = s.drain_epilogs();
    let scrub = epilogs
        .iter()
        .find(|e| e.job == victim && e.node == node)
        .expect("victim epilog emitted");
    assert!(
        !scrub.user_still_active_on_node,
        "victim fully left the node: epilog may scrub"
    );
    assert_eq!(scrub.at, SimTime::from_secs(5));
    assert_eq!(s.jobs[&urgent].started, Some(SimTime::from_secs(5)));
    // The victim reruns to completion afterwards.
    s.run_to_completion();
    assert_eq!(s.jobs[&victim].state, JobState::Completed);
}
