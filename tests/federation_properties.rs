//! Federation-layer properties:
//!
//! 1. a [`ShardedBroker`] is **observationally equivalent** to a single
//!    [`CredentialBroker`] — the same accept/reject decision for every
//!    login/validate/revoke/sweep sequence (token *material* differs, the
//!    decisions never do);
//! 2. a [`TrustPolicy`]-governed federation never accepts a credential from
//!    a realm off the allow-list, whatever the op interleaving.

use eus_fedauth::{
    shared_broker, BrokerPolicy, CredError, CredentialBroker, CredentialPlane, FederationDirectory,
    RealmId, ShardedBroker, SignedToken, TrustPolicy,
};
use eus_simcore::{SimDuration, SimTime};
use eus_simos::{Uid, UserDb};
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};
use proptest::prelude::*;

/// Collapse a decision to its observable shape: accept, or which kind of
/// refusal. Serial numbers and timestamps inside errors are
/// implementation-specific (shards partition the serial space), so compare
/// variants, not payloads.
fn shape<T>(r: &Result<T, CredError>) -> &'static str {
    match r {
        Ok(_) => "ok",
        Err(CredError::UnknownUser(_)) => "unknown-user",
        Err(CredError::MfaRequired) => "mfa-required",
        Err(CredError::MfaInvalid) => "mfa-invalid",
        Err(CredError::NotYetValid { .. }) => "not-yet-valid",
        Err(CredError::Expired { .. }) => "expired",
        Err(CredError::RealmMismatch { .. }) => "realm-mismatch",
        Err(CredError::UntrustedRealm { .. }) => "untrusted-realm",
        Err(CredError::UnknownRealm(_)) => "unknown-realm",
        Err(CredError::TrustExpired { .. }) => "trust-expired",
        Err(CredError::StaleReplica { .. }) => "stale-replica",
        Err(CredError::BadSignature) => "bad-signature",
        Err(CredError::Revoked(_)) => "revoked",
        Err(CredError::NoCredential(_)) => "no-credential",
        Err(CredError::Unavailable) => "unavailable",
    }
}

/// One credential plane under test, with the tokens it has minted so far
/// (the i-th minted token corresponds across planes).
struct Driver {
    plane: Box<dyn CredentialPlane>,
    minted: Vec<SignedToken>,
    clock: SimTime,
}

impl Driver {
    fn new(plane: Box<dyn CredentialPlane>) -> Self {
        Driver {
            plane,
            minted: Vec::new(),
            clock: SimTime::ZERO,
        }
    }

    /// Apply one op; return its observable outcome.
    fn step(&mut self, db: &UserDb, users: &[Uid], op: (u8, u8)) -> String {
        let (action, subject) = op;
        let user = users[subject as usize % users.len()];
        match action % 7 {
            0 => {
                let r = self.plane.login(db, user, None);
                let s = shape(&r);
                if let Ok(t) = r {
                    self.minted.push(t);
                }
                format!("login:{s}")
            }
            1 => match self.minted.get(subject as usize) {
                Some(t) => {
                    let t = *t;
                    format!("validate:{}", shape(&self.plane.validate_token(&t)))
                }
                None => "validate:none".to_string(),
            },
            2 => {
                let r = self.plane.authorize_submit(user);
                format!("submit:{}", shape(&r))
            }
            3 => {
                self.plane.revoke_user(user);
                "revoke-user".to_string()
            }
            4 => match self.minted.get(subject as usize) {
                Some(t) => {
                    let serial = t.serial;
                    self.plane.revoke_serial(serial);
                    "revoke-serial".to_string()
                }
                None => "revoke-serial:none".to_string(),
            },
            5 => {
                self.clock += SimDuration::from_secs(3600 * subject as u64);
                self.plane.advance_to(self.clock);
                "advance".to_string()
            }
            _ => format!("sweep:{}", self.plane.sweep_expired()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Same op sequence, same decisions — for every shard count.
    #[test]
    fn sharded_broker_is_observationally_equivalent_to_single(
        ops in proptest::collection::vec((0u8..7, 0u8..8), 1..80),
        shards in 2u8..9,
    ) {
        let mut db = UserDb::new();
        let users: Vec<Uid> = (0..5)
            .map(|i| db.create_user(&format!("u{i}")).unwrap())
            .collect();
        let policy = BrokerPolicy::default();
        let mut single = Driver::new(Box::new(CredentialBroker::new(RealmId(1), 42, policy)));
        let mut sharded = Driver::new(Box::new(ShardedBroker::new(
            RealmId(1),
            42,
            shards as usize,
            policy,
        )));

        for op in ops {
            let a = single.step(&db, &users, op);
            let b = sharded.step(&db, &users, op);
            prop_assert_eq!(&a, &b, "decision diverged on op {:?}", op);
            // Observable aggregate state tracks too.
            prop_assert_eq!(
                single.plane.live_sessions(),
                sharded.plane.live_sessions(),
                "session counts diverged after {:?}",
                op
            );
        }
        // Final cross-check: every minted token judges identically.
        for (ts, tsh) in single.minted.iter().zip(&sharded.minted) {
            prop_assert_eq!(
                shape(&single.plane.validate_token(ts)),
                shape(&sharded.plane.validate_token(tsh))
            );
        }
    }

    /// Trust-policy soundness: whatever realms exist and whatever the
    /// allow-list, a token from a non-allow-listed realm NEVER validates at
    /// the home site.
    #[test]
    fn trust_policy_never_accepts_a_non_allow_listed_realm(
        realm_ids in proptest::collection::vec(2u32..40, 1..6),
        trusted_mask in 0u8..64,
        probe in 0u8..6,
    ) {
        let home = RealmId(1);
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();

        // Build the federation: home + N sister realms, a subset trusted.
        let mut trust = TrustPolicy::home_only(home);
        let mut dir = FederationDirectory::new();
        dir.register(
            home,
            shared_broker(CredentialBroker::new(home, 1, BrokerPolicy::default())),
            TrustPolicy::home_only(home), // placeholder, replaced below
        );
        let mut sisters = Vec::new();
        for (i, rid) in realm_ids.iter().enumerate() {
            let realm = RealmId(*rid);
            if dir.plane(realm).is_some() {
                continue; // duplicate id in the generated vec
            }
            let trusted = trusted_mask & (1 << i) != 0;
            if trusted {
                trust.trust(realm);
            }
            let plane = shared_broker(CredentialBroker::new(
                realm,
                100 + i as u64,
                BrokerPolicy::default(),
            ));
            dir.register(realm, plane.clone(), TrustPolicy::home_only(realm));
            sisters.push((realm, plane, trusted));
        }
        let home_plane = dir.plane(home).unwrap().clone();
        dir.register(home, home_plane, trust.clone());

        // Every sister logs alice in; the home site judges each token.
        for (realm, plane, trusted) in &sisters {
            let token = plane.write().login(&db, alice, None).unwrap();
            let verdict = dir.validate_token_at(home, &token);
            if *trusted {
                prop_assert_eq!(verdict.unwrap(), alice, "allow-listed {} must pass", realm);
            } else {
                prop_assert_eq!(
                    verdict,
                    Err(CredError::UntrustedRealm { ours: home, theirs: *realm }),
                    "non-allow-listed {} must fail closed",
                    realm
                );
            }
        }

        // And a realm that exists nowhere (not even registered) is refused
        // regardless of the mask.
        let ghost = RealmId(1000 + probe as u32);
        let mut rogue = CredentialBroker::new(ghost, 7, BrokerPolicy::default());
        let forged = rogue.login(&db, alice, None).unwrap();
        prop_assert!(dir.validate_token_at(home, &forged).is_err());
    }
}

#[test]
fn sharded_cluster_keeps_the_llsc_audit_clean() {
    // End-to-end: the full llsc deployment with a sharded plane (the
    // default) audits identically to the single-broker collapse.
    use hpc_user_separation::audit::run_audit;
    let llsc = run_audit(&SeparationConfig::llsc(), &ClusterSpec::tiny());
    let single = run_audit(
        &SeparationConfig::llsc().single_shard(),
        &ClusterSpec::tiny(),
    );
    let mut a = llsc.open_channels();
    let mut b = single.open_channels();
    a.sort();
    b.sort();
    assert_eq!(a, b, "sharding must not change any channel outcome");
    assert!(llsc.only_expected_residuals());
}

#[test]
fn federated_portal_sessions_scale_and_sweep_under_sharding() {
    // A portal fronting a sharded plane at modest scale: thousands of
    // logins, all distinct, all resolvable, revocations immediate, sweeps
    // bounded.
    let cfg = SeparationConfig::llsc().with_broker_shards(8);
    let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
    let users: Vec<Uid> = (0..32)
        .map(|i| c.add_user(&format!("u{i}")).unwrap())
        .collect();
    let mut tokens = Vec::new();
    for round in 0..32 {
        let u = users[round % users.len()];
        tokens.push((u, c.portal_login(u).unwrap()));
    }
    let distinct: std::collections::BTreeSet<_> = tokens.iter().map(|(_, t)| *t).collect();
    assert_eq!(distinct.len(), tokens.len(), "no portal token collisions");
    for (u, t) in &tokens {
        assert_eq!(c.portal.auth.whoami(*t).unwrap(), *u);
    }
    // Central revocation of one user kills exactly their sessions.
    let victim = users[0];
    c.broker.as_ref().unwrap().write().revoke_user(victim);
    for (u, t) in &tokens {
        if *u == victim {
            assert!(c.portal.auth.whoami(*t).is_err());
        } else {
            assert_eq!(c.portal.auth.whoami(*t).unwrap(), *u);
        }
    }
    // Portal logout revokes the backing credential by *serial*; the broker
    // entry stays resident until a sweep. The sweep now drops such
    // revoked-but-unexpired entries (satellite fix) so tables stay bounded
    // between expiry sweeps.
    let survivor = tokens.iter().find(|(u, _)| *u != victim).unwrap().1;
    let before = c.broker.as_ref().unwrap().read().live_sessions();
    assert!(c.portal.auth.logout(survivor));
    assert_eq!(
        c.broker.as_ref().unwrap().read().live_sessions(),
        before,
        "serial revocation leaves the entry resident (that's what the sweep is for)"
    );
    let removed = c.broker.as_ref().unwrap().write().sweep_expired();
    assert!(removed >= 1, "revoked sessions must be sweepable");
    assert!(c.broker.as_ref().unwrap().read().live_sessions() < before);
}
