//! Property-based network invariants: for arbitrary sequences of listen /
//! connect / send / close operations, socket tables and conntrack stay
//! consistent, and the UBF policy decision is exactly reproduced by the
//! end-to-end fabric outcome.

use bytes::Bytes;
use eus_ubf::{decide, deploy_ubf, shared_user_db, Decision, UbfConfig, UbfPolicy};
use hpc_user_separation::simnet::{ConnId, Fabric, PeerInfo, Proto, SocketAddr};
use hpc_user_separation::simos::{Gid, NodeId, Uid, UserDb};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Listen {
        host: u8,
        port_slot: u8,
        user: u8,
    },
    Connect {
        from: u8,
        to: u8,
        port_slot: u8,
        user: u8,
    },
    CloseOldest,
    Send {
        bytes: u16,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u8..4, 0u8..4).prop_map(|(host, port_slot, user)| Op::Listen {
            host,
            port_slot,
            user
        }),
        (0u8..3, 0u8..3, 0u8..4, 0u8..4).prop_map(|(from, to, port_slot, user)| Op::Connect {
            from,
            to,
            port_slot,
            user
        }),
        Just(Op::CloseOldest),
        (1u16..4096).prop_map(|bytes| Op::Send { bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn fabric_state_stays_consistent(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut db = UserDb::new();
        let users: Vec<Uid> = (0..4)
            .map(|i| db.create_user(&format!("u{i}")).unwrap())
            .collect();
        let shared = shared_user_db(db);
        let mut f = Fabric::new();
        let hosts = [NodeId(1), NodeId(2), NodeId(3)];
        for h in hosts {
            f.add_host(h);
            deploy_ubf(f.host_mut(h).unwrap(), shared.clone(), UbfConfig::default());
        }
        let ports = [8000u16, 8001, 8002, 8003];
        let peer = |u: u8| PeerInfo::from_cred(&shared.read().credentials(users[u as usize]).unwrap());

        let mut open: Vec<ConnId> = Vec::new();
        let mut listeners: std::collections::BTreeMap<(NodeId, u16), Uid> = Default::default();

        for op in ops {
            match op {
                Op::Listen { host, port_slot, user } => {
                    let h = hosts[host as usize];
                    let port = ports[port_slot as usize];
                    let res = f.listen(h, Proto::Tcp, port, peer(user));
                    match listeners.entry((h, port)) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert!(res.is_err(), "double bind must fail");
                        }
                        std::collections::btree_map::Entry::Vacant(v) => {
                            if res.is_ok() {
                                v.insert(users[user as usize]);
                            }
                        }
                    }
                }
                Op::Connect { from, to, port_slot, user } => {
                    let src = hosts[from as usize];
                    let dst = hosts[to as usize];
                    let port = ports[port_slot as usize];
                    let res = f.connect(src, peer(user), SocketAddr::new(dst, port), Proto::Tcp);
                    match listeners.get(&(dst, port)) {
                        None => prop_assert!(res.is_err(), "no listener must refuse"),
                        Some(owner) => {
                            // The end-to-end outcome must equal the pure
                            // policy decision.
                            let listener_peer = f
                                .host(dst)
                                .unwrap()
                                .sockets
                                .listener(Proto::Tcp, port)
                                .unwrap()
                                .owner;
                            let expected = decide(
                                &UbfPolicy::default(),
                                &shared.read(),
                                &peer(user),
                                &listener_peer,
                            );
                            prop_assert_eq!(
                                res.is_ok(),
                                expected.allowed(),
                                "fabric disagrees with policy for {:?} -> {:?}",
                                users[user as usize],
                                owner
                            );
                            if let Ok((id, _)) = res {
                                open.push(id);
                            }
                        }
                    }
                }
                Op::CloseOldest => {
                    if !open.is_empty() {
                        let id = open.remove(0);
                        prop_assert!(f.close(id));
                        prop_assert!(!f.close(id), "double close is a no-op");
                    }
                }
                Op::Send { bytes } => {
                    if let Some(&id) = open.first() {
                        let payload = Bytes::from(vec![0u8; bytes as usize]);
                        prop_assert!(f.send(id, &payload).is_ok());
                    }
                }
            }
        }

        // Invariants at the end: connection count matches what we hold, and
        // every open connection is still conntrack-established on both ends.
        prop_assert_eq!(f.connection_count(), open.len());
        for id in &open {
            let conn = f.connection(*id).unwrap();
            let t = conn.tuple;
            prop_assert!(f.host(t.src.host).unwrap().conntrack.is_established(&t));
            prop_assert!(f.host(t.dst.host).unwrap().conntrack.is_established(&t));
        }
        // Close everything; conntrack must drain completely.
        for id in open {
            f.close(id);
        }
        for h in hosts {
            prop_assert!(f.host(h).unwrap().conntrack.is_empty());
        }
        let _ = Gid(0);
    }

    /// The UBF decision function is symmetric in the right ways: same-user
    /// always allowed, and group opt-in depends only on (initiator uid,
    /// listener egid) membership.
    #[test]
    fn policy_decision_matches_membership(init in 0u8..4, listen in 0u8..4, egid_of in 0u8..4) {
        let mut db = UserDb::new();
        let users: Vec<Uid> = (0..4).map(|i| db.create_user(&format!("u{i}")).unwrap()).collect();
        let proj = db.create_project_group("p", users[0]).unwrap();
        db.add_to_group(users[0], proj, users[1]).unwrap();

        let init_cred = db.credentials(users[init as usize]).unwrap();
        let listen_cred = db.credentials(users[listen as usize]).unwrap();
        // Listener may have newgrp'd to proj (only members can).
        let listener = if egid_of == 0 && db.is_member(users[listen as usize], proj) {
            PeerInfo::from_cred(&db.newgrp(&listen_cred, proj).unwrap())
        } else {
            PeerInfo::from_cred(&listen_cred)
        };
        let initiator = PeerInfo::from_cred(&init_cred);
        let d = decide(&UbfPolicy::default(), &db, &initiator, &listener);
        if initiator.uid == listener.uid {
            prop_assert_eq!(d, Decision::AllowSameUser);
        } else if db.is_member(initiator.uid, listener.egid) {
            prop_assert_eq!(d, Decision::AllowGroupMember);
        } else {
            prop_assert_eq!(d, Decision::Deny);
        }
    }
}
