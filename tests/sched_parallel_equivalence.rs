//! Parallel-dispatch equivalence: the sharded scheduler core must be
//! **bit-identical** to the sequential engine at every thread width.
//!
//! Sharded dispatch (`Scheduler::set_shard_threads`) fans per-class head
//! *planning* out over worker threads and consumes the precomputed plans
//! in the sequential class merge, re-validating `(head, state_version)`
//! before use. The determinism contract — a seed may only be consumed at
//! the exact version it was planned for, and consumption order is the
//! sequential class order — means thread count may change *wall time*
//! only, never a scheduling decision. This suite proves it the blunt way:
//!
//! * random traces × every `NodeSharing` policy × every knobs-on policy
//!   config (fair-share alone, + preemption, + reservations, all three)
//!   × node failures, driven in lockstep at widths 1/2/4/8 — identical
//!   squeue views along the way, identical start times / placements /
//!   epilog order / preemption records / **flight-recorder event
//!   streams** at the end;
//! * the knobs-off config raced against the retained
//!   [`ReferenceScheduler`] oracle with sharding requested — the width
//!   knob must be inert outside the policy plane;
//! * a seed-replay determinism check (`BENCH`-style fingerprints plus
//!   decision counters): every counter except the `sched.shard.*` family
//!   is thread-invariant — the split is documented in
//!   `crates/sched/src/obs.rs` and cross-checked by eus-analyze R4.
//!
//! Per-property case count is `SCHED_PAR_PROPTEST_CASES` (CI runs 64).

use hpc_user_separation::obs::ObsConfig;
use hpc_user_separation::sched::{
    JobSpec, NodeSharing, QosClass, ReferenceScheduler, SchedConfig, Scheduler,
};
use hpc_user_separation::simcore::{SimDuration, SimRng, SimTime};
use hpc_user_separation::simos::{Credentials, Gid, NodeId, Uid, UserDb};
use hpc_user_separation::workloads::{UserPopulation, WorkloadMix};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::Arc;

/// Sharding widths under test. 1 is the sequential baseline the others
/// must match bit-for-bit.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Per-property case count; CI raises it via `SCHED_PAR_PROPTEST_CASES`.
fn cases(default: u32) -> u32 {
    std::env::var("SCHED_PAR_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn policy_from(i: u8) -> NodeSharing {
    match i % 3 {
        0 => NodeSharing::Shared,
        1 => NodeSharing::Exclusive,
        _ => NodeSharing::WholeNodeUser,
    }
}

/// The knobs-on policy configs the shard plane must not perturb. Fair
/// share is always on — per-partition classes are what sharding fans out.
fn knobs_from(i: u8, policy: NodeSharing) -> SchedConfig {
    let mut cfg = SchedConfig {
        policy,
        fair_share: true,
        ..SchedConfig::default()
    };
    match i % 4 {
        0 => {}
        1 => cfg.preemption = true,
        2 => cfg.reservations = 4,
        _ => {
            cfg.preemption = true;
            cfg.reservations = 4;
        }
    }
    cfg
}

/// A randomized trace with the request shapes that exercise every shard
/// staleness path: mixed QoS (preemption), per-job `--exclusive`, tight
/// wall-time limits, and partition routing across both classes.
fn sharded_trace(seed: u64) -> Vec<(SimTime, Arc<JobSpec>)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, 10, 3, 1.0, &mut rng);
    let trace = WorkloadMix::llsc_like().generate(&pop, SimTime::from_secs(900), &mut rng);
    trace
        .entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let mut spec = e.spec.clone();
            if i % 7 == 3 {
                spec.request_exclusive = true;
            }
            spec.qos = match i % 9 {
                0..=4 => QosClass::Bulk,
                5 | 6 => QosClass::Normal,
                7 => QosClass::Interactive,
                _ => QosClass::Urgent,
            };
            if i % 11 == 5 {
                spec.time_limit =
                    SimDuration::from_secs_f64((spec.duration.as_secs_f64() / 2.0).max(1.0));
            }
            spec.partition = match i % 5 {
                0 | 1 => Some("batch".to_string()),
                2 => Some("debug".to_string()),
                _ => None, // resolves to the default partition's class
            };
            (e.at, Arc::new(spec))
        })
        .collect()
}

/// One engine per width, identical except for `set_shard_threads`.
fn build_fleet(config: &SchedConfig, nodes: u32) -> Vec<Scheduler> {
    WIDTHS
        .iter()
        .map(|&threads| {
            let mut s = Scheduler::new(config.clone());
            s.set_shard_threads(threads);
            assert_eq!(s.shard_threads(), threads);
            s.enable_obs(ObsConfig::enabled().with_flight_capacity(512));
            for _ in 0..nodes {
                s.add_node(16, 65_536, 2);
            }
            let half = nodes / 2;
            let batch: Vec<NodeId> = (1..=half).map(NodeId).collect();
            let debug: Vec<NodeId> = (half + 1..=nodes).map(NodeId).collect();
            s.partitions_mut().add("batch", batch, true).unwrap();
            s.partitions_mut().add("debug", debug, false).unwrap();
            s
        })
        .collect()
}

/// Drive every width through the same trace + failure schedule in
/// lockstep and assert the widths are observationally indistinguishable,
/// live (squeue under PrivateData, counts) and terminally (states, times,
/// placements, epilog order, preemption records, flight streams).
fn assert_widths_identical(
    seed: u64,
    policy: NodeSharing,
    knobs: u8,
    nodes: u32,
    failures: u32,
) -> Result<(), TestCaseError> {
    let config = knobs_from(knobs, policy);
    let mut fleet = build_fleet(&config, nodes);
    let trace = sharded_trace(seed);
    for (at, spec) in &trace {
        let ids: Vec<_> = fleet
            .iter_mut()
            .map(|s| s.submit_at_shared(*at, Arc::clone(spec)))
            .collect();
        prop_assert!(
            ids.windows(2).all(|w| w[0] == w[1]),
            "job ids assigned in lockstep"
        );
    }
    let mut frng = SimRng::seed_from_u64(seed ^ 0xfa11);
    for _ in 0..failures {
        let at = SimTime::from_secs(frng.range_u64(1, 900));
        let node = NodeId(frng.range_u64(1, nodes as u64 + 1) as u32);
        for s in fleet.iter_mut() {
            s.schedule_node_failure(at, node);
        }
    }

    let viewers = [Credentials::new(Uid(1001), Gid(2001)), Credentials::root()];
    let mut t = 0u64;
    loop {
        t += 157;
        let horizon = SimTime::from_secs(t);
        for s in fleet.iter_mut() {
            s.run_until(horizon);
        }
        let (base, rest) = fleet.split_first().expect("fleet is non-empty");
        for (i, s) in rest.iter().enumerate() {
            prop_assert_eq!(
                base.pending_count(),
                s.pending_count(),
                "pending at t={} width {}",
                t,
                WIDTHS[i + 1]
            );
            prop_assert_eq!(base.running_count(), s.running_count());
            for v in &viewers {
                prop_assert_eq!(base.squeue(v), s.squeue(v), "squeue width {}", WIDTHS[i + 1]);
            }
        }
        if base.pending_count() == 0 && base.running_count() == 0 && t > 900 {
            break;
        }
        if t > 40_000 {
            prop_assert_eq!(base.running_count(), 0, "no runaway jobs");
            break;
        }
    }
    let ends: Vec<SimTime> = fleet.iter_mut().map(|s| s.run_to_completion()).collect();
    let epilogs: Vec<_> = fleet.iter_mut().map(|s| s.drain_epilogs()).collect();
    let (base, rest) = fleet.split_first().expect("fleet is non-empty");
    for (i, s) in rest.iter().enumerate() {
        let width = WIDTHS[i + 1];
        prop_assert_eq!(ends[0], ends[i + 1], "makespan at width {}", width);
        prop_assert_eq!(&epilogs[0], &epilogs[i + 1], "epilog order at width {}", width);
        prop_assert_eq!(base.jobs.len(), s.jobs.len());
        for (id, a) in &base.jobs {
            let b = &s.jobs[id];
            prop_assert_eq!(a.state, b.state, "state of {} at width {}", id, width);
            prop_assert_eq!(a.started, b.started, "start of {} at width {}", id, width);
            prop_assert_eq!(a.ended, b.ended, "end of {} at width {}", id, width);
            prop_assert_eq!(
                &a.allocations,
                &b.allocations,
                "placement of {} at width {}",
                id,
                width
            );
        }
        prop_assert_eq!(
            &base.preemptions,
            &s.preemptions,
            "preemption records at width {}",
            width
        );
        // The flight recorders saw the identical event stream — same
        // kinds, same payloads, same sim times, same sequence numbers.
        prop_assert_eq!(
            base.obs.rec.flight.events(),
            s.obs.rec.flight.events(),
            "flight stream at width {}",
            width
        );
    }
    // The sweep must actually exercise the shard plane, or this file
    // proves nothing: widths > 1 plan, width 1 never does.
    let plans: Vec<u64> = fleet
        .iter()
        .map(|s| s.obs.rec.counter_value(s.obs.c_shard_plans))
        .collect();
    prop_assert_eq!(plans[0], 0, "width 1 never fans out");
    prop_assert!(
        plans[1..].iter().all(|&p| p > 0),
        "every width > 1 planned at least once (got {:?})",
        plans
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(6), ..ProptestConfig::default() })]

    /// Random traces × policy × knobs-on config, healthy cluster.
    #[test]
    fn widths_identical_on_healthy_cluster(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
        knobs in 0u8..4,
    ) {
        assert_widths_identical(seed, policy_from(policy_idx), knobs, 12, 0)?;
    }

    /// Same, with node failures injected mid-run (staleness storm: every
    /// failure bumps the state version under planned-but-unconsumed seeds).
    #[test]
    fn widths_identical_under_node_failures(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
        knobs in 0u8..4,
        failures in 1u32..4,
    ) {
        assert_widths_identical(seed, policy_from(policy_idx), knobs, 10, failures)?;
    }

    /// Outside the policy plane the width knob must be inert: a sharded
    /// engine with knobs off is still bit-identical to the reference
    /// oracle (same comparison the main equivalence suite runs).
    #[test]
    fn knobs_off_sharding_matches_reference(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
    ) {
        let config = SchedConfig {
            policy: policy_from(policy_idx),
            ..SchedConfig::default()
        };
        let mut opt = Scheduler::new(config.clone());
        opt.set_shard_threads(4);
        let mut reference = ReferenceScheduler::new(config);
        for _ in 0..10 {
            opt.add_node(16, 65_536, 2);
            reference.add_node(16, 65_536, 2);
        }
        for (at, spec) in sharded_trace(seed) {
            let mut spec = (*spec).clone();
            spec.partition = None; // no partitions configured here
            let spec = Arc::new(spec);
            let a = opt.submit_at_shared(at, Arc::clone(&spec));
            let b = reference.submit_at_shared(at, spec);
            prop_assert_eq!(a, b);
        }
        let end_opt = opt.run_to_completion();
        let end_ref = reference.run_to_completion();
        prop_assert_eq!(end_opt, end_ref, "identical makespan");
        for (id, a) in &opt.jobs {
            let b = &reference.jobs[id];
            prop_assert_eq!(a.state, b.state);
            prop_assert_eq!(a.started, b.started);
            prop_assert_eq!(a.ended, b.ended);
            prop_assert_eq!(&a.allocations, &b.allocations);
        }
        prop_assert_eq!(opt.drain_epilogs(), reference.drain_epilogs());
        prop_assert_eq!(
            opt.obs.rec.counter_value(opt.obs.c_shard_plans),
            0,
            "knobs off: the shard plane never engages"
        );
    }
}

/// Seed-replay determinism (the BENCH contract): the same `(seed, trace)`
/// replayed at different widths produces identical fingerprints — events,
/// makespan, completion counts — **and identical decision counters**.
/// Only the `sched.shard.*` family may vary with width (it records the
/// planning fan-out itself); the split is documented in the
/// `eus_sched::obs` module docs and mirrored in ARCHITECTURE.md's
/// thread-invariant counter table.
#[test]
fn seed_replay_counters_thread_invariant() {
    let run = |threads: usize| {
        let config = knobs_from(3, NodeSharing::Shared); // all knobs on
        let mut fleet = build_fleet(&config, 12);
        let s = &mut fleet[if threads == 1 { 0 } else { 2 }];
        assert_eq!(s.shard_threads(), threads);
        for (at, spec) in sharded_trace(0xbe9c) {
            s.submit_at_shared(at, spec);
        }
        let end = s.run_to_completion();
        (
            end,
            s.metrics.completed.get(),
            s.metrics.timed_out.get(),
            s.jobs.len(),
            s.obs.snapshot(),
        )
    };
    let (end1, done1, to1, jobs1, snap1) = run(1);
    let (end4, done4, to4, jobs4, snap4) = run(4);
    // Fingerprints: the numbers a BENCH row is built from.
    assert_eq!(end1, end4, "makespan is thread-invariant");
    assert_eq!(done1, done4, "completions are thread-invariant");
    assert_eq!(to1, to4, "timeouts are thread-invariant");
    assert_eq!(jobs1, jobs4);
    // Decision counters: everything except `sched.shard.*` must match.
    let invariant = |snap: &hpc_user_separation::obs::ObsSnapshot| -> Vec<(&str, u64)> {
        snap.counters
            .iter()
            .filter(|(name, _)| !name.starts_with("sched.shard."))
            .copied()
            .collect()
    };
    assert_eq!(
        invariant(&snap1),
        invariant(&snap4),
        "every non-shard counter is thread-invariant"
    );
    let shard = |snap: &hpc_user_separation::obs::ObsSnapshot, name: &str| -> u64 {
        snap.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(
        shard(&snap1, "sched.shard.plans"),
        0,
        "width 1 skips planning entirely"
    );
    assert!(
        shard(&snap4, "sched.shard.plans") > 0,
        "width 4 planned: the run exercised the fan-out"
    );
    assert!(
        shard(&snap4, "sched.shard.seed_hits") > 0,
        "the merge consumed fresh seeds"
    );
}
