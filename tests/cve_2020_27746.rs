//! The CVE-2020-27746 anecdote (paper Sec. IV-A): a Slurm X11-forwarding bug
//! exposed a secret through process information readable by other users.
//! LLSC's `hidepid=2` configuration "effectively mitigated the vulnerability
//! in advance" — the defense-in-depth nirvana the paper celebrates.
//!
//! The scenario: the scheduler's node helper launches a user task whose
//! command line carries an X11 magic cookie. On a default `/proc`, any local
//! user can harvest it; with `hidepid=2` the process is not even visible.

use hpc_user_separation::sched::JobSpec;
use hpc_user_separation::simcore::{SimDuration, SimTime};
use hpc_user_separation::simos::{Credentials, Pid};
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};

const COOKIE: &str = "MIT-MAGIC-COOKIE-1:d0e2f8...secret";

/// Launch the vulnerable job shape and return everything an attacker's pid
/// sweep can harvest from the compute node.
fn harvest(config: SeparationConfig) -> Vec<String> {
    let mut c = SecureCluster::new(config, ClusterSpec::tiny());
    let victim = c.add_user("victim").unwrap();
    let attacker = c.add_user("attacker").unwrap();

    // The buggy srun places the cookie on the command line of the user's
    // task (the vulnerable pre-20.11.3 behaviour).
    c.submit(
        JobSpec::new(victim, "x11-job", SimDuration::from_secs(600)).with_cmdline([
            "srun",
            "--x11",
            &format!("--xauth={COOKIE}"),
        ]),
    );
    c.advance_to(SimTime::from_secs(1));
    let node = c.compute_ids[0];

    // The attacker sweeps the pid space on that node. (They do not need a
    // shell there in the shared-node baseline; model the worst case.)
    let a_cred: Credentials = c.credentials(attacker);
    let node_os = c.node(node);
    let procfs = node_os.procfs();
    let mut found = Vec::new();
    for pid in 1..=64u32 {
        if let Ok(cmdline) = procfs.read_cmdline(&a_cred, Pid(pid)) {
            for arg in cmdline {
                if arg.contains("MIT-MAGIC-COOKIE") {
                    found.push(arg);
                }
            }
        }
    }
    found
}

#[test]
fn default_proc_exposes_the_cookie() {
    let stolen = harvest(SeparationConfig::baseline());
    assert_eq!(stolen.len(), 1, "baseline leaks the cookie");
    assert!(stolen[0].contains("secret"));
}

#[test]
fn hidepid_mitigates_in_advance() {
    let stolen = harvest(SeparationConfig::llsc());
    assert!(
        stolen.is_empty(),
        "hidepid=2 pre-mitigates the CVE: {stolen:?}"
    );
}

#[test]
fn mitigation_needs_only_hidepid_not_the_rest() {
    // Isolate the credit: a baseline cluster with ONLY hidepid flipped on
    // already blocks the harvest — the mitigation was configuration, not
    // the firewall or scheduler policy.
    let mut cfg = SeparationConfig::baseline();
    cfg.hidepid = true;
    let stolen = harvest(cfg);
    assert!(stolen.is_empty());
}

#[test]
fn victim_still_sees_their_own_cmdline() {
    // The mitigation must not break the victim's own tooling.
    let mut c = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny());
    let victim = c.add_user("victim").unwrap();
    c.submit(
        JobSpec::new(victim, "x11-job", SimDuration::from_secs(600)).with_cmdline([
            "srun",
            "--x11",
            &format!("--xauth={COOKIE}"),
        ]),
    );
    c.advance_to(SimTime::from_secs(1));
    let node = c.compute_ids[0];
    let v_cred = c.credentials(victim);
    let procfs_node = c.node(node);
    let procfs = procfs_node.procfs();
    let own: Vec<_> = procfs
        .list(&v_cred)
        .into_iter()
        .filter(|e| e.uid == victim)
        .collect();
    assert_eq!(own.len(), 1);
    assert!(procfs.read_cmdline(&v_cred, own[0].pid).is_ok());
}
