//! `eus-revsync` properties:
//!
//! 1. **Anti-entropy convergence**: whatever partial state push loss and
//!    partitions leave a replica in, one healed anti-entropy round brings
//!    it to exactly the issuer's log (same revoked set, same frontier).
//! 2. **Bounded propagation**: a serial revoked at its issuer is rejected
//!    at *every* subscribed sister site within the staleness budget, for
//!    any realm count and loss rate.
//! 3. **Fail closed past the budget**: a severed feed makes validation
//!    refuse (`StaleReplica`) once — and only once — the replica's lag
//!    exceeds the budget.
//! 4. **Monotonicity regression**: no delta sequence, however gappy,
//!    overlapping, or stale, can make a replica *un*-revoke a serial.
//!
//! The CI `revsync-properties` job reruns this file with a larger case
//! count via `REVSYNC_PROPTEST_CASES`.

use eus_fedauth::{
    shared_broker, BrokerPolicy, CredError, CredSerial, CredentialBroker, CredentialPlane, RealmId,
    SharedBroker,
};
use eus_revsync::{ApplyOutcome, CrlDelta, CrlReplica, RevSyncConfig, RevSyncMesh};
use eus_simcore::{SimDuration, SimTime};
use eus_simos::{Uid, UserDb};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Per-property case count; the CI property job raises it via
/// `REVSYNC_PROPTEST_CASES`.
fn cases(default: u32) -> u32 {
    std::env::var("REVSYNC_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn mesh_of(
    n: u32,
    cfg: RevSyncConfig,
) -> (UserDb, Vec<Uid>, RevSyncMesh, Vec<(RealmId, SharedBroker)>) {
    let mut db = UserDb::new();
    let users: Vec<Uid> = (0..4)
        .map(|i| db.create_user(&format!("u{i}")).unwrap())
        .collect();
    let mut mesh = RevSyncMesh::new(cfg);
    let mut planes = Vec::new();
    for r in 1..=n {
        let realm = RealmId(r);
        let plane = shared_broker(CredentialBroker::new(
            realm,
            1000 + r as u64,
            BrokerPolicy::default(),
        ));
        mesh.add_realm(realm, plane.clone());
        planes.push((realm, plane));
    }
    for (site, _) in &planes {
        for (issuer, _) in &planes {
            if site != issuer {
                mesh.subscribe(*site, *issuer);
            }
        }
    }
    (db, users, mesh, planes)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(24), ..ProptestConfig::default() })]

    /// (1) + (2): random revocation traffic under random push loss — after
    /// time passes, every replica converges to its issuer's exact log, and
    /// every revoked serial is rejected at every sister inside the budget.
    #[test]
    fn anti_entropy_converges_replicas_from_any_partial_state(
        n in 2u32..5,
        loss_pct in 0u8..=100,
        ops in proptest::collection::vec((0u8..4, 0u8..4, 1u64..60), 1..24),
    ) {
        let cfg = RevSyncConfig {
            feed_interval: SimDuration::from_secs(5),
            anti_entropy: SimDuration::from_secs(60),
            max_lag: SimDuration::from_secs(900),
            push_loss: loss_pct as f64 / 100.0,
            ..RevSyncConfig::default()
        };
        let (db, users, mut mesh, planes) = mesh_of(n, cfg);
        let mut minted: Vec<eus_fedauth::SignedToken> = Vec::new();
        let mut now = SimTime::ZERO;

        // Random interleaving of logins, revocations, and time.
        for (what, subject, dt) in ops {
            let (_, plane) = &planes[(subject as usize) % planes.len()];
            let user = users[(subject as usize) % users.len()];
            match what {
                0 => {
                    if let Ok(t) = plane.write().login(&db, user, None) {
                        minted.push(t);
                    }
                }
                1 => {
                    plane.write().revoke_user(user);
                }
                2 => {
                    if let Some(t) = minted.get(subject as usize) {
                        let serial = t.serial;
                        // Route to the minting plane (realm-tagged).
                        for (realm, p) in &planes {
                            if *realm == t.realm {
                                p.write().revoke_serial(serial);
                            }
                        }
                    }
                }
                _ => {
                    now += SimDuration::from_secs(dt);
                    mesh.pump(now);
                }
            }
        }

        // Let one full anti-entropy period (plus wire slack) elapse.
        let settle = now + cfg.anti_entropy + cfg.feed_interval + SimDuration::from_secs(5);
        mesh.pump(settle);

        for (site, _) in &planes {
            for (issuer, plane) in &planes {
                if site == issuer {
                    continue;
                }
                let replica = mesh.replica(*site, *issuer).unwrap();
                let issuer_log = plane.read().revocations_since(0);
                prop_assert_eq!(
                    replica.applied_seq(),
                    issuer_log.len() as u64,
                    "replica of {} at {} must reach the issuer frontier",
                    issuer, site
                );
                let replica_knows: BTreeSet<CredSerial> =
                    issuer_log.iter().filter(|s| replica.is_revoked(**s)).copied().collect();
                let issuer_set: BTreeSet<CredSerial> = issuer_log.iter().copied().collect();
                prop_assert_eq!(replica.revoked_count(), issuer_set.len());
                prop_assert_eq!(replica_knows, issuer_set, "replica must hold the full set");
                // Freshness is inside the budget once traffic flows again.
                prop_assert!(replica.lag(settle) <= cfg.max_lag);
            }
        }

        // (2) every still-window-valid revoked token is rejected at every
        // sister; unrevoked live tokens still validate.
        for t in &minted {
            let issuer_plane = &planes.iter().find(|(r, _)| *r == t.realm).unwrap().1;
            let revoked = matches!(
                issuer_plane.read().validate_token(t),
                Err(CredError::Revoked(_))
            );
            let expired = settle >= t.expires;
            for (site, _) in &planes {
                if *site == t.realm {
                    continue;
                }
                let verdict = mesh.validate_token_at(*site, t, settle);
                if revoked {
                    prop_assert_eq!(
                        verdict,
                        Err(CredError::Revoked(t.serial)),
                        "a serial revoked at {} must be rejected at {} within budget",
                        t.realm, site
                    );
                } else if !expired {
                    prop_assert_eq!(verdict.unwrap(), t.user);
                }
            }
        }
    }

    /// (3): sever every feed into one site; validation fails closed exactly
    /// when the replica's lag crosses the budget — never open.
    #[test]
    fn lag_beyond_budget_fails_closed(
        budget_secs in 60u64..600,
        over in 1u64..100,
    ) {
        let cfg = RevSyncConfig {
            feed_interval: SimDuration::from_secs(5),
            anti_entropy: SimDuration::from_secs(30),
            max_lag: SimDuration::from_secs(budget_secs),
            ..RevSyncConfig::default()
        };
        let (db, users, mut mesh, planes) = mesh_of(2, cfg);
        let (sister, sister_plane) = (planes[1].0, planes[1].1.clone());
        let home = planes[0].0;
        let token = sister_plane.write().login(&db, users[0], None).unwrap();

        mesh.set_partitioned(sister, home, true);
        let last_sync = mesh.replica(home, sister).unwrap().last_sync();

        // At the edge: still answering.
        let edge = last_sync + cfg.max_lag;
        mesh.pump(edge);
        prop_assert_eq!(mesh.validate_token_at(home, &token, edge).unwrap(), users[0]);

        // Past the edge: refused outright, and the refusal names the realm.
        let past = edge + SimDuration::from_secs(over);
        mesh.pump(past);
        let verdict = mesh.validate_token_at(home, &token, past);
        prop_assert!(
            matches!(verdict, Err(CredError::StaleReplica { realm, .. }) if realm == sister),
            "expected StaleReplica, got {:?}",
            verdict
        );
    }

    /// (4) regression: whatever deltas arrive — gappy, overlapping, stale,
    /// or fabricated — a replica never forgets a revocation.
    #[test]
    fn replica_state_never_unrevokes_a_serial(
        deltas in proptest::collection::vec(
            (1u64..12, proptest::collection::vec(0u64..40, 0..6), 0u64..500),
            1..30,
        ),
    ) {
        let issuer = RealmId(2);
        let broker = CredentialBroker::new(issuer, 7, BrokerPolicy::default());
        let mut replica =
            CrlReplica::bootstrap(issuer, broker.verifier(), vec![], SimTime::ZERO);
        let mut ever_revoked: BTreeSet<CredSerial> = BTreeSet::new();

        for (first_seq, serials, as_of) in deltas {
            let serials: Vec<CredSerial> = serials.into_iter().map(CredSerial).collect();
            let delta = CrlDelta {
                issuer,
                first_seq,
                head: first_seq - 1 + serials.len() as u64,
                serials,
                as_of: SimTime::from_secs(as_of),
                trace: hpc_user_separation::obs::TraceCtx::NONE,
            };
            let before = replica.applied_seq();
            match replica.apply(&delta) {
                ApplyOutcome::Applied(_) => {
                    for (i, s) in delta.serials.iter().enumerate() {
                        if delta.first_seq + i as u64 > before {
                            ever_revoked.insert(*s);
                        }
                    }
                }
                ApplyOutcome::Gap { expected } => {
                    prop_assert_eq!(expected, before + 1);
                    prop_assert_eq!(replica.applied_seq(), before, "gap applies nothing");
                }
            }
            // THE invariant: everything ever learned stays revoked.
            for s in &ever_revoked {
                prop_assert!(
                    replica.is_revoked(*s),
                    "replica un-revoked {} after a delta",
                    s
                );
            }
            // And the frontier never moves backwards.
            prop_assert!(replica.applied_seq() >= before);
        }
    }
}

/// End-to-end determinism: the same mesh run twice produces byte-identical
/// metrics (loss draws are seeded) — the property suite above relies on it.
#[test]
fn mesh_runs_are_deterministic() {
    let run = || {
        let cfg = RevSyncConfig {
            feed_interval: SimDuration::from_secs(5),
            anti_entropy: SimDuration::from_secs(60),
            push_loss: 0.5,
            ..RevSyncConfig::default()
        };
        let (db, users, mut mesh, planes) = mesh_of(3, cfg);
        for k in 0..10u64 {
            let (_, plane) = &planes[(k % 3) as usize];
            let _ = plane.write().login(&db, users[(k % 4) as usize], None);
            plane.write().revoke_user(users[(k % 4) as usize]);
            mesh.pump(SimTime::from_secs(7 * (k + 1)));
        }
        mesh.pump(SimTime::from_secs(300));
        format!("{:?}", mesh.metrics)
    };
    assert_eq!(run(), run());
}
