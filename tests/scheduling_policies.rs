//! Scheduler-policy integration tests (paper Sec. IV-B): the qualitative
//! orderings the paper asserts must hold on the synthetic LLSC-like workload.

use hpc_user_separation::sched::{JobSpec, NodeSharing, SchedConfig, Scheduler};
use hpc_user_separation::simcore::{SimDuration, SimRng, SimTime};
use hpc_user_separation::simos::{Uid, UserDb};
use hpc_user_separation::workloads::{UserPopulation, WorkloadMix};

struct PolicyResult {
    policy: NodeSharing,
    effective_util: f64,
    claimed_util: f64,
    p50_wait: f64,
    makespan: f64,
}

fn run_policy(policy: NodeSharing, seed: u64) -> PolicyResult {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, 24, 4, 1.0, &mut rng);
    let trace = WorkloadMix::llsc_like().generate(&pop, SimTime::from_secs(2 * 3600), &mut rng);
    let mut sched = Scheduler::new(SchedConfig {
        policy,
        ..SchedConfig::default()
    });
    for _ in 0..24 {
        sched.add_node(16, 65_536, 0);
    }
    trace.submit_all(&mut sched);
    let end = sched.run_to_completion();
    let wait = sched.metrics.wait_times.summary().expect("jobs ran");
    PolicyResult {
        policy,
        effective_util: sched.effective_utilization(),
        claimed_util: sched.utilization(),
        p50_wait: wait.p50,
        makespan: end.as_secs_f64(),
    }
}

#[test]
fn paper_ordering_holds_on_llsc_like_workload() {
    let shared = run_policy(NodeSharing::Shared, 7);
    let exclusive = run_policy(NodeSharing::Exclusive, 7);
    let whole = run_policy(NodeSharing::WholeNodeUser, 7);

    // Whole-node must land within 20% of shared on effective utilization...
    assert!(
        whole.effective_util > shared.effective_util * 0.8,
        "whole-node {:.3} vs shared {:.3}",
        whole.effective_util,
        shared.effective_util
    );
    // ...while exclusive is strictly worse AND wastes most of what it
    // claims (whole nodes held by single-task jobs).
    assert!(
        exclusive.effective_util < shared.effective_util * 0.8,
        "exclusive {:.3} vs shared {:.3}",
        exclusive.effective_util,
        shared.effective_util
    );
    assert!(
        exclusive.effective_util < exclusive.claimed_util * 0.5,
        "exclusive wastes most of its claim: used {:.3} of claimed {:.3}",
        exclusive.effective_util,
        exclusive.claimed_util
    );
    // Shared and whole-node claim only what they use.
    assert!((shared.claimed_util - shared.effective_util).abs() < 1e-9);
    assert!((whole.claimed_util - whole.effective_util).abs() < 1e-9);
    // Median waits: exclusive is catastrophically worse for this mix.
    assert!(
        exclusive.p50_wait > whole.p50_wait * 10.0 + 60.0,
        "exclusive p50 {} vs whole-node {}",
        exclusive.p50_wait,
        whole.p50_wait
    );
    // Makespans: whole-node within 25% of shared; exclusive beyond it.
    assert!(whole.makespan < shared.makespan * 1.25);
    assert!(exclusive.makespan > whole.makespan);
    assert_eq!(shared.policy, NodeSharing::Shared);
}

#[test]
fn whole_node_never_mixes_users() {
    // The invariant that gives the policy its name, checked continuously
    // over a stochastic run.
    let mut rng = SimRng::seed_from_u64(99);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, 16, 3, 1.0, &mut rng);
    let trace = WorkloadMix::llsc_like().generate(&pop, SimTime::from_secs(3600), &mut rng);
    let mut sched = Scheduler::new(SchedConfig {
        policy: NodeSharing::WholeNodeUser,
        ..SchedConfig::default()
    });
    for _ in 0..8 {
        sched.add_node(16, 65_536, 0);
    }
    trace.submit_all(&mut sched);
    let mut t = 0;
    loop {
        t += 13; // odd step to land at varied instants
        sched.run_until(SimTime::from_secs(t));
        for node in sched.nodes.values() {
            assert!(
                node.users_present().len() <= 1,
                "node {} mixed users at t={t}",
                node.id
            );
        }
        if sched.pending_count() == 0 && sched.running_count() == 0 && t > 3600 {
            break;
        }
        assert!(t < 500_000, "workload should drain");
    }
}

#[test]
fn blast_radius_shared_vs_whole_node() {
    // Sec. IV-B: on a shared node an OOM kill fails *everyone's* jobs.
    // Build the co-residency explicitly, then fail the node.
    for (policy, expected_victims) in [
        (NodeSharing::Shared, 2usize),
        (NodeSharing::WholeNodeUser, 1usize),
    ] {
        let mut sched = Scheduler::new(SchedConfig {
            policy,
            ..SchedConfig::default()
        });
        sched.add_node(16, 65_536, 0);
        sched.add_node(16, 65_536, 0);
        // Two users, each half a node of work.
        for u in [1u32, 2] {
            sched.submit_at(
                SimTime::ZERO,
                JobSpec::new(Uid(u), "half", SimDuration::from_secs(1000))
                    .with_tasks(8)
                    .with_mem_per_task(64),
            );
        }
        sched.schedule_node_failure(SimTime::from_secs(10), eus_simos::NodeId(1));
        sched.run_until(SimTime::from_secs(20));
        assert_eq!(sched.failures.len(), 1);
        assert_eq!(
            sched.failures[0].affected_users().len(),
            expected_victims,
            "policy {policy}"
        );
    }
}

#[test]
fn backfill_improves_throughput_without_starving_head() {
    // With and without backfill on a bursty trace: backfill must not be
    // slower, and the head job of any backlog must start no later.
    let build = |backfill: bool| {
        let mut sched = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            backfill,
            ..SchedConfig::default()
        });
        sched.add_node(8, 65_536, 0);
        // A wall of work then a wide job then trickle.
        sched.submit_at(
            SimTime::ZERO,
            JobSpec::new(Uid(1), "wall", SimDuration::from_secs(100)).with_tasks(6),
        );
        let head = sched.submit_at(
            SimTime::from_secs(1),
            JobSpec::new(Uid(2), "wide", SimDuration::from_secs(50)).with_tasks(8),
        );
        for i in 0..10 {
            sched.submit_at(
                SimTime::from_secs(2 + i),
                JobSpec::new(Uid(3), "small", SimDuration::from_secs(20)).with_tasks(2),
            );
        }
        let end = sched.run_to_completion();
        (sched.jobs[&head].started.unwrap(), end)
    };
    let (head_with, end_with) = build(true);
    let (head_without, end_without) = build(false);
    assert!(head_with <= head_without, "EASY must not delay the head");
    assert!(end_with <= end_without, "backfill must not hurt makespan");
}

#[test]
fn deterministic_across_identical_runs() {
    let a = run_policy(NodeSharing::WholeNodeUser, 1234);
    let b = run_policy(NodeSharing::WholeNodeUser, 1234);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.p50_wait, b.p50_wait);
    assert_eq!(a.effective_util, b.effective_util);
}
