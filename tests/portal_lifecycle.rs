//! Portal + scheduler lifecycle integration: routes are born with web-app
//! jobs and die with them (the epilog wiring), and the load-attribution
//! support workflow runs on the assembled cluster.

use hpc_user_separation::portal::{PortalError, RouteKey};
use hpc_user_separation::sched::{JobKind, JobSpec};
use hpc_user_separation::simcore::{SimDuration, SimTime};
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};

#[test]
fn routes_die_with_their_job() {
    let mut c = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny());
    let alice = c.add_user("alice").unwrap();

    let job = c.submit(
        JobSpec::new(alice, "jupyter", SimDuration::from_secs(100)).with_kind(JobKind::WebApp),
    );
    c.advance_to(SimTime::from_secs(1));
    let node = {
        let sched = c.sched.read();
        *sched.jobs[&job].allocations.keys().next().unwrap()
    };
    let key = c
        .launch_webapp(alice, job, "jupyter", node, 8888, "nb", None)
        .unwrap();
    let token = c.portal_login(alice).unwrap();
    assert!(c.portal_fetch(token, &key).is_ok());
    assert_eq!(c.portal.routes.len(), 1);

    // The job completes; the epilog removes the route.
    c.run_to_completion();
    assert_eq!(c.portal.routes.len(), 0, "route cleaned up by epilog");
    assert!(matches!(
        c.portal_fetch(token, &key),
        Err(PortalError::NoSuchRoute(_))
    ));
}

#[test]
fn per_user_route_listing_is_private_by_construction() {
    let mut c = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny());
    let alice = c.add_user("alice").unwrap();
    let bob = c.add_user("bob").unwrap();
    let node = c.compute_ids[0];
    c.launch_webapp(
        alice,
        hpc_user_separation::sched::JobId(1),
        "a",
        node,
        8888,
        "x",
        None,
    )
    .unwrap();
    c.launch_webapp(
        bob,
        hpc_user_separation::sched::JobId(2),
        "b",
        node,
        8889,
        "y",
        None,
    )
    .unwrap();
    assert_eq!(c.portal.routes.for_user(alice).len(), 1);
    assert_eq!(c.portal.routes.for_user(bob).len(), 1);
}

#[test]
fn wrong_key_shapes_fail_cleanly() {
    let mut c = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny());
    let alice = c.add_user("alice").unwrap();
    let token = c.portal_login(alice).unwrap();
    let ghost = RouteKey {
        user: alice,
        job: hpc_user_separation::sched::JobId(404),
        name: "nothing".into(),
    };
    assert!(matches!(
        c.portal_fetch(token, &ghost),
        Err(PortalError::NoSuchRoute(_))
    ));
}

#[test]
fn load_attribution_workflow_end_to_end() {
    use hpc_user_separation::{attribute_load, fsperm::seepid};
    let mut c = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny());
    let staff = c.add_user("staff").unwrap();
    let user = c.add_user("user").unwrap();
    c.fsperm_policy = c.fsperm_policy.clone().allow_seepid(staff);
    let login = c.login_node();
    let u_sid = c.ssh(user, login).unwrap();
    for _ in 0..3 {
        c.node_mut(login).spawn(u_sid, ["hog"], SimTime::ZERO);
    }
    let s_sid = c.ssh(staff, login).unwrap();
    assert!(!attribute_load(&c, login, s_sid).complete());
    let policy = c.fsperm_policy.clone();
    seepid(&policy, c.node_mut(login).session_mut(s_sid).unwrap()).unwrap();
    let report = attribute_load(&c, login, s_sid);
    assert!(report.complete());
    assert_eq!(report.hotspot(), Some((user, 3)));
}

#[test]
fn apps_reachable_on_any_partition_through_portal() {
    // Sec. IV-E: "we launch applications with web interfaces on any compute
    // node in any partition ... not restricted to a small partition".
    let mut c = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny());
    let alice = c.add_user("alice").unwrap();
    {
        let mut sched = c.sched.write();
        let batch = c.compute_ids[0];
        let debug = c.compute_ids[1];
        sched.partitions_mut().add("batch", [batch], true).unwrap();
        sched.partitions_mut().add("debug", [debug], false).unwrap();
    }
    // A web-app job routed to the non-default debug partition.
    let job = c.submit(
        JobSpec::new(alice, "jupyter", SimDuration::from_secs(100))
            .with_kind(JobKind::WebApp)
            .with_partition("debug"),
    );
    c.advance_to(SimTime::from_secs(1));
    let node = {
        let sched = c.sched.read();
        *sched.jobs[&job]
            .allocations
            .keys()
            .next()
            .expect("scheduled")
    };
    assert_eq!(node, c.compute_ids[1], "routed to the debug partition");
    let key = c
        .launch_webapp(
            alice,
            job,
            "jupyter",
            node,
            8888,
            "debug-partition nb",
            None,
        )
        .unwrap();
    let token = c.portal_login(alice).unwrap();
    let resp = c.portal_fetch(token, &key).unwrap();
    assert_eq!(resp.body, "debug-partition nb");
}
