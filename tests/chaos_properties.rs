//! Chaos-plane properties: random [`FaultPlan`]s driven over random op
//! tapes, asserting the cross-plane invariants the paper's separation
//! argument needs to survive a misbehaving site:
//!
//! 1. **No breach, full heal** — whatever the fault schedule, the
//!    separation audit stays at its expected residuals, every dependency
//!    ladder walks back to `Healthy` once the plan is spent, and the
//!    scheduler conserves jobs (nothing lost, nothing double-run, every
//!    casualty attributed to a crash record).
//! 2. **Quiet ≡ loud** — a chaos run with every observability ring on
//!    takes *identical decisions* to the same run with obs off. Chaos +
//!    measurement is still pure measurement.
//! 3. **Replay** — same seed, same tape ⇒ the same applied/healed fault
//!    log and the same decision stream. A failing schedule is a repro.
//! 4. **Alert honesty** — the `cluster.dependency.degraded` SLO never
//!    fires on a fault-free run, however busy the tape.
//! 5. **Fail-closed on budget** — a severed WAN feed walks the feed
//!    ladder to `FailClosed` within the staleness budget (never before
//!    half of it), and heals within one anti-entropy round.
//! 6. **Compaction never strands a replica** — a feed compacted while a
//!    partition holds the replica stale (even compacted *past* the
//!    subscriber's frontier) still converges it after the heal.
//!
//! `CHAOS_PROPTEST_CASES` scales the case count for CI soaks.

use eus_chaos::{sister_realms, ChaosController, Fault, FaultPlan, PlanShape};
use eus_fedauth::{
    shared_broker, BrokerPolicy, CredError, CredentialBroker, RealmId, SharedBroker, SignedToken,
};
use eus_simcore::{SimDuration, SimTime};
use hpc_user_separation::audit::run_audit;
use hpc_user_separation::obs::{AlertKind, ObsConfig};
use hpc_user_separation::sched::{JobSpec, JobState};
use hpc_user_separation::{ClusterSpec, DepHealth, Dependency, SecureCluster, SeparationConfig};
use proptest::prelude::*;

fn cases(default: u32) -> u32 {
    std::env::var("CHAOS_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fault plans land in this window; ops and settling ride beyond it.
fn horizon() -> SimDuration {
    SimDuration::from_secs(1800)
}

/// Longest controller-owned heal a random plan may draw.
fn max_heal() -> SimDuration {
    SimDuration::from_secs(600)
}

/// One federated cluster under one fault plan and one op tape.
struct ChaosRun {
    c: SecureCluster,
    sister: SharedBroker,
    ctrl: ChaosController,
    minted: Vec<SignedToken>,
    clock: SimTime,
    /// The observable decision stream — quiet and loud must agree.
    outcomes: Vec<String>,
    submitted: usize,
    /// Route submissions across the two fair-share partitions (policy
    /// plane runs only) so sharded dispatch has multiple classes to fan.
    partitioned: bool,
}

/// Collapse a credential outcome to its observable shape.
fn shape<T>(r: &Result<T, CredError>) -> String {
    match r {
        Ok(_) => "ok".into(),
        Err(e) => format!("{e:?}"),
    }
}

impl ChaosRun {
    /// `faults == 0` builds a clean (fault-free) control run.
    fn new(seed: u64, faults: usize, loud: bool) -> Self {
        Self::build(seed, faults, loud, None)
    }

    /// A soak twin with the scheduler's policy plane on: fair-share over
    /// two single-node partitions, dispatch sharded over `threads` workers
    /// (`Some(1)` is the sequential control — same plane, no fan-out).
    fn new_sharded(seed: u64, faults: usize, threads: usize) -> Self {
        Self::build(seed, faults, false, Some(threads))
    }

    fn build(seed: u64, faults: usize, loud: bool, plane: Option<usize>) -> Self {
        let mut cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
        if plane.is_some() {
            cfg = cfg.with_fair_share();
        }
        let mut c = SecureCluster::new(cfg, ClusterSpec::tiny());
        if let Some(threads) = plane {
            let ids = c.compute_ids.clone();
            let half = ids.len() / 2;
            let mut sched = c.sched.write();
            sched.set_shard_threads(threads);
            sched
                .partitions_mut()
                .add("batch", ids[..half].to_vec(), true)
                .unwrap();
            sched
                .partitions_mut()
                .add("debug", ids[half..].to_vec(), false)
                .unwrap();
        }
        if loud {
            c.enable_obs(ObsConfig::enabled());
        }
        let sister = shared_broker(CredentialBroker::new(
            RealmId(2),
            0xC4A0,
            BrokerPolicy::default(),
        ));
        c.register_sister_realm(RealmId(2), sister.clone());
        let plan = if faults == 0 {
            FaultPlan::new(seed)
        } else {
            let shape = PlanShape {
                realms: sister_realms(&c),
                nodes: c.compute_ids.clone(),
                shards: c.config.broker_shards as usize,
                faults,
                horizon: horizon(),
                max_heal: max_heal(),
            };
            FaultPlan::random(seed, &shape)
        };
        let ctrl = ChaosController::new(plan);
        ctrl.arm(&mut c);
        ChaosRun {
            c,
            sister,
            ctrl,
            minted: Vec::new(),
            clock: SimTime::ZERO,
            outcomes: Vec::new(),
            submitted: 0,
            partitioned: plane.is_some(),
        }
    }

    fn step(&mut self, alice: eus_simos::Uid, op: (u8, u8)) {
        let (action, subject) = op;
        let out = match action % 6 {
            0 => {
                let mut spec =
                    JobSpec::new(alice, "job", SimDuration::from_secs(10 + subject as u64));
                if self.partitioned {
                    spec = spec.with_partition(if subject % 2 == 0 { "batch" } else { "debug" });
                }
                let r = self.c.try_submit(spec);
                if r.is_ok() {
                    self.submitted += 1;
                }
                format!("submit:{}", shape(&r))
            }
            1 => {
                self.clock += SimDuration::from_secs(30 * (1 + subject as u64 % 4));
                self.ctrl.advance_to(&mut self.c, self.clock);
                format!("advance:{}", self.clock)
            }
            2 => {
                let db = self.c.db.read().clone();
                let r = self.sister.write().login(&db, alice, None);
                let s = shape(&r);
                if let Ok(t) = r {
                    self.minted.push(t);
                }
                format!("login:{s}")
            }
            3 => match self.minted.get(subject as usize) {
                Some(t) => {
                    let t = *t;
                    format!("validate:{}", shape(&self.c.validate_federated_token(&t)))
                }
                None => "validate:none".into(),
            },
            4 => match self.minted.get(subject as usize) {
                Some(t) => {
                    let serial = t.serial;
                    format!("revoke:{}", self.c.portal_revoke_serial(RealmId(2), serial))
                }
                None => "revoke:none".into(),
            },
            _ => format!("compact:{}", self.c.compact_revocation_logs()),
        };
        self.outcomes.push(out);
    }

    /// Ride past every injection, every controller heal, the staleness
    /// budget, and one full anti-entropy round, so anything the plan
    /// broke has had its guaranteed recovery window.
    fn settle(&mut self) {
        let end = SimTime::ZERO
            + horizon()
            + max_heal()
            + self.c.config.revsync_anti_entropy
            + SimDuration::from_secs(300);
        while self.clock < end {
            self.clock += SimDuration::from_secs(30);
            self.ctrl.advance_to(&mut self.c, self.clock);
        }
    }

    fn ladder(&self, dep: Dependency) -> DepHealth {
        self.c.dependency_health(dep)
    }

    /// A replay fingerprint: decisions + applied/healed logs + ladders.
    fn fingerprint(&self) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}{:?}{:?}",
            self.outcomes,
            self.ctrl.applied,
            self.ctrl.healed,
            self.ladder(Dependency::Idp),
            self.ladder(Dependency::Ca),
            self.ladder(Dependency::Feed),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(24), ..ProptestConfig::default() })]

    /// Property 1: no fault schedule opens a separation channel, strands
    /// a dependency ladder, or loses a job.
    #[test]
    fn faults_never_breach_separation_and_every_ladder_heals(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..6, 0u8..8), 1..40),
    ) {
        let mut run = ChaosRun::new(seed, 5, false);
        let alice = run.c.add_user("alice").unwrap();
        for &op in &ops {
            run.step(alice, op);
        }
        run.settle();
        prop_assert!(run.ctrl.done(), "plan must be fully delivered");

        // The separation posture never regresses under chaos.
        prop_assert!(
            run_audit(&run.c.config, &ClusterSpec::tiny()).only_expected_residuals(),
            "fault schedule must not open a separation channel"
        );

        // Every dependency ladder walked home after the last heal.
        for dep in [Dependency::Idp, Dependency::Ca, Dependency::Feed] {
            prop_assert_eq!(
                run.ladder(dep),
                DepHealth::Healthy,
                "{:?} ladder stranded after full heal window (seed {})",
                dep,
                seed
            );
        }

        // Job conservation: drain the queue, then every submitted job is
        // in exactly one terminal state and every casualty traces to a
        // recorded crash. Nothing lost, nothing stuck, nothing double-run.
        run.c.run_to_completion();
        let sched = run.c.sched.read();
        let completed = sched.jobs.values().filter(|j| j.state == JobState::Completed).count();
        let failed = sched.jobs.values().filter(|j| j.state == JobState::Failed).count();
        let nonterminal = sched.jobs.values().filter(|j| !j.state.is_terminal()).count();
        let recorded: usize = sched.failures.iter().map(|r| r.failed_jobs.len()).sum();
        prop_assert_eq!(nonterminal, 0, "no job left in limbo");
        prop_assert_eq!(completed + failed, run.submitted, "all work accounted for");
        prop_assert_eq!(failed, recorded, "every casualty traces to a crash record");
    }

    /// Sharded-dispatch soak: a random fault plan over the policy-plane
    /// scheduler with dispatch fanned over 4 shard workers. The parallel
    /// engine under chaos must (a) take decisions identical to its
    /// sequential twin — same outcome stream, same job states, starts and
    /// placements — and (b) leave the separation posture exactly where a
    /// sequential run leaves it: expected audit residuals only, every
    /// ladder healed, every job accounted for.
    #[test]
    fn sharded_dispatch_under_chaos_matches_sequential_and_never_breaches(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..6, 0u8..8), 1..40),
    ) {
        let mut seq = ChaosRun::new_sharded(seed, 5, 1);
        let mut par = ChaosRun::new_sharded(seed, 5, 4);
        let alice_s = seq.c.add_user("alice").unwrap();
        let alice_p = par.c.add_user("alice").unwrap();
        for &op in &ops {
            seq.step(alice_s, op);
            par.step(alice_p, op);
        }
        seq.settle();
        par.settle();
        prop_assert_eq!(&seq.outcomes, &par.outcomes, "width must not steer decisions");
        prop_assert!(par.ctrl.done(), "plan must be fully delivered");
        prop_assert!(
            run_audit(&par.c.config, &ClusterSpec::tiny()).only_expected_residuals(),
            "sharded dispatch must not open a separation channel"
        );
        for dep in [Dependency::Idp, Dependency::Ca, Dependency::Feed] {
            prop_assert_eq!(par.ladder(dep), DepHealth::Healthy, "{:?} ladder", dep);
        }
        seq.c.run_to_completion();
        par.c.run_to_completion();
        let ssched = seq.c.sched.read();
        let psched = par.c.sched.read();
        prop_assert_eq!(ssched.jobs.len(), psched.jobs.len());
        for (id, a) in &ssched.jobs {
            let b = &psched.jobs[id];
            prop_assert_eq!(a.state, b.state, "state of {} diverged at width 4", id);
            prop_assert_eq!(a.started, b.started, "start of {} diverged at width 4", id);
            prop_assert_eq!(&a.allocations, &b.allocations, "placement of {}", id);
        }
        let nonterminal = psched.jobs.values().filter(|j| !j.state.is_terminal()).count();
        let completed = psched.jobs.values().filter(|j| j.state == JobState::Completed).count();
        let failed = psched.jobs.values().filter(|j| j.state == JobState::Failed).count();
        let recorded: usize = psched.failures.iter().map(|r| r.failed_jobs.len()).sum();
        prop_assert_eq!(nonterminal, 0, "no job left in limbo");
        prop_assert_eq!(completed + failed, par.submitted, "all work accounted for");
        prop_assert_eq!(failed, recorded, "every casualty traces to a crash record");
    }

    /// Property 2 (quiet ≡ loud): turning every ring on changes nothing
    /// the cluster *decides* during a chaos run.
    #[test]
    fn chaos_with_obs_on_is_decision_identical_to_quiet(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..6, 0u8..8), 1..40),
    ) {
        let mut quiet = ChaosRun::new(seed, 5, false);
        let mut loud = ChaosRun::new(seed, 5, true);
        let alice_q = quiet.c.add_user("alice").unwrap();
        let alice_l = loud.c.add_user("alice").unwrap();
        for &op in &ops {
            quiet.step(alice_q, op);
            loud.step(alice_l, op);
        }
        quiet.settle();
        loud.settle();
        prop_assert_eq!(&quiet.outcomes, &loud.outcomes);
        prop_assert_eq!(
            format!("{:?}", quiet.ctrl.applied),
            format!("{:?}", loud.ctrl.applied),
            "observability must not steer the fault schedule"
        );
    }

    /// Property 3: chaos runs replay exactly — the whole point of the
    /// seeded plan machinery.
    #[test]
    fn same_seed_and_tape_replay_the_identical_run(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..6, 0u8..8), 1..30),
    ) {
        let go = |seed: u64, ops: &[(u8, u8)]| {
            let mut run = ChaosRun::new(seed, 6, false);
            let alice = run.c.add_user("alice").unwrap();
            for &op in ops {
                run.step(alice, op);
            }
            run.settle();
            run.fingerprint()
        };
        prop_assert_eq!(go(seed, &ops), go(seed, &ops), "chaos must replay exactly");
    }

    /// Property 4: a fault-free run never fires the dependency-degraded
    /// SLO, however busy the tape — alerts mean injected faults, only.
    #[test]
    fn clean_runs_never_fire_the_degraded_slo(
        ops in proptest::collection::vec((0u8..6, 0u8..8), 1..40),
    ) {
        let mut run = ChaosRun::new(0, 0, true);
        let alice = run.c.add_user("alice").unwrap();
        for &op in &ops {
            run.step(alice, op);
        }
        run.settle();
        prop_assert!(!run.c.degraded(), "clean run must end healthy");
        let alerts = run.c.obs.slo.alerts().for_slo("cluster.dependency.degraded");
        prop_assert!(
            alerts.is_empty(),
            "degraded SLO fired on a fault-free run: {alerts:?}"
        );
    }

    /// Property 5: a severed WAN feed fails closed within the staleness
    /// budget — never before half of it — and one anti-entropy round
    /// after the heal the replica serves again.
    #[test]
    fn severed_feed_fails_closed_on_budget_and_recovers(
        offset_s in 10u64..200,
        extra_tokens in 0usize..3,
    ) {
        let mut run = ChaosRun::new(7, 0, false);
        let alice = run.c.add_user("alice").unwrap();
        let db = run.c.db.read().clone();
        let budget = run.c.config.revsync_max_lag;
        let sever_at = SimTime::from_secs(offset_s);
        let heal_after = budget + SimDuration::from_secs(120);
        let plan = FaultPlan::new(7).inject(
            sever_at,
            Fault::LinkPartition { a: RealmId(2), b: eus_chaos::HOME_REALM, heal_after },
        );
        let mut ctrl = ChaosController::new(plan);
        ctrl.arm(&mut run.c);
        for _ in 0..=extra_tokens {
            let t = run.sister.write().login(&db, alice, None).unwrap();
            run.minted.push(t);
        }

        // Half the budget in: degraded at worst, never yet fail-closed.
        let mut t = SimTime::ZERO;
        while t < sever_at + budget / 2 {
            t += SimDuration::from_secs(20);
            ctrl.advance_to(&mut run.c, t);
        }
        // Never fail-closed before half the budget is spent.
        prop_assert!(run.c.dependency_health(Dependency::Feed) != DepHealth::FailClosed);

        // Past the budget: fail-closed, and stale validation refuses.
        while t < sever_at + budget + SimDuration::from_secs(60) {
            t += SimDuration::from_secs(20);
            ctrl.advance_to(&mut run.c, t);
        }
        prop_assert_eq!(run.c.dependency_health(Dependency::Feed), DepHealth::FailClosed);
        let token = run.minted[0];
        prop_assert!(
            matches!(
                run.c.validate_federated_token(&token),
                Err(CredError::StaleReplica { .. })
            ),
            "an over-budget replica must refuse, never trust stale data"
        );

        // One anti-entropy round past the heal: healthy and serving.
        let recover_by =
            sever_at + heal_after + run.c.config.revsync_anti_entropy + SimDuration::from_secs(60);
        while t < recover_by {
            t += SimDuration::from_secs(20);
            ctrl.advance_to(&mut run.c, t);
        }
        prop_assert_eq!(run.c.dependency_health(Dependency::Feed), DepHealth::Healthy);
        prop_assert_eq!(run.c.validate_federated_token(&token), Ok(alice));

        // The degradation was observed end to end: on a loud replay the
        // SLO both fires and clears (this quiet run recorded nothing).
        let mut loud = ChaosRun::new(7, 0, true);
        let alice_l = loud.c.add_user("alice").unwrap();
        let db_l = loud.c.db.read().clone();
        let _ = loud.sister.write().login(&db_l, alice_l, None).unwrap();
        let mut lctrl = ChaosController::new(
            FaultPlan::new(7).inject(
                sever_at,
                Fault::LinkPartition { a: RealmId(2), b: eus_chaos::HOME_REALM, heal_after },
            ),
        );
        lctrl.arm(&mut loud.c);
        let mut lt = SimTime::ZERO;
        while lt < recover_by {
            lt += SimDuration::from_secs(20);
            lctrl.advance_to(&mut loud.c, lt);
        }
        let alerts = loud.c.obs.slo.alerts();
        prop_assert!(
            alerts.for_slo("cluster.dependency.degraded").iter().any(|a| a.kind == AlertKind::Fire),
            "degraded SLO must fire for the injected partition"
        );
        prop_assert!(
            alerts.for_slo("cluster.dependency.degraded").iter().any(|a| a.kind == AlertKind::Clear),
            "degraded SLO must clear after the heal"
        );
    }

    /// Property 6 (compaction safety): a feed compacted while a partition
    /// holds the replica stale — frontier-safe via the mesh, or past the
    /// subscriber's frontier straight on the issuer — still converges the
    /// replica after the heal. Revoked stays revoked, live stays live.
    #[test]
    fn compacted_feed_still_converges_a_stale_replica(
        revoke_mask in proptest::collection::vec(any::<bool>(), 4),
        aggressive in any::<bool>(),
    ) {
        let mut run = ChaosRun::new(11, 0, false);
        let alice = run.c.add_user("alice").unwrap();
        let db = run.c.db.read().clone();
        for _ in 0..revoke_mask.len() {
            let t = run.sister.write().login(&db, alice, None).unwrap();
            run.minted.push(t);
        }
        // Let the healthy feed deliver the mint-era state.
        run.clock = SimTime::from_secs(60);
        run.ctrl.advance_to(&mut run.c, run.clock);

        // Partition, then revoke behind the partition: the deltas pile up
        // in the issuer's log with the subscriber's frontier stuck.
        run.c.partition_sister_feed(RealmId(2), true);
        let mut revoked = Vec::new();
        for (t, &hit) in run.minted.iter().zip(&revoke_mask) {
            if hit {
                prop_assert!(run.c.portal_revoke_serial(RealmId(2), t.serial));
                revoked.push(t.serial);
            }
        }

        // Compact mid-partition. The mesh path respects subscriber
        // frontiers; the aggressive path compacts the issuer past them,
        // forcing the post-heal resync onto the snapshot path.
        if aggressive {
            let head = run.sister.read().revocation_head();
            run.sister.write().compact_revocations_below(head);
        } else {
            run.c.compact_revocation_logs();
        }

        // Heal and ride one anti-entropy round.
        run.c.partition_sister_feed(RealmId(2), false);
        let end = run.clock + run.c.config.revsync_anti_entropy + SimDuration::from_secs(120);
        while run.clock < end {
            run.clock += SimDuration::from_secs(30);
            run.ctrl.advance_to(&mut run.c, run.clock);
        }

        // Converged: every revocation landed, everything else serves.
        for (t, &hit) in run.minted.iter().zip(&revoke_mask) {
            let r = run.c.validate_federated_token(t);
            if hit {
                prop_assert!(r.is_err(), "revoked serial {} must not serve (got Ok)", t.serial);
            } else {
                prop_assert_eq!(r, Ok(alice), "live token lost in convergence");
            }
        }
    }
}
