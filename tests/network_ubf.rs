//! Network integration tests (paper Sec. IV-D + Appendix): the UBF decision
//! matrix end-to-end, the conntrack cost structure, and both RDMA setup
//! paths.

use bytes::Bytes;
use hpc_user_separation::simcore::SimDuration;
use hpc_user_separation::simnet::{ConnectError, Proto, SocketAddr};
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};

fn hardened() -> (
    SecureCluster,
    eus_simos::Uid,
    eus_simos::Uid,
    eus_simos::Uid,
    eus_simos::Gid,
) {
    let mut c = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny());
    let alice = c.add_user("alice").unwrap();
    let bob = c.add_user("bob").unwrap();
    let eve = c.add_user("eve").unwrap();
    let proj = c.create_project("proj", alice).unwrap();
    c.add_project_member(alice, proj, bob).unwrap();
    (c, alice, bob, eve, proj)
}

#[test]
fn decision_matrix_tcp_and_udp() {
    let (mut c, alice, bob, eve, proj) = hardened();
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];

    for (proto, base_port) in [(Proto::Tcp, 9200u16), (Proto::Udp, 9300u16)] {
        // Default listener (egid = alice's UPG): only alice connects.
        c.listen(alice, n2, proto, base_port, None).unwrap();
        assert!(c
            .connect(alice, n1, SocketAddr::new(n2, base_port), proto)
            .is_ok());
        assert!(c
            .connect(bob, n1, SocketAddr::new(n2, base_port), proto)
            .is_err());
        assert!(c
            .connect(eve, n1, SocketAddr::new(n2, base_port), proto)
            .is_err());

        // Group-opted listener (newgrp proj): alice + bob, not eve.
        c.listen(alice, n2, proto, base_port + 1, Some(proj))
            .unwrap();
        assert!(c
            .connect(alice, n1, SocketAddr::new(n2, base_port + 1), proto)
            .is_ok());
        assert!(c
            .connect(bob, n1, SocketAddr::new(n2, base_port + 1), proto)
            .is_ok());
        assert!(matches!(
            c.connect(eve, n1, SocketAddr::new(n2, base_port + 1), proto),
            Err(ConnectError::DeniedByDaemon { .. })
        ));
    }
}

#[test]
fn overhead_lands_on_setup_only() {
    let (mut c, alice, ..) = hardened();
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    c.listen(alice, n2, Proto::Tcp, 9400, None).unwrap();

    let (conn, setup) = c
        .connect(alice, n1, SocketAddr::new(n2, 9400), Proto::Tcp)
        .unwrap();
    // Setup pays for nfqueue + daemon + (maybe) ident.
    assert!(setup > c.fabric.latency.base_rtt);

    // Established sends never touch the queue: transfer cost only.
    let queued_before = c.fabric.metrics.queued_packets.get();
    let mut total = SimDuration::ZERO;
    for _ in 0..100 {
        total += c
            .fabric
            .send(conn, &Bytes::from_static(&[0u8; 1024]))
            .unwrap();
    }
    assert_eq!(c.fabric.metrics.queued_packets.get(), queued_before);
    let per_packet = total / 100;
    assert!(
        per_packet < setup,
        "steady-state packet ({per_packet}) must be cheaper than setup ({setup})"
    );
}

#[test]
fn second_connection_hits_the_decision_cache() {
    let (mut c, alice, ..) = hardened();
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    c.listen(alice, n2, Proto::Tcp, 9500, None).unwrap();
    let (_, first) = c
        .connect(alice, n1, SocketAddr::new(n2, 9500), Proto::Tcp)
        .unwrap();
    let (_, second) = c
        .connect(alice, n1, SocketAddr::new(n2, 9500), Proto::Tcp)
        .unwrap();
    assert!(
        second < first,
        "cached decision skips the ident RTT: {second} !< {first}"
    );
    let hits: u64 = c.ubf_stats.iter().map(|s| s.lock().cache_hits.get()).sum();
    assert!(hits >= 1);
}

#[test]
fn rdma_tcp_setup_governed_native_cm_not() {
    let (mut c, alice, _bob, eve, _proj) = hardened();
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    let rkey = c
        .fabric
        .rdma_register(n2, alice, b"alice tensor".to_vec())
        .unwrap();
    c.listen(alice, n2, Proto::Tcp, 18515, None).unwrap();

    // Eve's MPI-style QP setup over TCP: blocked by the UBF.
    let eve_peer = eus_simnet::PeerInfo::from_cred(&c.credentials(eve));
    assert!(c
        .fabric
        .setup_qp_via_tcp(n1, eve_peer, SocketAddr::new(n2, 18515))
        .is_err());

    // Alice's own works, and she reads her region.
    let alice_peer = eus_simnet::PeerInfo::from_cred(&c.credentials(alice));
    let qp = c
        .fabric
        .setup_qp_via_tcp(n1, alice_peer, SocketAddr::new(n2, 18515))
        .unwrap();
    assert_eq!(c.fabric.rdma_read(&qp, rkey).unwrap(), b"alice tensor");

    // Eve via native CM: the acknowledged residual path.
    let qp_cm = c.fabric.setup_qp_native_cm(n1, eve_peer, n2).unwrap();
    assert_eq!(c.fabric.rdma_read(&qp_cm, rkey).unwrap(), b"alice tensor");
}

#[test]
fn ubf_statistics_account_for_decisions() {
    let (mut c, alice, bob, ..) = hardened();
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    c.listen(alice, n2, Proto::Tcp, 9600, None).unwrap();
    c.connect(alice, n1, SocketAddr::new(n2, 9600), Proto::Tcp)
        .unwrap();
    let _ = c.connect(bob, n1, SocketAddr::new(n2, 9600), Proto::Tcp);

    let total_allowed: u64 = c
        .ubf_stats
        .iter()
        .map(|s| s.lock().allowed_same_user.get())
        .sum();
    let total_denied: u64 = c.ubf_stats.iter().map(|s| s.lock().denied.get()).sum();
    assert_eq!(total_allowed, 1);
    assert_eq!(total_denied, 1);
}

#[test]
fn baseline_network_wide_open() {
    let mut c = SecureCluster::new(SeparationConfig::baseline(), ClusterSpec::tiny());
    let alice = c.add_user("alice").unwrap();
    let eve = c.add_user("eve").unwrap();
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    c.listen(alice, n2, Proto::Tcp, 9700, None).unwrap();
    let (_, setup) = c
        .connect(eve, n1, SocketAddr::new(n2, 9700), Proto::Tcp)
        .unwrap();
    // And no inspection latency either.
    assert_eq!(setup, c.fabric.latency.base_rtt);
}
