//! Property-based scheduler invariants over random workloads: resource
//! conservation, job accounting, and the whole-node isolation guarantee must
//! hold for every trace the generator can produce.

use hpc_user_separation::sched::{JobState, NodeSharing, SchedConfig, Scheduler};
use hpc_user_separation::simcore::{SimRng, SimTime};
use hpc_user_separation::simos::UserDb;
use hpc_user_separation::workloads::{UserPopulation, WorkloadMix};
use proptest::prelude::*;

fn run_random_workload(seed: u64, policy: NodeSharing, nodes: u32, backfill: bool) -> Scheduler {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut db = UserDb::new();
    let pop = UserPopulation::build(&mut db, 12, 3, 1.0, &mut rng);
    let trace = WorkloadMix::llsc_like().generate(&pop, SimTime::from_secs(1200), &mut rng);
    let mut sched = Scheduler::new(SchedConfig {
        policy,
        backfill,
        ..SchedConfig::default()
    });
    for _ in 0..nodes {
        sched.add_node(16, 65_536, 2);
    }
    trace.submit_all(&mut sched);
    sched
}

fn policy_from(i: u8) -> NodeSharing {
    match i % 3 {
        0 => NodeSharing::Shared,
        1 => NodeSharing::Exclusive,
        _ => NodeSharing::WholeNodeUser,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every submitted job reaches a terminal state, resources return to
    /// zero, and counters agree with states.
    #[test]
    fn conservation_of_jobs_and_resources(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
        backfill in any::<bool>(),
    ) {
        let mut sched = run_random_workload(seed, policy_from(policy_idx), 8, backfill);
        sched.run_to_completion();

        let total = sched.jobs.len() as u64;
        let completed = sched
            .jobs
            .values()
            .filter(|j| j.state == JobState::Completed)
            .count() as u64;
        prop_assert_eq!(completed, total, "all jobs complete on a healthy cluster");
        prop_assert_eq!(sched.metrics.completed.get(), completed);
        prop_assert_eq!(sched.pending_count(), 0);
        prop_assert_eq!(sched.running_count(), 0);
        for node in sched.nodes.values() {
            prop_assert!(node.is_idle(), "node {} not drained", node.id);
            prop_assert_eq!(node.free_cores(), node.cores);
            prop_assert_eq!(node.free_gpus(), node.gpus);
            prop_assert_eq!(node.free_mem_mib(), node.mem_mib);
        }
        // The busy integral must have returned to zero.
        prop_assert_eq!(sched.metrics.busy_cores.current(), 0.0);
        prop_assert_eq!(sched.metrics.used_cores.current(), 0.0);
    }

    /// At every sampled instant, no node is overcommitted and whole-node
    /// never mixes users.
    #[test]
    fn no_overcommit_at_any_instant(
        seed in 0u64..10_000,
        policy_idx in 0u8..3,
    ) {
        let policy = policy_from(policy_idx);
        let mut sched = run_random_workload(seed, policy, 8, true);
        let mut t = 0u64;
        while sched.pending_count() > 0 || sched.running_count() > 0 || t == 0 {
            t += 37;
            sched.run_until(SimTime::from_secs(t));
            for node in sched.nodes.values() {
                let used: u32 = node.running.values().map(|a| a.cores).sum();
                prop_assert!(used <= node.cores);
                let mem: u64 = node.running.values().map(|a| a.mem_mib).sum();
                prop_assert!(mem <= node.mem_mib);
                if policy == NodeSharing::WholeNodeUser {
                    prop_assert!(node.users_present().len() <= 1);
                }
                if policy == NodeSharing::Exclusive {
                    prop_assert!(node.running.len() <= 1, "exclusive = one job per node");
                }
            }
            prop_assert!(t < 2_000_000, "must drain eventually");
        }
    }

    /// Waits are non-negative and every started job started at or after its
    /// submission; accounting core-seconds are non-negative and consistent.
    #[test]
    fn causality_and_accounting(seed in 0u64..10_000) {
        let mut sched = run_random_workload(seed, NodeSharing::WholeNodeUser, 8, true);
        sched.run_to_completion();
        for job in sched.jobs.values() {
            let started = job.started.expect("all complete");
            let ended = job.ended.expect("all complete");
            prop_assert!(started >= job.submitted);
            prop_assert!(ended >= started);
            prop_assert!(job.core_seconds() >= 0.0);
            // Duration honored exactly (no preemption in the model).
            prop_assert_eq!(ended.since(started), job.spec.duration);
        }
    }
}

#[test]
fn backfill_never_loses_jobs_vs_fcfs() {
    // Deterministic cross-check on a handful of seeds: same job set
    // completes under both queue disciplines.
    for seed in [1u64, 7, 42] {
        let mut with = run_random_workload(seed, NodeSharing::Shared, 8, true);
        let mut without = run_random_workload(seed, NodeSharing::Shared, 8, false);
        with.run_to_completion();
        without.run_to_completion();
        assert_eq!(
            with.metrics.completed.get(),
            without.metrics.completed.get()
        );
    }
}
