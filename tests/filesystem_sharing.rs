//! The filesystem sharing matrix (paper Sec. IV-C + Appendix): "these
//! changes effectively prevent users sharing data via the filesystem unless
//! they are both members of the same supplemental group."

use hpc_user_separation::simos::{Gid, Mode, Perm, PosixAcl, Uid};
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};

struct World {
    c: SecureCluster,
    alice: Uid,
    bob: Uid,
    eve: Uid,
    proj: Gid,
}

fn world(config: SeparationConfig) -> World {
    let mut c = SecureCluster::new(config, ClusterSpec::tiny());
    let alice = c.add_user("alice").unwrap();
    let bob = c.add_user("bob").unwrap();
    let eve = c.add_user("eve").unwrap();
    let proj = c.create_project("fusion", alice).unwrap();
    c.add_project_member(alice, proj, bob).unwrap();
    World {
        c,
        alice,
        bob,
        eve,
        proj,
    }
}

#[test]
fn hardened_matrix_every_unintended_path_closed() {
    let w = world(SeparationConfig::llsc());
    let login = w.c.login_node();

    // (a) world bits at create: stripped.
    w.c.fs_write(w.alice, login, "/tmp/a", Mode::new(0o666), b"x")
        .unwrap();
    assert!(w.c.fs_read(w.eve, login, "/tmp/a").is_err());

    // (b) world bits via chmod: stripped.
    w.c.fs_write(w.alice, login, "/tmp/b", Mode::new(0o600), b"x")
        .unwrap();
    let effective =
        w.c.fs_chmod(w.alice, login, "/tmp/b", Mode::new(0o666))
            .unwrap();
    assert!(!effective.any_world());
    assert!(w.c.fs_read(w.eve, login, "/tmp/b").is_err());

    // (c) ACL to an unrelated user: refused by the restriction patch.
    w.c.fs_write(w.alice, login, "/tmp/c", Mode::new(0o600), b"x")
        .unwrap();
    assert!(w
        .c
        .fs_setfacl(
            w.alice,
            login,
            "/tmp/c",
            PosixAcl::new(Perm::NONE).with_user(w.eve, Perm::R)
        )
        .is_err());

    // (d) ACL to a group alice is not in: refused.
    let eve_upg = w.c.db.read().user(w.eve).unwrap().private_group;
    assert!(w
        .c
        .fs_setfacl(
            w.alice,
            login,
            "/tmp/c",
            PosixAcl::new(Perm::NONE).with_group(eve_upg, Perm::R)
        )
        .is_err());

    // (e) chgrp to a group alice is not in: plain DAC already refuses.
    let ctx = w.c.user_fs_ctx(w.alice);
    let err =
        w.c.node(login)
            .with_fs("/tmp/c", |fs, p| fs.chown(&ctx, p, None, Some(eve_upg)));
    assert!(err.is_err());

    // (f) home directory: unreachable.
    w.c.fs_write(w.alice, login, "/home/alice/f", Mode::new(0o644), b"x")
        .unwrap();
    assert!(w.c.fs_read(w.eve, login, "/home/alice/f").is_err());
    assert!(
        w.c.fs_read(w.bob, login, "/home/alice/f").is_err(),
        "groups don't open homes"
    );

    // Intended paths still work:
    // (g) the project directory (setgid, group-writable),
    w.c.fs_write(
        w.alice,
        login,
        "/proj/fusion/shared",
        Mode::new(0o660),
        b"data",
    )
    .unwrap();
    assert_eq!(
        w.c.fs_read(w.bob, login, "/proj/fusion/shared").unwrap(),
        b"data"
    );
    assert!(w.c.fs_read(w.eve, login, "/proj/fusion/shared").is_err());

    // (h) an ACL naming a *fellow group member* on a traversable path,
    w.c.fs_write(w.alice, login, "/tmp/for-bob", Mode::new(0o600), b"ok")
        .unwrap();
    w.c.fs_setfacl(
        w.alice,
        login,
        "/tmp/for-bob",
        PosixAcl::new(Perm::NONE).with_user(w.bob, Perm::R),
    )
    .unwrap();
    assert_eq!(w.c.fs_read(w.bob, login, "/tmp/for-bob").unwrap(), b"ok");

    // (i) an ACL naming the project group itself.
    w.c.fs_write(w.alice, login, "/tmp/for-proj", Mode::new(0o600), b"ok")
        .unwrap();
    w.c.fs_setfacl(
        w.alice,
        login,
        "/tmp/for-proj",
        PosixAcl::new(Perm::NONE).with_group(w.proj, Perm::R),
    )
    .unwrap();
    assert_eq!(w.c.fs_read(w.bob, login, "/tmp/for-proj").unwrap(), b"ok");
}

#[test]
fn baseline_matrix_leaks_everywhere() {
    let w = world(SeparationConfig::baseline());
    let login = w.c.login_node();
    // World bits work at create and via chmod; ACLs to anyone work; homes
    // are world-traversable.
    w.c.fs_write(w.alice, login, "/tmp/a", Mode::new(0o666), b"x")
        .unwrap();
    assert!(w.c.fs_read(w.eve, login, "/tmp/a").is_ok());

    w.c.fs_write(w.alice, login, "/tmp/c", Mode::new(0o600), b"x")
        .unwrap();
    w.c.fs_setfacl(
        w.alice,
        login,
        "/tmp/c",
        PosixAcl::new(Perm::NONE).with_user(w.eve, Perm::R),
    )
    .unwrap();
    assert!(w.c.fs_read(w.eve, login, "/tmp/c").is_ok());

    w.c.fs_write(w.alice, login, "/home/alice/f", Mode::new(0o644), b"x")
        .unwrap();
    assert!(w.c.fs_read(w.eve, login, "/home/alice/f").is_ok());
}

#[test]
fn tmp_names_leak_but_sticky_protects_content_manipulation() {
    // The residual disclosure (names) does not extend to tampering.
    let w = world(SeparationConfig::llsc());
    let login = w.c.login_node();
    w.c.fs_write(w.alice, login, "/tmp/alice-run-42", Mode::new(0o600), b"x")
        .unwrap();
    let eve_ctx = w.c.user_fs_ctx(w.eve);
    let names = w.c.node(login).fs_readdir(&eve_ctx, "/tmp").unwrap();
    assert!(
        names.contains(&"alice-run-42".to_string()),
        "name leaks (residual)"
    );
    // But eve cannot delete, rename, or read it.
    assert!(w
        .c
        .node(login)
        .with_fs("/tmp/alice-run-42", |fs, p| fs.unlink(&eve_ctx, p))
        .is_err());
    assert!(w.c.fs_read(w.eve, login, "/tmp/alice-run-42").is_err());
}

#[test]
fn local_tmp_is_per_node_shared_home_is_global() {
    let w = world(SeparationConfig::llsc());
    let n1 = w.c.compute_ids[0];
    let n2 = w.c.compute_ids[1];
    w.c.fs_write(w.alice, n1, "/tmp/scratch", Mode::new(0o600), b"local")
        .unwrap();
    assert!(
        w.c.fs_read(w.alice, n2, "/tmp/scratch").is_err(),
        "/tmp is node-local"
    );
    w.c.fs_write(w.alice, n1, "/home/alice/global", Mode::new(0o600), b"g")
        .unwrap();
    assert_eq!(
        w.c.fs_read(w.alice, n2, "/home/alice/global").unwrap(),
        b"g",
        "/home is cluster-wide"
    );
}
