//! Property-based VFS invariants: path handling never panics, creates
//! round-trip, the DAC core is monotone in permission bits, and sticky/
//! setgid semantics hold for arbitrary names and modes.

use hpc_user_separation::simos::vfs::{FsCtx, Mode, Perm, Vfs};
use hpc_user_separation::simos::{check_access, Credentials, Gid, PermMeta, Uid};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    // Realistic POSIX-ish names: no slashes or NULs, and not the special
    // directory entries "." / ".." (which path normalization consumes).
    "[a-zA-Z0-9._-]{1,24}".prop_filter("not . or ..", |s| s != "." && s != "..")
}

proptest! {
    /// Resolution handles arbitrary junk paths without panicking, and
    /// lexical normalization (`.`/`..`) agrees with direct access.
    #[test]
    fn arbitrary_paths_never_panic(raw in "[a-zA-Z0-9./_-]{0,64}") {
        let mut fs = Vfs::standard_node_layout("prop");
        let ctx = FsCtx::root();
        let _ = fs.read(&ctx, &raw);
        let _ = fs.stat(&ctx, &raw);
        let _ = fs.mkdir(&ctx, &raw, Mode::new(0o755));
    }

    /// Create/write/read round-trips for any valid name and any content.
    #[test]
    fn create_roundtrip(name in name_strategy(), content in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut fs = Vfs::standard_node_layout("prop");
        let ctx = FsCtx::user(Credentials::new(Uid(1), Gid(1)));
        let path = format!("/tmp/{name}");
        fs.write_file(&ctx, &path, Mode::new(0o600), &content).unwrap();
        prop_assert_eq!(fs.read(&ctx, &path).unwrap(), content);
        // Normalized variants resolve to the same file.
        let weird = format!("/tmp/./../tmp/{name}");
        prop_assert!(fs.read(&ctx, &weird).is_ok());
        fs.unlink(&ctx, &path).unwrap();
        prop_assert!(fs.read(&ctx, &path).is_err());
    }

    /// DAC monotonicity: adding permission bits never revokes access, for
    /// every (viewer-class, want) combination.
    #[test]
    fn permission_bits_are_monotone(
        base in 0u16..0o777,
        extra in 0u16..0o777,
        want_bits in 1u8..8,
        viewer in 0u8..3,
    ) {
        let cred = match viewer {
            0 => Credentials::new(Uid(10), Gid(10)),                       // owner
            1 => Credentials::with_groups(Uid(11), Gid(11), [Gid(10)]),    // group member
            _ => Credentials::new(Uid(12), Gid(12)),                       // other
        };
        let want = Perm::from_bits(want_bits);
        let meta_lo = PermMeta {
            uid: Uid(10),
            gid: Gid(10),
            mode: Mode::new(base),
            acl: None,
            is_dir: false,
        };
        let meta_hi = PermMeta {
            mode: Mode::new(base | extra),
            ..meta_lo.clone()
        };
        if check_access(&cred, &meta_lo, want) {
            prop_assert!(
                check_access(&cred, &meta_hi, want),
                "adding bits {extra:o} to {base:o} revoked access"
            );
        }
    }

    /// In a sticky world-writable directory, a non-owner can never unlink
    /// another user's file, whatever its mode.
    #[test]
    fn sticky_protects_for_all_modes(bits in 0u16..0o777, name in name_strategy()) {
        let mut fs = Vfs::standard_node_layout("prop");
        let alice = FsCtx::user(Credentials::new(Uid(1), Gid(1)));
        let bob = FsCtx::user(Credentials::new(Uid(2), Gid(2)));
        let path = format!("/tmp/{name}");
        fs.create(&alice, &path, Mode::new(bits)).unwrap();
        prop_assert!(fs.unlink(&bob, &path).is_err());
        prop_assert!(fs.rename(&bob, &path, "/tmp/stolen").is_err());
        // The owner always can.
        prop_assert!(fs.unlink(&alice, &path).is_ok());
    }

    /// setgid directories stamp their group on everything created inside,
    /// for any creator and any requested mode.
    #[test]
    fn setgid_inheritance_universal(bits in 0u16..0o777, name in name_strategy()) {
        let mut fs = Vfs::standard_node_layout("prop");
        let root = FsCtx::root().with_umask(Mode::new(0));
        fs.mkdir(&root, "/proj", Mode::new(0o777)).unwrap();
        fs.mkdir(&root, "/proj/g", Mode::new(0o2777)).unwrap();
        fs.set_meta_as_root("/proj/g", |m| m.gid = Gid(500)).unwrap();
        let user = FsCtx::user(Credentials::new(Uid(42), Gid(42)));
        let path = format!("/proj/g/{name}");
        fs.create(&user, &path, Mode::new(bits)).unwrap();
        let st = fs.stat(&root, &path).unwrap();
        prop_assert_eq!(st.gid, Gid(500));
        prop_assert_eq!(st.uid, Uid(42));
    }
}
