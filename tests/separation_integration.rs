//! End-to-end integration: the full hardened cluster exercised across every
//! subsystem in one scenario, plus the defense-in-depth claims of Secs. IV-A
//! and V.

use hpc_user_separation::sched::{JobSpec, NodeSharing};
use hpc_user_separation::simcore::{SimDuration, SimTime};
use hpc_user_separation::simnet::{ConnectError, Proto, SocketAddr};
use hpc_user_separation::simos::Mode;
use hpc_user_separation::{audit, ClusterSpec, SecureCluster, SeparationConfig};

fn llsc() -> SecureCluster {
    SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::default())
}

#[test]
fn two_group_collaboration_story() {
    // Alice and Bob collaborate in a project; Eve is an outsider. Every
    // *intended* sharing channel works; every unintended one is closed.
    let mut c = llsc();
    let alice = c.add_user("alice").unwrap();
    let bob = c.add_user("bob").unwrap();
    let eve = c.add_user("eve").unwrap();
    let proj = c.create_project("fusion", alice).unwrap();
    c.add_project_member(alice, proj, bob).unwrap();
    let login = c.login_node();

    // Intended: shared data in /proj via the setgid directory.
    c.fs_write(
        alice,
        login,
        "/proj/fusion/mesh.dat",
        Mode::new(0o660),
        b"mesh",
    )
    .unwrap();
    assert_eq!(
        c.fs_read(bob, login, "/proj/fusion/mesh.dat").unwrap(),
        b"mesh"
    );
    assert!(c.fs_read(eve, login, "/proj/fusion/mesh.dat").is_err());

    // Intended: a group-opted service reachable by members only.
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    c.listen(alice, n2, Proto::Tcp, 7000, Some(proj)).unwrap();
    assert!(c
        .connect(bob, n1, SocketAddr::new(n2, 7000), Proto::Tcp)
        .is_ok());
    assert!(matches!(
        c.connect(eve, n1, SocketAddr::new(n2, 7000), Proto::Tcp),
        Err(ConnectError::DeniedByDaemon { .. })
    ));

    // Unintended: even project members do not see each other's processes,
    // jobs, or homes — group sharing is data-scoped, not identity-scoped.
    c.submit(JobSpec::new(
        alice,
        "fusion-run",
        SimDuration::from_secs(300),
    ));
    c.advance_to(SimTime::from_secs(1));
    let bob_cred = c.credentials(bob);
    assert_eq!(c.node(login).procfs().foreign_visible_count(&bob_cred), 0);
    assert_eq!(
        c.sched
            .read()
            .squeue(&bob_cred)
            .iter()
            .filter(|v| v.user == alice)
            .count(),
        0
    );
    c.fs_write(
        alice,
        login,
        "/home/alice/draft.tex",
        Mode::new(0o644),
        b"x",
    )
    .unwrap();
    assert!(c.fs_read(bob, login, "/home/alice/draft.tex").is_err());
}

#[test]
fn defense_in_depth_hidepid_still_matters_under_whole_node() {
    // Sec. IV-B: "one might remark that process hiding would be unnecessary
    // [under whole-node scheduling]. However ... there are still some nodes
    // like login nodes on which multiple simultaneous users are working."
    let mut cfg = SeparationConfig::llsc();
    assert_eq!(cfg.node_policy, NodeSharing::WholeNodeUser);
    cfg.hidepid = false; // drop the "redundant" control
    let report = audit::run_audit(&cfg, &ClusterSpec::tiny());
    let unexpected = report.unexpected_leaks();
    assert!(
        unexpected.contains(&audit::Channel::ProcList),
        "login nodes leak without hidepid even under whole-node scheduling:\n{report}"
    );
}

#[test]
fn every_single_ablation_reopens_something() {
    // Each mechanism earns its place: removing any one control re-opens at
    // least one channel the full config had closed (except the scrub, whose
    // channel partner GpuDevAccess also guards reads — verify scrub too).
    for (name, cfg) in SeparationConfig::ablations() {
        let report = audit::run_audit(&cfg, &ClusterSpec::tiny());
        assert!(
            !report.unexpected_leaks().is_empty(),
            "ablation {name} closed nothing?\n{report}"
        );
    }
}

#[test]
fn same_port_collision_cannot_crosstalk() {
    // Sec. V: "Even if two users accidentally choose the same port number
    // for a network service, they cannot crosstalk and corrupt each others
    // data."
    let mut c = llsc();
    let alice = c.add_user("alice").unwrap();
    let bob = c.add_user("bob").unwrap();
    let n1 = c.compute_ids[0];
    let n2 = c.compute_ids[1];
    // Both pick port 8080 on *different* nodes (same node would EADDRINUSE).
    c.listen(alice, n1, Proto::Tcp, 8080, None).unwrap();
    c.listen(bob, n2, Proto::Tcp, 8080, None).unwrap();
    // Alice's client, misconfigured with bob's node, cannot reach bob's
    // service; her own works.
    assert!(c
        .connect(alice, c.login_node(), SocketAddr::new(n2, 8080), Proto::Tcp)
        .is_err());
    assert!(c
        .connect(alice, c.login_node(), SocketAddr::new(n1, 8080), Proto::Tcp)
        .is_ok());
}

#[test]
fn seepid_and_smask_relax_work_only_for_whitelisted_staff() {
    use hpc_user_separation::fsperm::{seepid, smask_relax};
    let mut c = llsc();
    let staff = c.add_user("facilitator").unwrap();
    let user = c.add_user("researcher").unwrap();
    let login = c.login_node();
    // Whitelist the facilitator.
    c.fsperm_policy = c
        .fsperm_policy
        .clone()
        .allow_seepid(staff)
        .allow_relax(staff);

    // A researcher process is running.
    let r_sid = c.ssh(user, login).unwrap();
    c.node_mut(login)
        .spawn(r_sid, ["octave", "run.m"], SimTime::ZERO)
        .unwrap();

    // Staff initially sees nothing foreign; after seepid they see it.
    let s_sid = c.ssh(staff, login).unwrap();
    let before = c
        .node(login)
        .procfs()
        .foreign_visible_count(&c.node(login).session(s_sid).unwrap().cred);
    assert_eq!(before, 0);
    let policy = c.fsperm_policy.clone();
    seepid(&policy, c.node_mut(login).session_mut(s_sid).unwrap()).unwrap();
    let after = c
        .node(login)
        .procfs()
        .foreign_visible_count(&c.node(login).session(s_sid).unwrap().cred);
    assert!(after >= 1);

    // The researcher cannot use either tool.
    assert!(seepid(&policy, c.node_mut(login).session_mut(r_sid).unwrap()).is_err());
    assert!(smask_relax(&policy, c.node_mut(login).session_mut(r_sid).unwrap()).is_err());

    // Staff publishes a world-readable dataset via smask_relax.
    smask_relax(&policy, c.node_mut(login).session_mut(s_sid).unwrap()).unwrap();
    let ctx = c
        .node(login)
        .session(s_sid)
        .unwrap()
        .fs_ctx()
        .with_umask(Mode::new(0));
    c.node(login)
        .fs_write(&ctx, "/tmp/public-dataset", Mode::new(0o644), b"weights")
        .unwrap();
    // The researcher can read it.
    assert!(c.fs_read(user, login, "/tmp/public-dataset").is_ok());
}

#[test]
fn gpu_lifecycle_under_full_config() {
    let mut c = llsc();
    let alice = c.add_user("alice").unwrap();
    let bob = c.add_user("bob").unwrap();

    // Alice trains; her GPU is hers alone.
    c.submit(JobSpec::new(alice, "train", SimDuration::from_secs(50)).with_gpus_per_task(1));
    c.advance_to(SimTime::from_secs(1));
    let node = c.compute_ids[0];
    c.gpus
        .get_mut(node, 0)
        .unwrap()
        .write(0, b"weights!")
        .unwrap();
    let bob_ctx = c.user_fs_ctx(bob);
    assert!(c
        .node(node)
        .with_fs("/dev/gpu0", |fs, p| fs.open_device(
            &bob_ctx,
            p,
            hpc_user_separation::simos::Perm::RW
        ))
        .is_err());

    // After her job: scrubbed and unassigned.
    c.run_to_completion();
    let gpu = c.gpus.get(node, 0).unwrap();
    assert_eq!(gpu.assigned_to, None);
    assert!(!gpu.is_dirty(), "epilog scrub ran");
}

#[test]
fn containers_pass_through_every_host_control() {
    // Sec. IV-G: "all of the security features described in this paper pass
    // through to the container as well." Run mallory's scan from inside an
    // Apptainer-style container and verify nothing changes.
    use hpc_user_separation::containers::{HpcRuntime, Image};
    use hpc_user_separation::simos::Mode as FsMode;

    let mut c = llsc();
    let alice = c.add_user("alice").unwrap();
    let mallory = c.add_user("mallory").unwrap();
    let login = c.login_node();

    // Alice's work: a process and a file.
    let a_sid = c.ssh(alice, login).unwrap();
    c.node_mut(login)
        .spawn(a_sid, ["python", "secret-model.py"], SimTime::ZERO)
        .unwrap();
    c.fs_write(alice, login, "/home/alice/w.bin", FsMode::new(0o644), b"w")
        .unwrap();

    // Mallory's container session.
    let m_sid = c.ssh(mallory, login).unwrap();
    let session = c.node(login).session(m_sid).unwrap().clone();
    let image = Image::typical_research_stack("scanner.sif", SimTime::ZERO);
    let cp = HpcRuntime.launch(
        c.node_mut(login),
        &session,
        &image,
        ["ps", "-ef"],
        SimTime::ZERO,
    );
    // The containerized process has exactly mallory's credentials...
    let cred = c.node(login).procs.get(cp.pid).unwrap().cred.clone();
    assert_eq!(cred, session.cred);
    // ...so hidepid still hides alice...
    assert_eq!(c.node(login).procfs().foreign_visible_count(&cred), 0);
    // ...the smask still strips world bits from anything it drops...
    let ctx = session.fs_ctx();
    c.node(login)
        .fs_write(&ctx, "/tmp/from-container", FsMode::new(0o777), b"x")
        .unwrap();
    assert!(!c
        .node(login)
        .fs_stat(&ctx, "/tmp/from-container")
        .unwrap()
        .mode
        .any_world());
    // ...and alice's home stays closed.
    assert!(c.fs_read(mallory, login, "/home/alice/w.bin").is_err());
}
