//! Revocation-propagation walkthrough: how a credential revoked at its
//! issuing realm dies at a sister site — asynchronously, over a simulated
//! WAN, with bounded staleness failing closed when the feed stops.
//!
//! ```text
//! cargo run --release --example revocation_propagation
//! ```

use hpc_user_separation::fedauth::{shared_broker, BrokerPolicy, CredentialBroker, RealmId};
use hpc_user_separation::simcore::{SimDuration, SimTime};
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig, HOME_REALM};

fn main() {
    println!("== Asynchronous cross-realm revocation (eus-revsync) ==\n");

    // The home site trusts sister realm 2; registering the sister
    // bootstraps a local replica of its CRL and subscribes to its delta
    // feed (push every revsync_feed_interval, anti-entropy pulls behind).
    let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
    let feed = cfg.revsync_feed_interval;
    let budget = cfg.revsync_max_lag;
    let mut cluster = SecureCluster::new(cfg, ClusterSpec::tiny());
    let alice = cluster.add_user("alice").unwrap();
    let db = cluster.db.read().clone();

    let lab = shared_broker(CredentialBroker::new(
        RealmId(2),
        0xC0FFEE,
        BrokerPolicy::default(),
    ));
    cluster.register_sister_realm(RealmId(2), lab.clone());
    println!(
        "home {HOME_REALM}: subscribed to realm2's CRL feed (every {feed}, budget {budget})\n"
    );

    // t = 0 — the collaborator logs in at their site; their token is
    // accepted here against the *local* replica: signature through realm2's
    // exported verifier, revocation through the replicated CRL. No
    // round-trip to realm2.
    let token = lab.write().login(&db, alice, None).unwrap();
    println!(
        "t=0s      realm2 login ({}): validate at home → {:?}",
        token.serial,
        cluster
            .validate_federated_token(&token)
            .map(|u| u.to_string())
    );

    // t = 0 — incident response at realm2 revokes everything alice holds.
    // The home replica has not heard yet: the token is still accepted.
    // Asynchrony is explicit — revocation must *travel*.
    lab.write().revoke_user(alice);
    println!(
        "t=0s      realm2 revokes alice:    validate at home → {:?}  (delta still in flight)",
        cluster
            .validate_federated_token(&token)
            .map(|u| u.to_string())
    );

    // t = feed + 1s — the push feed has carried the CRL delta across the
    // WAN; the local replica now rejects the serial. Propagation lag is
    // bounded by the feed cadence plus wire time.
    let t1 = SimTime::ZERO + feed + SimDuration::from_secs(1);
    cluster.advance_to(t1);
    println!(
        "t={}  delta feed lands:        validate at home → {}",
        t1.since(SimTime::ZERO),
        cluster.validate_federated_token(&token).unwrap_err()
    );
    println!(
        "          replica lag now {}, staleness budget {}\n",
        cluster.replica_lag(RealmId(2)).unwrap(),
        budget
    );

    // The sister site drops off the WAN. The local replica keeps answering
    // — validation never needed the issuer — until its lag crosses the
    // staleness budget, and then it fails CLOSED: no fresh revocation
    // data, no cross-realm acceptance.
    cluster.partition_sister_feed(RealmId(2), true);
    let fresh = lab.write().login(&db, alice, None).unwrap();
    let t2 = t1 + budget + SimDuration::from_secs(2);
    cluster.advance_to(t2);
    println!(
        "t={}  feed severed > budget: validate at home → {}",
        t2.since(SimTime::ZERO),
        cluster.validate_federated_token(&fresh).unwrap_err()
    );

    // Healing the link restores freshness at the next exchange.
    cluster.partition_sister_feed(RealmId(2), false);
    let t3 = t2 + feed + SimDuration::from_secs(1);
    cluster.advance_to(t3);
    println!(
        "t={}  feed healed:           validate at home → {:?}",
        t3.since(SimTime::ZERO),
        cluster
            .validate_federated_token(&fresh)
            .map(|u| u.to_string())
    );

    println!("\nresult: revocations ride an append-only delta log between realms;");
    println!("sisters reject within one feed interval, and a silent issuer");
    println!("degrades to fail-closed at the staleness budget — never fail-open.");
}
