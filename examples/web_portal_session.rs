//! The web portal story of Sec. IV-E: a user launches a Jupyter-style app on
//! an arbitrary compute node, reaches it through the authenticated portal,
//! opts a second app into a project group, and outsiders are refused at both
//! the portal and the packet layer.
//!
//! ```text
//! cargo run --release --example web_portal_session
//! ```

use hpc_user_separation::portal::PortalError;
use hpc_user_separation::sched::{JobKind, JobSpec};
use hpc_user_separation::simcore::{SimDuration, SimTime};
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};

fn main() {
    let mut cluster = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::default());
    let alice = cluster.add_user("alice").unwrap();
    let bob = cluster.add_user("bob").unwrap();
    let carol = cluster.add_user("carol").unwrap();

    println!("== portal session walkthrough (Sec. IV-E) ==\n");

    // Alice's notebook job lands on some compute node.
    let job = cluster.submit(
        JobSpec::new(alice, "jupyter", SimDuration::from_secs(3600))
            .with_kind(JobKind::WebApp)
            .with_cmdline(["jupyter", "lab", "--no-browser"]),
    );
    cluster.advance_to(SimTime::from_secs(1));
    let node = {
        let sched = cluster.sched.read();
        *sched.jobs[&job]
            .allocations
            .keys()
            .next()
            .expect("scheduled")
    };
    let key = cluster
        .launch_webapp(alice, job, "jupyter", node, 8888, "alice's notebook", None)
        .unwrap();
    println!("alice's jupyter runs on {node} port 8888 — any node works, no web partition");

    // Alice fetches through the portal.
    let alice_token = cluster.portal_login(alice).unwrap();
    let resp = cluster.portal_fetch(alice_token, &key).unwrap();
    println!(
        "alice fetch: 200 OK ({} bytes, {} us end-to-end, authenticated + authorized)",
        resp.body.len(),
        resp.latency_us
    );

    // Bob cannot, even though he is logged in to the portal.
    let bob_token = cluster.portal_login(bob).unwrap();
    match cluster.portal_fetch(bob_token, &key) {
        Err(PortalError::Forbidden) => {
            println!("bob fetch:  403 Forbidden (user-based authorization)")
        }
        other => panic!("expected Forbidden, got {other:?}"),
    }

    // Alice shares a team dashboard with her project via the egid opt-in.
    let proj = cluster.create_project("fusion", alice).unwrap();
    cluster.add_project_member(alice, proj, bob).unwrap();
    let dash = cluster
        .launch_webapp(
            alice,
            job,
            "dashboard",
            node,
            9999,
            "fusion dashboard",
            Some(proj),
        )
        .unwrap();
    let resp = cluster.portal_fetch(bob_token, &dash).unwrap();
    println!(
        "bob fetch of team dashboard: 200 OK ({} bytes — listener egid = fusion)",
        resp.body.len()
    );

    // Carol is not in the project.
    let carol_token = cluster.portal_login(carol).unwrap();
    assert!(matches!(
        cluster.portal_fetch(carol_token, &dash),
        Err(PortalError::Forbidden)
    ));
    println!("carol fetch of team dashboard: 403 Forbidden (not a member)");

    println!("\nthe whole path — portal auth, route authorization, and the");
    println!("packet-level UBF on the compute node — agrees on the same policy.");
}
