//! The HPC-facilitator story (paper Secs. IV-A, IV-C): support staff are not
//! administrators, but whitelisted tools give them exactly two extras — see
//! all processes (`seepid`) and publish world-readable data (`smask_relax`)
//! — while everything else stays as locked down as for any user.
//!
//! ```text
//! cargo run --release --example facilitator_toolkit
//! ```

use hpc_user_separation::fsperm::{seepid, smask_relax, smask_restore};
use hpc_user_separation::simcore::SimTime;
use hpc_user_separation::simos::Mode;
use hpc_user_separation::{attribute_load, ClusterSpec, SecureCluster, SeparationConfig};

fn main() {
    let mut cluster = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::default());
    let facilitator = cluster.add_user("facilitator").unwrap();
    let heavy = cluster.add_user("grad-student").unwrap();
    let light = cluster.add_user("postdoc").unwrap();
    cluster.fsperm_policy = cluster
        .fsperm_policy
        .clone()
        .allow_seepid(facilitator)
        .allow_relax(facilitator);
    let login = cluster.login_node();

    println!("== facilitator toolkit walkthrough ==\n");

    // A ticket comes in: "the login node is slow."
    let h_sid = cluster.ssh(heavy, login).unwrap();
    for i in 0..7 {
        cluster
            .node_mut(login)
            .spawn(h_sid, ["python", &format!("tune-{i}.py")], SimTime::ZERO)
            .unwrap();
    }
    let l_sid = cluster.ssh(light, login).unwrap();
    cluster
        .node_mut(login)
        .spawn(l_sid, ["vim"], SimTime::ZERO)
        .unwrap();

    // Step 1: the facilitator logs in and looks around — hidepid=2 shows
    // them only themselves.
    let f_sid = cluster.ssh(facilitator, login).unwrap();
    let before = attribute_load(&cluster, login, f_sid);
    println!(
        "before seepid: sees {}/{} processes — cannot attribute the load",
        before.total_visible, before.total_actual
    );

    // Step 2: seepid (whitelisted) reveals the whole node.
    let policy = cluster.fsperm_policy.clone();
    seepid(&policy, cluster.node_mut(login).session_mut(f_sid).unwrap()).unwrap();
    let after = attribute_load(&cluster, login, f_sid);
    let (hot_uid, hot_n) = after.hotspot().expect("load exists");
    let hot_name = cluster.db.read().user(hot_uid).unwrap().name.clone();
    println!(
        "after  seepid: sees {}/{} — hotspot: {hot_name} with {hot_n} processes",
        after.total_visible, after.total_actual
    );

    // Step 3: publish a community dataset with smask_relax.
    smask_relax(&policy, cluster.node_mut(login).session_mut(f_sid).unwrap()).unwrap();
    let ctx = cluster
        .node(login)
        .session(f_sid)
        .unwrap()
        .fs_ctx()
        .with_umask(Mode::new(0));
    cluster
        .node(login)
        .fs_write(&ctx, "/tmp/imagenet-index", Mode::new(0o644), b"...")
        .unwrap();
    smask_restore(&policy, cluster.node_mut(login).session_mut(f_sid).unwrap());
    let readable = cluster.fs_read(light, login, "/tmp/imagenet-index").is_ok();
    println!("published dataset readable by users: {readable}");

    // Step 4: the toolkit grants nothing else — the facilitator still can't
    // read user homes or connect to user services.
    cluster
        .fs_write(
            heavy,
            login,
            "/home/grad-student/thesis.tex",
            Mode::new(0o644),
            b"ch1",
        )
        .unwrap();
    let blocked = cluster
        .fs_read(facilitator, login, "/home/grad-student/thesis.tex")
        .is_err();
    println!("user homes still closed to staff: {blocked}");

    // And a regular user can invoke neither tool.
    let u_err = seepid(&policy, cluster.node_mut(login).session_mut(h_sid).unwrap()).is_err();
    println!("regular users denied the tools: {u_err}");

    assert!(readable && blocked && u_err);
    println!("\nleast privilege held: two escape hatches, each whitelisted, nothing more.");
}
