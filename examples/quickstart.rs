//! Quickstart: build the paper's cluster, compare it with a stock cluster,
//! and print the separation audit for both.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hpc_user_separation::{audit, ClusterSpec, SeparationConfig};

fn main() {
    let spec = ClusterSpec::default();

    println!("== Enhanced User Separation: quickstart ==\n");
    println!(
        "cluster: {} compute nodes x {} cores, {} login node(s), {} GPUs/node\n",
        spec.compute_nodes, spec.cores_per_node, spec.login_nodes, spec.gpus_per_node
    );

    // A stock Linux + Slurm cluster: every control off.
    let baseline = audit::run_audit(&SeparationConfig::baseline(), &spec);
    println!("{baseline}");

    // The paper's deployment: every control on.
    let llsc = audit::run_audit(&SeparationConfig::llsc(), &spec);
    println!("{llsc}");

    println!(
        "baseline: {} of {} channels open; llsc: {} open ({} expected residuals)",
        baseline.open_count(),
        baseline.rows.len(),
        llsc.open_count(),
        audit::expected_residuals().len(),
    );
    assert!(
        llsc.only_expected_residuals(),
        "full config must close everything but the Sec. V residuals"
    );
    println!("\nresult: the full configuration closes every channel except the");
    println!("three the paper names (tmp filenames, abstract sockets, native-CM RDMA).");
}
