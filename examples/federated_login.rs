//! Federated login walkthrough: login → certificate mint → ssh → job
//! submission → revocation, against the full paper configuration with the
//! companion paper's credential plane (`federated_auth`) enabled.
//!
//! ```text
//! cargo run --release --example federated_login
//! ```

use eus_sched::JobSpec;
use hpc_user_separation::simcore::{SimDuration, SimTime};
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};

fn main() {
    println!("== Federated identity & credential lifecycle ==\n");
    let mut cluster = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::tiny());
    let broker = cluster.broker.clone().expect("llsc deploys the broker");

    // 1. Provisioning performs the first federated login: alice immediately
    //    holds a short-lived bearer token and an SSH certificate.
    let alice = cluster.add_user("alice").unwrap();
    let token = broker.read().current_token(alice).unwrap();
    let cert = broker.read().current_cert(alice).unwrap();
    println!(
        "login:   token {} valid until {}",
        token.serial, token.expires
    );
    println!(
        "cert:    {} valid until {} (short TTL)",
        cert.serial, cert.expires
    );

    // 2. ssh to the login node: pam_fedauth verifies the live certificate.
    let login = cluster.login_node();
    let session = cluster.ssh(alice, login).expect("live certificate");
    println!("ssh:     session {:?} opened on {login}", session);

    // 3. Job submission presents the bearer token at the scheduler gate.
    let job = cluster
        .try_submit(JobSpec::new(alice, "train", SimDuration::from_secs(60)))
        .expect("live bearer token");
    cluster.advance_to(SimTime::from_secs(1));
    println!("submit:  job {job} accepted and scheduled");

    // 4. Incident response: revoke every credential alice holds. The stolen
    //    token is dead everywhere, immediately and irreversibly.
    broker.write().revoke_user(alice);
    let replay = broker.read().validate_token(&token);
    println!("revoke:  replayed token -> {replay:?}");
    assert!(replay.is_err(), "revocation must be immediate");
    let stale_submit =
        cluster.try_submit(JobSpec::new(alice, "backdoor", SimDuration::from_secs(60)));
    println!(
        "submit:  without credential -> {:?}",
        stale_submit.err().unwrap()
    );

    // 5. The legitimate user simply re-authenticates; the attacker holding
    //    yesterday's material cannot.
    let fresh = broker
        .write()
        .login(&cluster.db.read(), alice, None)
        .unwrap();
    println!(
        "relogin: fresh token {} replaces the revoked one",
        fresh.serial
    );
    assert!(broker.read().validate_token(&fresh).is_ok());
    assert!(
        broker.read().validate_token(&token).is_err(),
        "old one stays dead"
    );

    println!("\nresult: no long-lived secrets — stolen material dies at the");
    println!("next revocation or expiry, and every service checks centrally.");
}
