//! # Node-sharing policies under a bulk-synchronous sweep workload
//!
//! The scheduling trade-off of paper Sec. IV-B: exclusive allocation
//! isolates but "results in poor utilization if a user is executing many
//! bulk synchronous parallel jobs"; LLSC's whole-node user-based policy
//! restores packing while keeping one user per node. This example runs the
//! *identical* workload (same seed end to end: an LLSC-like mix of
//! parameter sweeps, Monte Carlo batches, MPI gangs, and interactive
//! sessions over 4 simulated hours on 32 × 16-core nodes) under all three
//! [`NodeSharing`] policies and prints the comparison.
//!
//! ```text
//! cargo run --release --example param_sweep_scheduling
//! ```
//!
//! ## Reading the output
//!
//! * **claim %** — core-seconds *allocated* / capacity. Exclusive inflates
//!   this: a 1-task job still claims all 16 cores.
//! * **useful %** — core-seconds actually used by tasks / capacity. The
//!   number that collapses under exclusive allocation with many small
//!   jobs, and that whole-node keeps close to shared.
//! * **p50/p95 wait** — queue waits; the price of the isolation each
//!   policy buys.
//!
//! The expected shape: `whole-node` tracks `shared` on useful utilization
//! far more closely than `exclusive`, while still guaranteeing a single
//! user per node at any instant — the paper's argument, measured.
//!
//! ## Related
//!
//! The scheduler's *policy plane* layers onto any of these policies: see
//! `examples/preemption_qos.rs` (QoS preemption with the separation
//! epilog) and `exp_sched_policy` (multi-partition fair-share +
//! conservative-backfill reservations, with the measured acceptance
//! numbers in `BENCH_sched_policy.json`).

use hpc_user_separation::sched::{NodeSharing, SchedConfig, Scheduler};
use hpc_user_separation::simcore::{SimRng, SimTime};
use hpc_user_separation::simos::UserDb;
use hpc_user_separation::workloads::{UserPopulation, WorkloadMix};

fn main() {
    println!("== node-sharing policy comparison (Sec. IV-B) ==\n");
    println!("workload: LLSC-like mix, 4 simulated hours, 32 nodes x 16 cores\n");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "policy", "jobs", "claim %", "useful %", "p50 wait s", "p95 wait s", "makespan s"
    );

    for policy in NodeSharing::all() {
        // Identical workload per policy: same seed end to end.
        let mut rng = SimRng::seed_from_u64(2024);
        let mut db = UserDb::new();
        let pop = UserPopulation::build(&mut db, 40, 8, 1.1, &mut rng);
        let trace = WorkloadMix::llsc_like().generate(&pop, SimTime::from_secs(4 * 3600), &mut rng);

        let mut sched = Scheduler::new(SchedConfig {
            policy,
            ..SchedConfig::default()
        });
        for _ in 0..32 {
            sched.add_node(16, 65_536, 0);
        }
        trace.submit_all(&mut sched);
        let end = sched.run_to_completion();

        let summary = sched.metrics.wait_times.summary().expect("jobs ran");
        println!(
            "{:<12} {:>8} {:>10.1} {:>10.1} {:>12.1} {:>12.1} {:>12.0}",
            policy.to_string(),
            sched.metrics.completed.get(),
            100.0 * sched.utilization(),
            100.0 * sched.effective_utilization(),
            summary.p50,
            summary.p95,
            end.as_secs_f64(),
        );
    }

    println!("\nreading: whole-node tracks shared far more closely than exclusive,");
    println!("while guaranteeing a single user per node at any instant.");
}
