//! Containers on the hardened cluster (Sec. IV-G): an Apptainer-style launch
//! keeps the user's identity, so every separation control passes through;
//! enterprise containers are refused; and image sprawl quietly accumulates
//! vulnerable code over simulated years.
//!
//! ```text
//! cargo run --release --example container_workflow
//! ```

use hpc_user_separation::containers::{EnterpriseRuntime, Image};
use hpc_user_separation::simcore::SimTime;
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};

const DAY: u64 = 86_400;

fn main() {
    let mut cluster = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::default());
    let alice = cluster.add_user("alice").unwrap();
    let bob = cluster.add_user("bob").unwrap();
    let login = cluster.login_node();

    println!("== container workflow (Sec. IV-G) ==\n");

    // Alice brings a pre-built image (built on her own machine) and runs it.
    let image = Image::typical_research_stack("pytorch-2.1.sif", SimTime::ZERO);
    let sid = cluster.ssh(alice, login).unwrap();
    let session = cluster.node(login).session(sid).unwrap().clone();
    let runtime = &cluster.runtime;

    // Building on the cluster is refused.
    assert!(runtime.build(&session, "new.sif").is_err());
    println!("building on the cluster: refused (no admin privileges for users)");

    // Enterprise runtime is refused outright.
    assert!(EnterpriseRuntime.launch(&session).is_err());
    println!("docker-style launch: refused (root daemon forbidden on multi-user HPC)");

    // Apptainer-style launch works and keeps alice's identity.
    let cp = {
        let session = session.clone();
        let node = cluster.node_mut(login);
        hpc_user_separation::containers::HpcRuntime.launch(
            node,
            &session,
            &image,
            ["python", "train.py"],
            SimTime::ZERO,
        )
    };
    println!(
        "apptainer launch: pid {:?} runs as {} — host controls pass through",
        cp.pid, session.cred.uid
    );

    // Bob still cannot see alice's containerized process.
    let bob_cred = cluster.credentials(bob);
    let foreign = cluster
        .node(login)
        .procfs()
        .foreign_visible_count(&bob_cred);
    assert_eq!(foreign, 0);
    println!("bob's view of alice's container: nothing (hidepid applies inside too)\n");

    // Image sprawl over two simulated years.
    println!("image sprawl on the shared filesystem:");
    println!(
        "{:<10} {:>8} {:>10} {:>14}",
        "day", "copies", "stale>90d", "stale vulns"
    );
    cluster
        .containers
        .store(alice, "/proj/fusion/pytorch.sif", image, SimTime::ZERO);
    let mut cloned = 0u32;
    for day in [60u64, 180, 365, 540, 730] {
        let now = SimTime::from_secs(day * DAY);
        // Every few months someone clones the image somewhere new and the
        // old copies are forgotten.
        cloned += 1;
        cluster.containers.clone_image(
            "/proj/fusion/pytorch.sif",
            bob,
            format!("/home/bob/copy-{cloned}.sif"),
            now,
        );
        println!(
            "{:<10} {:>8} {:>10} {:>14}",
            day,
            cluster.containers.len(),
            cluster.containers.stale(now, 90.0).len(),
            cluster.containers.stale_vuln_load(now, 90.0)
        );
    }
    println!("\nstale copies keep accruing CVEs — why LLSC prefers shared module");
    println!("trees over per-user containers unless a project really needs them.");
}
