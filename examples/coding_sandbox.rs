//! The paper's motivating story (Secs. II–III): every HPC user is a software
//! developer, and "version 0" code is buggy. This example runs a deliberately
//! hostile "version 0" program for user `mallory` on the hardened cluster and
//! shows that every attempted interaction with `alice` is contained — the
//! coding-sandbox property.
//!
//! ```text
//! cargo run --release --example coding_sandbox
//! ```

use hpc_user_separation::sched::JobSpec;
use hpc_user_separation::simcore::{SimDuration, SimTime};
use hpc_user_separation::simnet::{Proto, SocketAddr};
use hpc_user_separation::simos::Mode;
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};

fn main() {
    let mut cluster = SecureCluster::new(SeparationConfig::llsc(), ClusterSpec::default());
    let alice = cluster.add_user("alice").unwrap();
    let mallory = cluster.add_user("mallory").unwrap();
    let login = cluster.login_node();

    println!("== coding sandbox: mallory's buggy 'version 0' vs alice ==\n");

    // Alice is doing normal work: a job, a file, a service.
    cluster.submit(JobSpec::new(alice, "climate-model", SimDuration::from_secs(600)).with_tasks(4));
    cluster.advance_to(SimTime::from_secs(1));
    cluster
        .fs_write(
            alice,
            login,
            "/home/alice/results.csv",
            Mode::new(0o644),
            b"t,temp\n0,287.4\n",
        )
        .unwrap();
    let alice_node = cluster.compute_ids[0];
    cluster
        .listen(alice, alice_node, Proto::Tcp, 5555, None)
        .unwrap();

    let mut contained = 0;
    let mut check = |name: &str, blocked: bool, detail: &str| {
        println!(
            "  [{}] {name}: {detail}",
            if blocked { "BLOCKED" } else { "LEAKED " }
        );
        if blocked {
            contained += 1;
        }
    };

    // 1. Scan processes for alice's work.
    let mcred = cluster.credentials(mallory);
    let seen = cluster.node(login).procfs().foreign_visible_count(&mcred);
    check(
        "ps scrape",
        seen == 0,
        "hidepid=2 shows mallory only her own processes",
    );

    // 2. squeue for alice's job names.
    let foreign_jobs = cluster
        .sched
        .read()
        .squeue(&mcred)
        .iter()
        .filter(|v| v.user == alice)
        .count();
    check(
        "squeue scrape",
        foreign_jobs == 0,
        "PrivateData hides foreign jobs",
    );

    // 3. Read alice's results.
    let read = cluster.fs_read(mallory, login, "/home/alice/results.csv");
    check(
        "home read",
        read.is_err(),
        "root-owned 0770 home, user private group",
    );

    // 4. Drop a world-readable exfil file for alice to 'find'.
    cluster
        .fs_write(mallory, login, "/tmp/pwned", Mode::new(0o777), b"run me")
        .unwrap();
    let stat = {
        let ctx = cluster.user_fs_ctx(mallory);
        cluster.node(login).fs_stat(&ctx, "/tmp/pwned").unwrap()
    };
    check(
        "world-writable drop",
        !stat.mode.any_world(),
        "smask 007 strips world bits even on request 0777",
    );

    // 5. Port-scan alice's service.
    let conn = cluster.connect(
        mallory,
        cluster.compute_ids[1],
        SocketAddr::new(alice_node, 5555),
        Proto::Tcp,
    );
    check(
        "tcp connect",
        conn.is_err(),
        "UBF: different user, no group opt-in",
    );

    // 6. ssh to the node alice computes on.
    let ssh = cluster.ssh(mallory, alice_node);
    check(
        "ssh to her node",
        ssh.is_err(),
        "pam_slurm: no running job there",
    );

    // 7. Submit a fork-bomb-sized job to crash shared nodes: whole-node
    //    scheduling means it can only take out mallory's own nodes.
    cluster.submit(
        JobSpec::new(mallory, "oops-oom", SimDuration::from_secs(60))
            .with_tasks(2)
            .with_mem_per_task(999_999),
    );
    cluster.advance_to(SimTime::from_secs(2));
    let cohabited = cluster
        .sched
        .read()
        .nodes
        .values()
        .any(|n| n.users_present().len() > 1);
    check(
        "node co-residency",
        !cohabited,
        "whole-node policy: her crash can only fail her own jobs",
    );

    println!("\n{contained}/7 interference attempts contained.");
    println!("mallory sees a personal HPC; alice never notices her.");
    assert_eq!(contained, 7);
}
