//! Cross-realm federation walkthrough: a collaborator from a trusted sister
//! site uses their *home* credential at this cluster, an untrusted site's
//! credential fails closed, and a local user self-enrolls MFA through the
//! portal — all against the full paper configuration with the sharded
//! credential plane.
//!
//! ```text
//! cargo run --release --example cross_realm_federation
//! ```

use hpc_user_separation::fedauth::{
    realm::mfa_code_at, shared_broker, BrokerPolicy, CredentialBroker, RealmId,
};
use hpc_user_separation::portal::AuthError;
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig, HOME_REALM};

fn main() {
    println!("== Multi-realm trust & portal MFA enrollment ==\n");

    // The home site allow-lists sister realm 2 (a collaborating lab); the
    // broker runs 4 uid-hashed shards (the llsc default).
    let cfg = SeparationConfig::llsc().with_trusted_realms([2u32]);
    let mut cluster = SecureCluster::new(cfg, ClusterSpec::tiny());
    let alice = cluster.add_user("alice").unwrap();
    let db = cluster.db.read().clone();

    // 1. Two sister sites run their own brokers. Only realm 2 is trusted.
    let lab = shared_broker(CredentialBroker::new(
        RealmId(2),
        0xC0FFEE,
        BrokerPolicy::default(),
    ));
    let stranger = shared_broker(CredentialBroker::new(
        RealmId(3),
        0xDEAD_BEEF,
        BrokerPolicy::default(),
    ));
    cluster.register_sister_realm(RealmId(2), lab.clone());
    cluster.register_sister_realm(RealmId(3), stranger.clone());
    println!("federation: home {HOME_REALM} trusts realm2; realm3 registered, untrusted");

    // 2. The collaborator logs in at *their* site and presents the token
    //    here: the home site verifies it against the issuer's CA and
    //    revocation list, because the trust policy allow-lists realm 2.
    let visiting = lab.write().login(&db, alice, None).unwrap();
    let who = cluster.validate_federated_token(&visiting).unwrap();
    println!(
        "realm2 token {}: accepted at home as uid {who}",
        visiting.serial
    );

    // 3. The same uid asserted by the untrusted site is refused — realm
    //    binding plus the allow-list keep identity collisions harmless.
    let spoof = stranger.write().login(&db, alice, None).unwrap();
    println!(
        "realm3 token {}: {}",
        spoof.serial,
        cluster.validate_federated_token(&spoof).unwrap_err()
    );

    // 4. Revocation at the issuing site propagates here asynchronously:
    //    the sister's CRL delta feed (eus-revsync) lands within one feed
    //    interval, and the local replica rejects from then on — see
    //    examples/revocation_propagation.rs for the full timeline.
    lab.write().revoke_user(alice);
    let next_feed = cluster.sched.read().now()
        + cluster.config.revsync_feed_interval
        + hpc_user_separation::simcore::SimDuration::from_secs(1);
    cluster.advance_to(next_feed);
    println!(
        "one feed interval after realm2 incident response: {}",
        cluster.validate_federated_token(&visiting).unwrap_err()
    );

    // 5. Portal MFA self-enrollment: alice binds a second factor through
    //    the portal's enroll_mfa route. The next login without a code is
    //    refused; with the current window code it succeeds.
    let session = cluster.portal_login(alice).unwrap();
    let secret = cluster.portal_enroll_mfa(session, None).unwrap().secret;
    println!("\nportal: alice enrolled MFA (secret shown once, QR-code style)");
    let refused = cluster.portal_login(alice).unwrap_err();
    assert!(matches!(refused, AuthError::Federated(_)));
    println!("next login without a code: {refused}");
    // The user reads the current code off their authenticator (the broker's
    // out-of-band stand-in), which derives from the enrolled secret.
    let broker = cluster.broker.clone().unwrap();
    let code = broker.read().current_mfa_code(alice).unwrap();
    assert_eq!(code, mfa_code_at(secret, broker.read().now()));
    let token = cluster.portal_login_mfa(alice, Some(code)).unwrap();
    println!(
        "with the current window code: session open, whoami = {}",
        cluster.portal.auth.whoami(token).unwrap()
    );

    println!("\nresult: trusted sites interoperate on their own credentials;");
    println!("untrusted realms fail closed; users harden their own accounts.");
}
