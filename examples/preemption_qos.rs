//! QoS preemption walkthrough: an urgent interactive job displaces bulk
//! work on the paper's whole-node cluster — **with the separation epilog
//! firing in between**, so urgency never weakens isolation.
//!
//! Timeline on a 2-node LLSC-configured cluster (`llsc().with_preemption()`):
//!
//! 1. alice's bulk GPU jobs fill both nodes for an hour;
//! 2. bob submits a 10-minute `QosClass::Urgent` session — under plain
//!    FCFS+EASY he would wait the hour out;
//! 3. the scheduler kills-and-requeues the *cheapest* bulk victim
//!    (fewest remaining core-seconds), emits the victim's epilog — the
//!    cluster layer kills alice's stray processes, revokes her device
//!    grants, and scrubs GPU memory — and only then places bob;
//! 4. bob's processes run on a scrubbed node; alice's victim re-runs to
//!    completion afterwards (its consumed work was not lost twice: the
//!    stale end event from the killed run is ignored).
//!
//! ```text
//! cargo run --release --example preemption_qos
//! ```

use hpc_user_separation::sched::{JobSpec, JobState, QosClass};
use hpc_user_separation::simcore::{SimDuration, SimTime};
use hpc_user_separation::{ClusterSpec, SecureCluster, SeparationConfig};

fn main() {
    println!("== QoS preemption under whole-node separation ==\n");

    let spec = ClusterSpec {
        compute_nodes: 2,
        cores_per_node: 8,
        mem_per_node_mib: 16_384,
        gpus_per_node: 8,
        gpu_mem_bytes: 1024,
        login_nodes: 1,
    };
    let mut cluster = SecureCluster::new(SeparationConfig::llsc().with_preemption(), spec);
    let alice = cluster.add_user("alice").unwrap();
    let bob = cluster.add_user("bob").unwrap();

    // 1. alice's bulk jobs take both nodes for an hour.
    let bulk: Vec<_> = (0..2)
        .map(|i| {
            cluster.submit(
                JobSpec::new(alice, format!("train-{i}"), SimDuration::from_secs(3600))
                    .with_tasks(8)
                    .with_mem_per_task(1024)
                    .with_gpus_per_task(if i == 0 { 1 } else { 0 })
                    .with_qos(QosClass::Bulk),
            )
        })
        .collect();
    cluster.advance_to(SimTime::from_secs(60));
    {
        let sched = cluster.sched.read();
        println!(
            "t=60s   alice runs {} bulk jobs; cluster saturated until t=3600s",
            sched.running_count()
        );
    }

    // 2. bob's urgent interactive session arrives.
    let urgent = cluster.submit(
        JobSpec::new(bob, "debug-session", SimDuration::from_secs(600))
            .with_tasks(4)
            .with_mem_per_task(1024)
            .with_qos(QosClass::Urgent),
    );
    cluster.advance_to(SimTime::from_secs(61));

    let (victim, victim_node, preempt_at) = {
        let sched = cluster.sched.read();
        let p = sched
            .preemptions
            .first()
            .expect("urgent job preempts a bulk victim");
        println!(
            "t=61s   {} preempted {} on {} (cheapest remaining work)",
            p.preempted_by, p.victim, p.nodes[0]
        );
        assert_eq!(sched.jobs[&urgent].state, JobState::Running);
        assert_eq!(sched.jobs[&p.victim].state, JobState::Pending, "requeued");
        (p.victim, p.nodes[0], p.at)
    };
    assert!(bulk.contains(&victim));

    // 3. Separation survived: the epilog ran before bob's prolog, so the
    //    victim's processes are gone from the node and the GPU is clean.
    assert_eq!(
        cluster.node(victim_node).procs.count_for(alice),
        0,
        "alice's processes were killed by the preemption epilog"
    );
    assert!(cluster.node(victim_node).procs.count_for(bob) > 0);
    let gpu = cluster.gpus.get(victim_node, 0).expect("node has a GPU");
    assert!(
        !gpu.is_dirty(),
        "GPU memory scrubbed before any reassignment"
    );
    println!(
        "t=61s   epilog at t={:.0}s: alice's procs killed, device grants revoked, GPU scrubbed",
        preempt_at.since(SimTime::ZERO).as_secs_f64()
    );
    println!("t=61s   bob's session runs on the scrubbed node\n");

    // 4. bob finishes; the victim reruns its full hour.
    let end = cluster.run_to_completion();
    let sched = cluster.sched.read();
    assert_eq!(sched.jobs[&urgent].state, JobState::Completed);
    assert_eq!(sched.jobs[&victim].state, JobState::Completed);
    let rerun_started = sched.jobs[&victim].started.unwrap();
    println!(
        "done    bob completed at t={:.0}s; victim restarted at t={:.0}s and completed at t={:.0}s",
        sched.jobs[&urgent]
            .ended
            .unwrap()
            .since(SimTime::ZERO)
            .as_secs_f64(),
        rerun_started.since(SimTime::ZERO).as_secs_f64(),
        sched.jobs[&victim]
            .ended
            .unwrap()
            .since(SimTime::ZERO)
            .as_secs_f64(),
    );
    assert_eq!(
        sched.jobs[&victim].ended.unwrap().since(rerun_started),
        SimDuration::from_secs(3600),
        "the victim's full runtime was preserved on rerun"
    );
    println!(
        "\nreading: urgency cost the victim a requeue, never the cluster its\n\
         separation — every displaced allocation passed through the same\n\
         epilog (process cleanup, device revocation, GPU scrub) a normal\n\
         completion does. makespan ended at t={:.0}s.",
        end.since(SimTime::ZERO).as_secs_f64()
    );
}
