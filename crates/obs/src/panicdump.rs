//! `EUS_FLIGHT_DUMP=path`: write every plane's published forensics on panic.
//!
//! `assert_or_dump!` call sites already print flight tails, but an
//! unexpected panic anywhere else (index bug, property shrink, experiment
//! invariant) loses the rings. This module closes that gap: when the
//! `EUS_FLIGHT_DUMP` environment variable names a file, planes that call
//! [`publish`] have their latest `dump_json` payload written there by a
//! chaining panic hook. Publishing with the variable unset is a no-op
//! (one cached boolean check), so harnesses pay nothing unless they opt
//! in.
//!
//! This module is intentionally wall-world: it reads the environment and
//! writes a file, but only ever *at publish boundaries and on panic* —
//! never on a simulation hot path — and nothing it does feeds back into
//! sim decisions, so determinism is preserved (it lives in `crates/obs`,
//! inside the analyzer's wall-clock allowance).

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

static DUMP_PATH: OnceLock<Option<String>> = OnceLock::new();
static SINK: OnceLock<Mutex<BTreeMap<String, String>>> = OnceLock::new();
static HOOK_INSTALLED: OnceLock<()> = OnceLock::new();

/// The configured dump path, read from `EUS_FLIGHT_DUMP` once per process.
pub fn dump_path() -> Option<&'static str> {
    DUMP_PATH
        .get_or_init(|| std::env::var("EUS_FLIGHT_DUMP").ok())
        .as_deref()
}

/// True when `EUS_FLIGHT_DUMP` names a file (cached after the first call).
pub fn armed() -> bool {
    dump_path().is_some()
}

/// Publish (or refresh) one plane's forensics payload — typically the JSON
/// from its ring dumps. No-op unless [`armed`]. The first armed publish
/// installs a panic hook that chains to the existing one and writes every
/// published payload, keyed by plane, to the configured path.
pub fn publish(plane: &str, json: String) {
    if !armed() {
        return;
    }
    HOOK_INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            write_dump();
            prev(info);
        }));
    });
    if let Ok(mut sink) = SINK.get_or_init(|| Mutex::new(BTreeMap::new())).lock() {
        sink.insert(plane.to_string(), json);
    }
}

/// Write the current published payloads to the configured path now (the
/// panic hook calls this; tests and experiments may too, e.g. to flush at
/// a clean exit when forensics were requested anyway).
pub fn write_dump() {
    let Some(path) = dump_path() else {
        return;
    };
    let Some(sink) = SINK.get() else {
        return;
    };
    let Ok(sink) = sink.lock() else {
        return;
    };
    let mut out = String::from("{");
    for (i, (plane, json)) in sink.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("  \"");
        out.push_str(plane);
        out.push_str("\": ");
        // Payloads are already JSON; indent them one level for readability.
        out.push_str(&json.replace('\n', "\n  "));
    }
    out.push_str("\n}\n");
    // Best-effort: a failed write must never mask the original panic.
    let _ = std::fs::write(path, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_publish_is_noop() {
        // The test environment does not set EUS_FLIGHT_DUMP; publishing
        // must neither install a hook nor retain the payload.
        if armed() {
            return; // someone is running the suite armed on purpose
        }
        publish("test-plane", "{}".to_string());
        assert!(SINK.get().is_none() || HOOK_INSTALLED.get().is_none());
        write_dump(); // also a no-op
    }
}
