//! Causal cross-plane tracing: `TraceCtx` propagation + per-plane rings.
//!
//! A trace is a tree of sim-time-stamped spans stitched across planes by a
//! [`TraceCtx`] — a (trace-id, parent-span-id) pair passed *by value*
//! through call chains, stored inside queued work (scheduler submissions),
//! and shipped across the simnet WAN inside `CrlDelta` messages. One trace
//! therefore covers a whole causal story: portal revoke → mesh propagation
//! → sister-replica apply → fail-closed validate.
//!
//! The PR-6 discipline holds throughout:
//!
//! * ids are integers minted from a per-plane atomic counter — the hot
//!   path never hashes, never compares a string;
//! * a disabled buffer costs one relaxed load + branch per call and
//!   returns [`TraceToken::NOOP`] / [`TraceCtx::NONE`], so every
//!   downstream record call is another never-taken branch;
//! * recording never feeds a decision — timestamps are `SimTime`, so a
//!   traced replay is bit-identical to a quiet one
//!   (`tests/obs_trace_properties.rs` pins this).
//!
//! Completed spans land in a fixed-capacity ring ([`TraceBuffer`]) behind
//! a mutex, so `&self` hot paths (broker validate under a read lock, the
//! mesh validate path) can record without a `&mut Recorder`. The mutex is
//! held only for the ring write — never across a call into another plane —
//! so it introduces no lock-order edges beyond `<holder> → trace-ring`.

use eus_simcore::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A causal context: which trace we are inside and which span is our
/// parent. `Copy` on purpose — contexts travel by value through call
/// chains, job queues, and wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace id (0 = no trace).
    pub trace: u64,
    /// Parent span id within the trace (0 = root position).
    pub parent: u64,
}

impl TraceCtx {
    /// The absent context: recording against it is free.
    pub const NONE: TraceCtx = TraceCtx {
        trace: 0,
        parent: 0,
    };

    /// True when this context carries no live trace.
    #[inline]
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }
}

/// One completed span in a trace tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpan {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id (unique across planes — the plane code is baked into
    /// the high bits).
    pub span: u64,
    /// Parent span id (0 = trace root).
    pub parent: u64,
    /// Span name (`plane.subsystem.name`).
    pub name: &'static str,
    /// Plane that recorded it.
    pub plane: &'static str,
    /// Sim time the span opened.
    pub start: SimTime,
    /// Sim time the span closed (>= start).
    pub end: SimTime,
    /// One caller-defined detail word (serial, job id, entry count, …).
    pub detail: u64,
}

/// An open span: returned by [`TraceBuffer::root`]/[`TraceBuffer::start`],
/// closed by [`TraceBuffer::finish`]. `Copy` so it can be threaded through
/// early returns without ceremony; a NOOP token makes every follow-up free.
#[derive(Debug, Clone, Copy)]
#[must_use = "an open trace span records nothing until passed to finish()"]
pub struct TraceToken {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    start: SimTime,
}

impl TraceToken {
    /// The token of a disabled buffer — finishing it is free.
    pub const NOOP: TraceToken = TraceToken {
        trace: 0,
        span: 0,
        parent: 0,
        name: "",
        start: SimTime::ZERO,
    };

    /// True when this token will record on finish.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.trace != 0
    }

    /// The context children of this span should carry.
    #[inline]
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace: self.trace,
            parent: self.span,
        }
    }
}

/// Completed-span storage for one plane.
struct Ring {
    spans: Vec<TraceSpan>,
    head: usize,
    pushed: u64,
    cap: usize,
}

/// A per-plane ring of completed trace spans plus the id mint.
///
/// Interior-mutable on purpose: validate paths record through `&self`
/// behind read locks. Disabled, every entry point is one relaxed load +
/// branch.
pub struct TraceBuffer {
    plane: &'static str,
    code: u8,
    enabled: AtomicBool,
    next: AtomicU64,
    ring: Mutex<Ring>,
}

impl TraceBuffer {
    /// A buffer for `plane`. `code` (unique per plane, assigned at wiring
    /// time) is baked into the high byte of every id minted here, so span
    /// and trace ids never collide across planes. Starts disabled unless
    /// `enabled`.
    pub fn new(plane: &'static str, code: u8, capacity: usize, enabled: bool) -> Self {
        TraceBuffer {
            plane,
            code,
            enabled: AtomicBool::new(enabled),
            next: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                spans: Vec::new(),
                head: 0,
                pushed: 0,
                cap: capacity.max(1),
            }),
        }
    }

    /// A disabled buffer (the default inside every plane obs struct).
    pub fn disabled(plane: &'static str, code: u8) -> Self {
        Self::new(plane, code, 1024, false)
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording (callable through `&self` — the switch is atomic).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The plane name ids minted here are tagged with.
    pub fn plane(&self) -> &'static str {
        self.plane
    }

    /// Mint a fresh id: plane code in the high byte, counter below.
    #[inline]
    fn mint(&self) -> u64 {
        let n = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        ((self.code as u64) << 56) | (n & 0x00ff_ffff_ffff_ffff)
    }

    // analyze:hot-path-begin(trace-record)
    // Trace recording sits on validate paths (broker validate, mesh
    // fail-closed checks): no panics, no indexing, no allocation beyond
    // the ring's steady state.

    /// Open a new trace: mints a trace id and its root span. NOOP when
    /// disabled.
    #[inline]
    pub fn root(&self, name: &'static str, at: SimTime) -> TraceToken {
        if !self.enabled() {
            return TraceToken::NOOP;
        }
        TraceToken {
            trace: self.mint(),
            span: self.mint(),
            parent: 0,
            name,
            start: at,
        }
    }

    /// Open a child span under `parent`. NOOP when disabled or when the
    /// parent context carries no trace (quiet upstream plane).
    #[inline]
    pub fn start(&self, parent: TraceCtx, name: &'static str, at: SimTime) -> TraceToken {
        if !self.enabled() || parent.is_none() {
            return TraceToken::NOOP;
        }
        TraceToken {
            trace: parent.trace,
            span: self.mint(),
            parent: parent.parent,
            name,
            start: at,
        }
    }

    /// Close an open span, landing it in the ring. Free for NOOP tokens.
    #[inline]
    pub fn finish(&self, tok: TraceToken, end: SimTime) {
        self.finish_with(tok, end, 0);
    }

    /// [`finish`](Self::finish) with a detail word.
    #[inline]
    pub fn finish_with(&self, tok: TraceToken, end: SimTime, detail: u64) {
        if tok.trace == 0 {
            return;
        }
        let end = if end < tok.start { tok.start } else { end };
        self.push(TraceSpan {
            trace: tok.trace,
            span: tok.span,
            parent: tok.parent,
            name: tok.name,
            plane: self.plane,
            start: tok.start,
            end,
            detail,
        });
    }

    /// Record a point span (start == end) under `parent` and return the
    /// context its children should carry. [`TraceCtx::NONE`] when disabled
    /// or the parent carries no trace.
    #[inline]
    pub fn hit(&self, parent: TraceCtx, name: &'static str, at: SimTime, detail: u64) -> TraceCtx {
        if !self.enabled() || parent.is_none() {
            return TraceCtx::NONE;
        }
        let span = self.mint();
        self.push(TraceSpan {
            trace: parent.trace,
            span,
            parent: parent.parent,
            name,
            plane: self.plane,
            start: at,
            end: at,
            detail,
        });
        TraceCtx {
            trace: parent.trace,
            parent: span,
        }
    }

    /// Append one completed span, overwriting the oldest past capacity.
    fn push(&self, span: TraceSpan) {
        let mut r = self.ring.lock();
        if r.spans.len() < r.cap {
            r.spans.push(span);
        } else {
            let h = r.head;
            if let Some(slot) = r.spans.get_mut(h) {
                *slot = span;
            }
            r.head = (r.head + 1) % r.cap;
        }
        r.pushed += 1;
    }
    // analyze:hot-path-end

    /// Spans ever recorded (including those the ring has since dropped).
    pub fn pushed(&self) -> u64 {
        self.ring.lock().pushed
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> Vec<TraceSpan> {
        let r = self.ring.lock();
        let mut out = Vec::with_capacity(r.spans.len());
        out.extend_from_slice(&r.spans[r.head..]);
        out.extend_from_slice(&r.spans[..r.head]);
        out
    }

    /// Retained spans of one trace, oldest first.
    pub fn spans_for(&self, trace: u64) -> Vec<TraceSpan> {
        self.spans()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect()
    }

    /// Drop retained spans (the mint and pushed total keep counting).
    pub fn clear(&self) {
        let mut r = self.ring.lock();
        r.spans.clear();
        r.head = 0;
    }

    /// Render the retained spans as a JSON array (hand-rolled — the
    /// workspace has no serde).
    pub fn dump_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.spans().iter().enumerate() {
            let _ = write!(
                out,
                "{}\n  {{ \"trace\": {}, \"span\": {}, \"parent\": {}, \"name\": \"{}\", \
                 \"plane\": \"{}\", \"start_us\": {}, \"end_us\": {}, \"detail\": {} }}",
                if i == 0 { "" } else { "," },
                s.trace,
                s.span,
                s.parent,
                s.name,
                s.plane,
                s.start.as_micros(),
                s.end.as_micros(),
                s.detail
            );
        }
        out.push_str("\n]");
        out
    }
}

impl Clone for TraceBuffer {
    fn clone(&self) -> Self {
        let r = self.ring.lock();
        TraceBuffer {
            plane: self.plane,
            code: self.code,
            enabled: AtomicBool::new(self.enabled()),
            next: AtomicU64::new(self.next.load(Ordering::Relaxed)),
            ring: Mutex::new(Ring {
                spans: r.spans.clone(),
                head: r.head,
                pushed: r.pushed,
                cap: r.cap,
            }),
        }
    }
}

impl fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("plane", &self.plane)
            .field("code", &self.code)
            .field("enabled", &self.enabled())
            .field("pushed", &self.ring.lock().pushed)
            .finish()
    }
}

/// Merge spans of one trace from several planes' dumps, ordered by
/// (start, span id) — the shape [`render_trace`] and the well-formedness
/// checks consume.
pub fn assemble_trace(trace: u64, plane_spans: &[Vec<TraceSpan>]) -> Vec<TraceSpan> {
    let mut all: Vec<TraceSpan> = plane_spans
        .iter()
        .flat_map(|v| v.iter().copied())
        .filter(|s| s.trace == trace)
        .collect();
    all.sort_by_key(|s| (s.start, s.span));
    all
}

/// Structural check of one assembled trace: exactly one root, every
/// non-root parent resolves to a recorded span, and no child starts before
/// its parent. Returns a human-readable defect description on failure.
pub fn check_well_formed(spans: &[TraceSpan]) -> Result<(), String> {
    if spans.is_empty() {
        return Err("trace has no spans".into());
    }
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
    let mut roots = 0usize;
    for s in spans {
        if s.parent == 0 {
            roots += 1;
        } else if !ids.contains(&s.parent) {
            return Err(format!(
                "span {} ({}) has orphan parent {}",
                s.span, s.name, s.parent
            ));
        } else {
            let parent = spans.iter().find(|p| p.span == s.parent);
            if let Some(p) = parent {
                if s.start < p.start {
                    return Err(format!(
                        "span {} ({}) starts at {} before its parent {} ({}) at {}",
                        s.span, s.name, s.start, p.span, p.name, p.start
                    ));
                }
            }
        }
        if s.end < s.start {
            return Err(format!(
                "span {} ({}) ends before it starts",
                s.span, s.name
            ));
        }
    }
    if roots != 1 {
        return Err(format!("trace has {roots} roots (want exactly 1)"));
    }
    Ok(())
}

/// Render one assembled trace as an indented tree keyed by parentage,
/// oldest child first. Orphans (parent fell off a ring) are rendered as
/// additional top-level entries, marked.
pub fn render_trace(trace: u64, spans: &[TraceSpan]) -> String {
    let mut spans: Vec<TraceSpan> = spans.iter().copied().filter(|s| s.trace == trace).collect();
    spans.sort_by_key(|s| (s.start, s.span));
    let mut out = String::new();
    if spans.is_empty() {
        let _ = writeln!(out, "trace {trace:#x}: no spans");
        return out;
    }
    let t0 = spans.iter().map(|s| s.start).min().unwrap_or(SimTime::ZERO);
    let t1 = spans.iter().map(|s| s.end).max().unwrap_or(SimTime::ZERO);
    let _ = writeln!(
        out,
        "trace {trace:#x} ({} spans, {:.3}s..{:.3}s)",
        spans.len(),
        t0.as_secs_f64(),
        t1.as_secs_f64()
    );
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
    let tops: Vec<&TraceSpan> = spans
        .iter()
        .filter(|s| s.parent == 0 || !ids.contains(&s.parent))
        .collect();
    for (i, top) in tops.iter().enumerate() {
        let last = i + 1 == tops.len();
        render_node(&mut out, top, &spans, "", last, top.parent != 0);
    }
    // Wall-time distribution per span name: the tree shows one causal
    // path, the percentiles show whether that path was typical. Nearest-
    // rank percentiles over every same-named span in the trace.
    let mut by_name: std::collections::BTreeMap<&str, Vec<SimDuration>> =
        std::collections::BTreeMap::new();
    for s in &spans {
        by_name.entry(s.name).or_default().push(s.end.since(s.start));
    }
    let _ = writeln!(out, "span wall-time percentiles:");
    for (name, mut durs) in by_name {
        durs.sort();
        let pick = |q: f64| -> SimDuration {
            let n = durs.len();
            let rank = ((n as f64) * q).ceil() as usize;
            durs[rank.clamp(1, n) - 1]
        };
        let _ = writeln!(
            out,
            "  {name}  n={} p50={:.3}s p95={:.3}s max={:.3}s",
            durs.len(),
            pick(0.50).as_secs_f64(),
            pick(0.95).as_secs_f64(),
            durs.last().copied().unwrap_or(SimDuration::ZERO).as_secs_f64()
        );
    }
    out
}

fn render_node(
    out: &mut String,
    node: &TraceSpan,
    all: &[TraceSpan],
    prefix: &str,
    last: bool,
    orphan: bool,
) {
    let tee = if last { "└─" } else { "├─" };
    let dur = node.end.since(node.start);
    let _ = write!(
        out,
        "{prefix}{tee} {} [{}] t={:.3}s",
        node.name,
        node.plane,
        node.start.as_secs_f64()
    );
    if !dur.is_zero() {
        let _ = write!(out, " +{:.3}s", dur.as_secs_f64());
    }
    if node.detail != 0 {
        let _ = write!(out, " detail={}", node.detail);
    }
    if orphan {
        let _ = write!(out, " (orphan: parent {} not retained)", node.parent);
    }
    out.push('\n');
    let children: Vec<&TraceSpan> = all.iter().filter(|s| s.parent == node.span).collect();
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    for (i, c) in children.iter().enumerate() {
        render_node(out, c, all, &child_prefix, i + 1 == children.len(), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let tb = TraceBuffer::disabled("test", 1);
        let tok = tb.root("a.b.c", t(1));
        assert!(!tok.is_live());
        tb.finish(tok, t(2));
        assert_eq!(tb.hit(tok.ctx(), "a.b.d", t(2), 0), TraceCtx::NONE);
        assert_eq!(tb.pushed(), 0);
        assert!(tb.spans().is_empty());
    }

    #[test]
    fn spans_chain_across_buffers() {
        let a = TraceBuffer::new("alpha", 1, 64, true);
        let b = TraceBuffer::new("beta", 2, 64, true);
        let root = a.root("alpha.op.begin", t(1));
        assert!(root.is_live());
        let c1 = b.hit(root.ctx(), "beta.op.step", t(2), 7);
        assert!(!c1.is_none());
        let c2 = b.hit(c1, "beta.op.deep", t(3), 0);
        assert!(!c2.is_none());
        a.finish(root, t(4));
        let spans = assemble_trace(root.ctx().trace, &[a.spans(), b.spans()]);
        assert_eq!(spans.len(), 3);
        check_well_formed(&spans).unwrap();
        let tree = render_trace(root.ctx().trace, &spans);
        assert!(tree.contains("alpha.op.begin"), "{tree}");
        assert!(tree.contains("beta.op.deep"), "{tree}");
    }

    #[test]
    fn render_trace_reports_span_percentiles() {
        // Hand-built trace: one root and ten same-named children with
        // wall times 1s..=10s, so the nearest-rank percentiles are exact:
        // p50 = 5s (rank ⌈0.5·10⌉ = 5), p95 = 10s (rank ⌈9.5⌉ = 10).
        let mk = |span, parent, name, start: u64, end: u64| TraceSpan {
            trace: 1,
            span,
            parent,
            name,
            plane: "p",
            start: t(start),
            end: t(end),
            detail: 0,
        };
        let mut spans = vec![mk(1, 0, "p.op.root", 0, 40)];
        for i in 1..=10u64 {
            spans.push(mk(1 + i, 1, "p.op.step", i, 2 * i));
        }
        check_well_formed(&spans).unwrap();
        let tree = render_trace(1, &spans);
        assert!(tree.contains("span wall-time percentiles:"), "{tree}");
        assert!(
            tree.contains("p.op.step  n=10 p50=5.000s p95=10.000s max=10.000s"),
            "{tree}"
        );
        assert!(
            tree.contains("p.op.root  n=1 p50=40.000s p95=40.000s max=40.000s"),
            "{tree}"
        );
    }

    #[test]
    fn ids_do_not_collide_across_planes() {
        let a = TraceBuffer::new("alpha", 1, 8, true);
        let b = TraceBuffer::new("beta", 2, 8, true);
        let ra = a.root("a.b.c", t(0));
        let rb = b.root("d.e.f", t(0));
        assert_ne!(ra.ctx().trace, rb.ctx().trace);
        assert_ne!(ra.span, rb.span);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let tb = TraceBuffer::new("test", 1, 4, true);
        for i in 0..10u64 {
            let tok = tb.root("x.y.z", t(i));
            tb.finish_with(tok, t(i), i);
        }
        assert_eq!(tb.pushed(), 10);
        let spans = tb.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].detail, 6, "oldest retained is #6");
        assert_eq!(spans[3].detail, 9);
    }

    #[test]
    fn well_formedness_catches_defects() {
        let mk = |span, parent, start: u64| TraceSpan {
            trace: 1,
            span,
            parent,
            name: "a.b.c",
            plane: "p",
            start: t(start),
            end: t(start),
            detail: 0,
        };
        // Two roots.
        assert!(check_well_formed(&[mk(1, 0, 0), mk(2, 0, 1)]).is_err());
        // Orphan parent.
        assert!(check_well_formed(&[mk(1, 0, 0), mk(2, 99, 1)]).is_err());
        // Child before parent.
        assert!(check_well_formed(&[mk(2, 0, 5), mk(3, 2, 1)]).is_err());
        // Clean chain.
        check_well_formed(&[mk(1, 0, 0), mk(2, 1, 1), mk(3, 2, 2)]).unwrap();
    }

    #[test]
    fn quiet_parent_makes_children_free() {
        let tb = TraceBuffer::new("test", 1, 8, true);
        let ctx = tb.hit(TraceCtx::NONE, "a.b.c", t(0), 0);
        assert!(ctx.is_none());
        assert_eq!(tb.pushed(), 0);
    }

    #[test]
    fn dump_json_shape() {
        let tb = TraceBuffer::new("test", 1, 8, true);
        let tok = tb.root("x.y.z", t(1));
        tb.finish_with(tok, t(2), 5);
        let json = tb.dump_json();
        assert!(json.contains("\"name\": \"x.y.z\""), "{json}");
        assert!(json.contains("\"detail\": 5"), "{json}");
    }
}
