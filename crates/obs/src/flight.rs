//! The flight recorder: a fixed-capacity ring of sim-time-stamped events.
//!
//! Each plane pushes structured [`FlightEvent`]s (job transitions, audit
//! hits, staleness edges, preemption decisions) as it runs; the ring keeps
//! the most recent `capacity` of them. When a property test or experiment
//! assertion fails, the tail is rendered next to the mismatch so the
//! forensics arrive with the failure instead of requiring a re-run.

use eus_simcore::SimTime;
use std::fmt::Write as _;

/// One structured event. Payload fields `a`/`b`/`c` are plane-defined
/// (job id, node id, lag microseconds, …) — keeping them as raw `u64`s
/// lets every plane share one recorder type without `obs` depending on
/// domain crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number (total pushes when this event landed).
    pub seq: u64,
    /// Simulation time of the event.
    pub at: SimTime,
    /// Static event kind, e.g. `"job.start"`, `"preempt.kill"`.
    pub kind: &'static str,
    /// First payload word (plane-defined).
    pub a: u64,
    /// Second payload word (plane-defined).
    pub b: u64,
    /// Third payload word (plane-defined).
    pub c: u64,
}

/// Fixed-capacity ring buffer of [`FlightEvent`]s. Oldest events are
/// overwritten once `capacity` is exceeded; `seq` stays monotone so
/// wrap-around is detectable from the dump.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<FlightEvent>,
    capacity: usize,
    /// Index of the oldest retained event in `buf` (ring head).
    head: usize,
    /// Total events ever pushed (≥ retained count).
    pushed: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            buf: Vec::new(),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Retained event count (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed, including overwritten ones.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, at: SimTime, kind: &'static str, a: u64, b: u64, c: u64) {
        let ev = FlightEvent {
            seq: self.pushed,
            at,
            kind,
            a,
            b,
            c,
        };
        self.pushed += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Drop every retained event (sequence numbering continues).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        for i in 0..self.buf.len() {
            out.push(self.buf[(self.head + i) % self.buf.len().max(1)]);
        }
        out
    }

    /// The last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let evs = self.events();
        let skip = evs.len().saturating_sub(n);
        evs[skip..].to_vec()
    }

    /// Render the last `n` events as indented lines — the shape printed
    /// under a failing property so the mismatch ships with its forensics.
    pub fn render_tail(&self, label: &str, n: usize) -> String {
        let evs = self.tail(n);
        let mut out = format!(
            "--- flight recorder [{}]: last {} of {} events (cap {}) ---\n",
            label,
            evs.len(),
            self.pushed,
            self.capacity
        );
        if evs.is_empty() {
            out.push_str("  (empty)\n");
        }
        for ev in evs {
            let _ = writeln!(
                out,
                "  #{:<6} t={:>12.3}s  {:<24} a={} b={} c={}",
                ev.seq,
                ev.at.as_secs_f64(),
                ev.kind,
                ev.a,
                ev.b,
                ev.c
            );
        }
        out
    }

    /// Dump every retained event as a JSON array (hand-rolled; kinds are
    /// static identifiers so no string escaping is needed).
    pub fn dump_json(&self) -> String {
        let mut out = String::from("[");
        for (i, ev) in self.events().iter().enumerate() {
            let _ = write!(
                out,
                "{}\n  {{ \"seq\": {}, \"t\": {:.6}, \"kind\": \"{}\", \"a\": {}, \"b\": {}, \"c\": {} }}",
                if i == 0 { "" } else { "," },
                ev.seq,
                ev.at.as_secs_f64(),
                ev.kind,
                ev.a,
                ev.b,
                ev.c
            );
        }
        out.push_str("\n]");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn retains_in_order_before_wrap() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..5u64 {
            fr.push(t(i), "ev", i, 0, 0);
        }
        let evs = fr.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(fr.pushed(), 5);
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.a, i as u64);
        }
    }

    #[test]
    fn wrap_around_keeps_newest_and_stays_ordered() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..11u64 {
            fr.push(t(i), "ev", i, 0, 0);
        }
        assert_eq!(fr.pushed(), 11);
        assert_eq!(fr.len(), 4);
        let evs = fr.events();
        // Oldest retained is seq 7; newest is seq 10; strictly ordered.
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert!(evs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert!(evs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn tail_returns_last_n_oldest_first() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..6u64 {
            fr.push(t(i), "ev", i, 0, 0);
        }
        let tail = fr.tail(2);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
        // Asking for more than retained yields everything retained.
        assert_eq!(fr.tail(100).len(), 4);
    }

    #[test]
    fn render_and_dump_cover_wrapped_state() {
        let mut fr = FlightRecorder::new(2);
        fr.push(t(1), "job.start", 7, 3, 0);
        fr.push(t(2), "job.end", 7, 0, 0);
        fr.push(t(3), "preempt.kill", 9, 1, 0);
        let text = fr.render_tail("opt", 10);
        assert!(text.contains("job.end"));
        assert!(text.contains("preempt.kill"));
        assert!(!text.contains("job.start")); // overwritten
        assert!(text.contains("last 2 of 3 events"));
        let json = fr.dump_json();
        assert!(json.contains("\"kind\": \"preempt.kill\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let mut fr = FlightRecorder::new(4);
        fr.push(t(1), "a", 0, 0, 0);
        fr.push(t(2), "b", 0, 0, 0);
        fr.clear();
        assert!(fr.is_empty());
        fr.push(t(3), "c", 0, 0, 0);
        assert_eq!(fr.events()[0].seq, 2);
        assert_eq!(fr.pushed(), 3);
    }
}
