//! Lock-free stats for `&self` hot paths.
//!
//! The sharded credential broker and the CRL replicas validate tokens
//! through `&self` behind read locks — a `&mut Recorder` cannot reach
//! them. [`SharedStats`] applies the same pre-registered-handle
//! discipline over relaxed atomics: register slots up front, bump them
//! from any thread, read them out when the run settles. Relaxed ordering
//! is deliberate — these are statistical tallies, not synchronization.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Handle to a registered shared slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedId(u16);

/// A registry of relaxed atomic counters for shared-reference hot paths.
#[derive(Debug, Default)]
pub struct SharedStats {
    enabled: AtomicBool,
    names: Vec<&'static str>,
    slots: Vec<AtomicU64>,
}

impl SharedStats {
    /// A disabled registry (every bump is one relaxed load + branch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording (callable through `&self` — the switch itself is
    /// atomic).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Register (or look up) a slot by its `plane.subsystem.name`.
    /// Construction time only — takes `&mut self`.
    pub fn slot(&mut self, name: &'static str) -> SharedId {
        if let Some(i) = self.names.iter().position(|&n| n == name) {
            return SharedId(i as u16);
        }
        self.names.push(name);
        self.slots.push(AtomicU64::new(0));
        SharedId((self.names.len() - 1) as u16)
    }

    /// Add one to a slot.
    #[inline]
    pub fn incr(&self, id: SharedId) {
        if self.enabled() {
            self.slots[id.0 as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Add `n` to a slot.
    #[inline]
    pub fn add(&self, id: SharedId, n: u64) {
        if self.enabled() {
            self.slots[id.0 as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Track a maximum: raise the slot to `v` if `v` is larger.
    #[inline]
    pub fn max(&self, id: SharedId, v: u64) {
        if self.enabled() {
            self.slots[id.0 as usize].fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value of a slot.
    pub fn value(&self, id: SharedId) -> u64 {
        self.slots[id.0 as usize].load(Ordering::Relaxed)
    }

    /// Every `(name, value)` pair, in registration order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.names
            .iter()
            .zip(&self.slots)
            .map(|(&n, v)| (n, v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Sum of all slot values (a cheap ops estimate for overhead bounds).
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|v| v.load(Ordering::Relaxed)).sum()
    }
}

impl Clone for SharedStats {
    fn clone(&self) -> Self {
        SharedStats {
            enabled: AtomicBool::new(self.enabled()),
            names: self.names.clone(),
            slots: self
                .slots
                .iter()
                .map(|v| AtomicU64::new(v.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggles_through_shared_ref() {
        let mut s = SharedStats::new();
        let id = s.slot("cred.broker.validate");
        s.incr(id);
        assert_eq!(s.value(id), 0);
        s.set_enabled(true);
        s.incr(id);
        s.add(id, 2);
        assert_eq!(s.value(id), 3);
        assert_eq!(s.total(), 3);
        s.set_enabled(false);
        s.incr(id);
        assert_eq!(s.value(id), 3);
    }

    #[test]
    fn max_and_snapshot() {
        let mut s = SharedStats::new();
        let a = s.slot("a");
        let b = s.slot("b");
        s.set_enabled(true);
        s.max(a, 5);
        s.max(a, 3);
        s.incr(b);
        assert_eq!(s.snapshot(), vec![("a", 5), ("b", 1)]);
        // Registration dedups.
        assert_eq!(s.slot("a"), a);
    }

    #[test]
    fn bumps_from_many_threads() {
        let mut s = SharedStats::new();
        let id = s.slot("hot");
        s.set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.incr(id);
                    }
                });
            }
        });
        assert_eq!(s.value(id), 4000);
    }
}
