//! The metrics registry: pre-registered integer handles over flat arrays.
//!
//! Registration happens once, at plane construction, by dotted
//! `plane.subsystem.name` strings; recording happens through the returned
//! handle — an index into a `Vec` — so the hot path never hashes, never
//! allocates, and never compares a string. Every record call is guarded by
//! one `enabled` branch; a disabled recorder is a never-taken jump.

use crate::flight::FlightRecorder;
use crate::timeseries::TsRing;
use crate::ObsConfig;
use eus_simcore::{Histogram, SimDuration, SimTime, Summary};
use std::fmt::Write as _;
use std::time::Instant;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u16);

/// Handle to a registered gauge (a signed level, not a monotone count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u16);

/// Handle to a registered span (a named phase with wall-time statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u16);

/// Handle to a time-series ring tracking a counter or gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsId(u16);

/// What a tracked ring samples at each tick.
#[derive(Debug, Clone, Copy)]
enum TrackSource {
    /// The counter's delta since the previous tick (windowed rate).
    Counter(u16),
    /// The gauge's current level.
    Gauge(u16),
}

/// One tracked time-series: a ring fed by boundary samples of a handle.
#[derive(Debug, Clone)]
struct Tracked {
    source: TrackSource,
    ring: TsRing,
    last: u64,
}

/// An in-flight span: the wall-clock instant it opened, or `None` when the
/// recorder was disabled at open time (the matching
/// [`Recorder::span_end`] is then free).
#[derive(Debug, Clone, Copy)]
#[must_use = "a span token does nothing unless passed to span_end"]
pub struct SpanToken(Option<Instant>);

impl SpanToken {
    /// A token that records nothing (the disabled path).
    pub const NOOP: SpanToken = SpanToken(None);
}

/// Accumulated statistics for one span.
#[derive(Debug, Clone)]
pub struct SpanStats {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall nanoseconds across entries (exact, not sampled).
    pub total_ns: u64,
    /// Reservoir histogram of per-entry wall nanoseconds.
    pub wall_ns: Histogram,
    /// Reservoir histogram of values recorded via [`Recorder::observe`]
    /// (sim-time durations, sizes — whatever the span's unit is).
    pub values: Histogram,
}

/// The registry + storage for one plane's metrics and flight recorder.
#[derive(Debug, Clone)]
pub struct Recorder {
    enabled: bool,
    reservoir: usize,
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<i64>,
    span_names: Vec<&'static str>,
    spans: Vec<SpanStats>,
    tracked: Vec<Tracked>,
    /// The structured event ring. Public: dump/tail access is part of the
    /// plane's API surface.
    pub flight: FlightRecorder,
}

impl Recorder {
    /// A recorder under `cfg`. Register every handle up front, then hand
    /// the recorder to the hot path.
    pub fn new(cfg: &ObsConfig) -> Self {
        Recorder {
            enabled: cfg.enabled,
            reservoir: cfg.reservoir,
            counter_names: Vec::new(),
            counters: Vec::new(),
            gauge_names: Vec::new(),
            gauges: Vec::new(),
            span_names: Vec::new(),
            spans: Vec::new(),
            tracked: Vec::new(),
            flight: FlightRecorder::new(cfg.flight_capacity),
        }
    }

    /// A disabled recorder (every record call is one never-taken branch).
    pub fn disabled() -> Self {
        Self::new(&ObsConfig::default())
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Flip recording. Turning it on mid-run starts from the standing
    /// (usually zero) state; turning it off freezes it.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    // ------------------------------------------------------------------
    // Registration (construction time, never the hot path)
    // ------------------------------------------------------------------

    /// Register (or look up) a counter by its `plane.subsystem.name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|&n| n == name) {
            return CounterId(i as u16);
        }
        self.counter_names.push(name);
        self.counters.push(0);
        CounterId((self.counter_names.len() - 1) as u16)
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|&n| n == name) {
            return GaugeId(i as u16);
        }
        self.gauge_names.push(name);
        self.gauges.push(0);
        GaugeId((self.gauge_names.len() - 1) as u16)
    }

    /// Register (or look up) a span by name.
    pub fn span(&mut self, name: &'static str) -> SpanId {
        if let Some(i) = self.span_names.iter().position(|&n| n == name) {
            return SpanId(i as u16);
        }
        self.span_names.push(name);
        self.spans.push(SpanStats {
            count: 0,
            total_ns: 0,
            wall_ns: Histogram::with_reservoir(self.reservoir),
            values: Histogram::with_reservoir(self.reservoir),
        });
        SpanId((self.span_names.len() - 1) as u16)
    }

    /// Attach a time-series ring to a counter: each [`ts_tick`](Self::ts_tick)
    /// samples the counter's *delta* since the previous tick into a
    /// `bucket`-wide ring of `capacity` buckets, giving windowed rates
    /// without touching the counter's hot record path. Construction time
    /// only.
    pub fn track_counter(&mut self, id: CounterId, bucket: SimDuration, capacity: usize) -> TsId {
        self.tracked.push(Tracked {
            source: TrackSource::Counter(id.0),
            ring: TsRing::new(bucket, capacity),
            last: 0,
        });
        TsId((self.tracked.len() - 1) as u16)
    }

    /// Attach a time-series ring to a gauge: each tick samples the gauge's
    /// current *level* (clamped at 0). Construction time only.
    pub fn track_gauge(&mut self, id: GaugeId, bucket: SimDuration, capacity: usize) -> TsId {
        self.tracked.push(Tracked {
            source: TrackSource::Gauge(id.0),
            ring: TsRing::new(bucket, capacity),
            last: 0,
        });
        TsId((self.tracked.len() - 1) as u16)
    }

    /// Sample every tracked handle into its ring at sim time `at`. Called
    /// at pump/cycle boundaries — never from a record site — so tracking
    /// adds zero work to the hot path.
    pub fn ts_tick(&mut self, at: SimTime) {
        if !self.enabled {
            return;
        }
        for t in &mut self.tracked {
            match t.source {
                TrackSource::Counter(i) => {
                    let now = self.counters.get(i as usize).copied().unwrap_or(0);
                    let delta = now.saturating_sub(t.last);
                    t.last = now;
                    if delta > 0 {
                        t.ring.record(at, delta as f64);
                    }
                }
                TrackSource::Gauge(i) => {
                    let level = self.gauges.get(i as usize).copied().unwrap_or(0).max(0);
                    t.ring.record(at, level as f64);
                }
            }
        }
    }

    /// The ring behind a tracked handle (windowed reads for SLOs/reports).
    pub fn ts(&self, id: TsId) -> Option<&TsRing> {
        self.tracked.get(id.0 as usize).map(|t| &t.ring)
    }

    // ------------------------------------------------------------------
    // Recording (the hot path: one branch + one indexed write)
    // ------------------------------------------------------------------

    /// Add one to a counter.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        if self.enabled {
            self.counters[id.0 as usize] += 1;
        }
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0 as usize] += n;
        }
    }

    /// Adjust a gauge by `delta`.
    #[inline]
    pub fn gauge_add(&mut self, id: GaugeId, delta: i64) {
        if self.enabled {
            self.gauges[id.0 as usize] += delta;
        }
    }

    /// Set a gauge to `v`.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, v: i64) {
        if self.enabled {
            self.gauges[id.0 as usize] = v;
        }
    }

    /// Open a span: captures the wall clock only when enabled.
    #[inline]
    pub fn span_start(&self) -> SpanToken {
        if self.enabled {
            SpanToken(Some(Instant::now()))
        } else {
            SpanToken(None)
        }
    }

    /// Close a span opened by [`span_start`](Self::span_start), folding
    /// the elapsed wall time into `id`'s statistics. Free when the token
    /// was taken disabled.
    #[inline]
    pub fn span_end(&mut self, id: SpanId, token: SpanToken) {
        if let Some(t0) = token.0 {
            let ns = t0.elapsed().as_nanos() as u64;
            let s = &mut self.spans[id.0 as usize];
            s.count += 1;
            s.total_ns += ns;
            s.wall_ns.record(ns as f64);
        }
    }

    /// Record a value observation (sim-time seconds, bytes, lag — the
    /// span's own unit) into `id`'s value histogram.
    #[inline]
    pub fn observe(&mut self, id: SpanId, v: f64) {
        if self.enabled {
            let s = &mut self.spans[id.0 as usize];
            s.values.record(v);
        }
    }

    /// Append a structured event to the flight recorder.
    #[inline]
    pub fn event(&mut self, at: SimTime, kind: &'static str, a: u64, b: u64, c: u64) {
        if self.enabled {
            self.flight.push(at, kind, a, b, c);
        }
    }

    // ------------------------------------------------------------------
    // Read-out
    // ------------------------------------------------------------------

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0 as usize]
    }

    /// Statistics for a span.
    pub fn span_stats(&self, id: SpanId) -> &SpanStats {
        &self.spans[id.0 as usize]
    }

    /// Ratio `num / (num + den)`, the shape every hit-ratio derives from;
    /// 0 when both are zero.
    pub fn hit_ratio(&self, num: CounterId, den: CounterId) -> f64 {
        let n = self.counter_value(num) as f64;
        let d = self.counter_value(den) as f64;
        if n + d == 0.0 {
            0.0
        } else {
            n / (n + d)
        }
    }

    /// Total record operations performed (counter bumps are not tracked
    /// individually; this is the sum of counter values + 1 per span entry
    /// — the operation count `exp_obs_overhead` multiplies by the
    /// per-operation disabled cost to bound the disabled-path overhead).
    pub fn ops_estimate(&self) -> u64 {
        let c: u64 = self.counters.iter().sum();
        let s: u64 = self.spans.iter().map(|s| s.count).sum();
        let v: u64 = self
            .spans
            .iter()
            .map(|s| s.values.len() as u64)
            .sum::<u64>();
        c + 2 * s + v + self.flight.pushed()
    }

    /// Point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            counters: self
                .counter_names
                .iter()
                .zip(&self.counters)
                .map(|(&n, &v)| (n, v))
                .collect(),
            gauges: self
                .gauge_names
                .iter()
                .zip(&self.gauges)
                .map(|(&n, &v)| (n, v))
                .collect(),
            spans: self
                .span_names
                .iter()
                .zip(&self.spans)
                .map(|(&n, s)| SpanRow {
                    name: n,
                    count: s.count,
                    total_ns: s.total_ns,
                    wall_ns: s.wall_ns.summary(),
                    values: s.values.summary(),
                })
                .collect(),
        }
    }
}

/// One span's row in a snapshot.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Registered name.
    pub name: &'static str,
    /// Entry count.
    pub count: u64,
    /// Exact total wall nanoseconds.
    pub total_ns: u64,
    /// Wall-time distribution (reservoir), if any entries were recorded.
    pub wall_ns: Option<Summary>,
    /// Value distribution, if any observations were recorded.
    pub values: Option<Summary>,
}

/// A point-in-time, JSON-renderable snapshot of a [`Recorder`].
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(&'static str, i64)>,
    /// Span rows.
    pub spans: Vec<SpanRow>,
}

impl ObsSnapshot {
    /// Value of a counter by name (0 when unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Span row by name.
    pub fn span(&self, name: &str) -> Option<&SpanRow> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Render as a JSON object (hand-rolled — the workspace has no serde;
    /// the shape is `{ "counters": {..}, "gauges": {..}, "spans": {..} }`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{}\": {}",
                if i == 0 { "" } else { "," },
                n,
                v
            );
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{}\": {}",
                if i == 0 { "" } else { "," },
                n,
                v
            );
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{}\": {{ \"count\": {}, \"total_ns\": {}",
                if i == 0 { "" } else { "," },
                s.name,
                s.count,
                s.total_ns
            );
            if let Some(w) = &s.wall_ns {
                let _ = write!(
                    out,
                    ", \"wall_ns\": {{ \"mean\": {:.1}, \"p50\": {:.1}, \"p99\": {:.1}, \"max\": {:.1} }}",
                    w.mean, w.p50, w.p99, w.max
                );
            }
            if let Some(v) = &s.values {
                let _ = write!(
                    out,
                    ", \"values\": {{ \"count\": {}, \"mean\": {:.3}, \"p99\": {:.3}, \"max\": {:.3} }}",
                    v.count, v.mean, v.p99, v.max
                );
            }
            out.push_str(" }");
        }
        out.push_str("\n  }\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        let c = r.counter("a.b.c");
        let sp = r.span("a.b.span");
        r.incr(c);
        r.add(c, 10);
        let t = r.span_start();
        r.span_end(sp, t);
        r.observe(sp, 1.0);
        r.event(SimTime::ZERO, "ev", 1, 2, 3);
        assert_eq!(r.counter_value(c), 0);
        assert_eq!(r.span_stats(sp).count, 0);
        assert_eq!(r.flight.len(), 0);
        assert_eq!(r.ops_estimate(), 0);
    }

    #[test]
    fn enabled_recorder_accumulates() {
        let mut r = Recorder::new(&ObsConfig::enabled());
        let c = r.counter("x.y.count");
        let sp = r.span("x.y.phase");
        r.incr(c);
        r.add(c, 4);
        let t = r.span_start();
        r.span_end(sp, t);
        r.observe(sp, 2.5);
        assert_eq!(r.counter_value(c), 5);
        let s = r.span_stats(sp);
        assert_eq!(s.count, 1);
        assert_eq!(s.values.len(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x.y.count"), 5);
        assert_eq!(snap.span("x.y.phase").unwrap().count, 1);
        assert!(snap.to_json().contains("\"x.y.count\": 5"));
    }

    #[test]
    fn registration_dedups_by_name() {
        let mut r = Recorder::new(&ObsConfig::enabled());
        let a = r.counter("same.name");
        let b = r.counter("same.name");
        assert_eq!(a, b);
        let s1 = r.span("same.span");
        let s2 = r.span("same.span");
        assert_eq!(s1, s2);
    }

    #[test]
    fn tracked_counter_samples_deltas_at_ticks() {
        let mut r = Recorder::new(&ObsConfig::enabled());
        let c = r.counter("m.evt.count");
        let ts = r.track_counter(c, SimDuration::from_secs(10), 8);
        r.add(c, 3);
        r.ts_tick(SimTime::from_secs(10));
        r.add(c, 5);
        r.ts_tick(SimTime::from_secs(20));
        let ring = r.ts(ts).unwrap();
        let w = ring.window(SimTime::from_secs(20), 2);
        assert_eq!(w.count, 2);
        assert_eq!(w.sum, 8.0);
        assert_eq!(w.max, 5.0);
        // A tick with no movement records nothing.
        r.ts_tick(SimTime::from_secs(30));
        assert_eq!(r.ts(ts).unwrap().window(SimTime::from_secs(30), 1).count, 0);
    }

    #[test]
    fn tracked_gauge_samples_levels() {
        let mut r = Recorder::new(&ObsConfig::enabled());
        let g = r.gauge("m.occ.level");
        let ts = r.track_gauge(g, SimDuration::from_secs(10), 8);
        r.gauge_set(g, 7);
        r.ts_tick(SimTime::from_secs(10));
        r.gauge_set(g, 4);
        r.ts_tick(SimTime::from_secs(20));
        let w = r.ts(ts).unwrap().window(SimTime::from_secs(20), 2);
        assert_eq!(w.count, 2);
        assert_eq!(w.max, 7.0);
    }

    #[test]
    fn disabled_tick_is_free() {
        let mut r = Recorder::disabled();
        let c = r.counter("m.evt.count");
        let ts = r.track_counter(c, SimDuration::from_secs(10), 8);
        r.ts_tick(SimTime::from_secs(10));
        assert_eq!(r.ts(ts).unwrap().window(SimTime::from_secs(10), 8).count, 0);
    }

    #[test]
    fn hit_ratio_derives() {
        let mut r = Recorder::new(&ObsConfig::enabled());
        let hit = r.counter("m.hit");
        let miss = r.counter("m.miss");
        assert_eq!(r.hit_ratio(hit, miss), 0.0);
        r.add(hit, 3);
        r.add(miss, 1);
        assert!((r.hit_ratio(hit, miss) - 0.75).abs() < 1e-12);
    }
}
