//! # eus-obs — zero-overhead observability for the separation planes
//!
//! The paper's evaluation hinges on *attributing* overhead to individual
//! mechanisms, yet timing whole experiments only says "the scheduler got
//! slower", never *which cycle phase* burned the time. This crate is the
//! workspace-wide answer, built around one discipline: **instrumentation
//! that is native to the hot path must cost nothing when it is off and a
//! bounds-checked array write when it is on.** Three pillars:
//!
//! * [`Recorder`] — a metrics registry of **pre-registered integer
//!   handles** ([`CounterId`], [`GaugeId`], [`SpanId`]). Registration (by
//!   dotted `plane.subsystem.name` strings) happens once at construction;
//!   the hot path records through the handle — an index into a flat `Vec`,
//!   no hashing, no allocation, no string compare — and the first check on
//!   every record call is a single `enabled` branch, so a disabled
//!   recorder compiles down to a predictable never-taken jump.
//! * **Phase spans** — [`Recorder::span_start`] returns a [`SpanToken`]
//!   (a wall-clock instant, or nothing when disabled);
//!   [`Recorder::span_end`] folds the elapsed nanoseconds into that span's
//!   count/total/histogram. Sim-time-valued observations (staleness lags,
//!   queue waits) go through [`Recorder::observe`] into the same reservoir
//!   histograms.
//! * [`FlightRecorder`] — a fixed-capacity ring buffer of sim-time-stamped
//!   structured events ([`FlightEvent`]): job state transitions, audit
//!   hits, replica staleness edges, preemption decisions. Dumpable as JSON
//!   on demand ([`FlightRecorder::dump_json`]) and printable as a tail
//!   ([`FlightRecorder::render_tail`]) when a property test or experiment
//!   assertion fails — replayable forensics instead of an opaque mismatch.
//!
//! `&self` hot paths that cannot take `&mut` (sharded credential
//! validation behind read locks) use [`SharedStats`] — the same
//! pre-registered-handle discipline over relaxed atomics.
//!
//! The second generation (obs v2) adds three more pillars on the same
//! discipline:
//!
//! * [`trace`] — causal cross-plane tracing: a [`TraceCtx`] minted at an
//!   entry point (portal route, `try_submit`, `PamFedAuth`, revocation
//!   API) propagates by value through the planes — and across the simnet
//!   WAN inside `CrlDelta` messages — so one trace covers portal revoke →
//!   mesh propagation → sister-replica apply → fail-closed deny. Completed
//!   spans land in per-plane [`TraceBuffer`] rings; [`render_trace`] draws
//!   the tree.
//! * [`timeseries`] — fixed-capacity sim-time-bucketed rings
//!   ([`TsRing`]) sampled from counter/gauge handles at pump/cycle
//!   boundaries ([`Recorder::ts_tick`]): windowed rates and levels with
//!   zero additional work on the record path.
//! * [`slo`] — declarative objectives ([`SloSpec`]) over those rings with
//!   multi-window burn-rate alerting ([`SloPlane::evaluate`]); alerts are
//!   flight-recorder events plus a queryable [`AlertLog`].
//!
//! [`panicdump`] closes the forensics gap: with `EUS_FLIGHT_DUMP=path`
//! set, every published plane dump is written on any panic.
//!
//! Metric names follow `plane.subsystem.name` (`sched.cycle.backfill`,
//! `cred.broker.validate`, `revsync.mesh.pump`); ARCHITECTURE.md carries
//! the full span table. `exp_obs_overhead` keeps the disabled-path cost
//! measured (<1% on the 1 h replay trace) and proves enabling the plane
//! does not perturb scheduling decisions.

#![warn(missing_docs)]

pub mod flight;
pub mod panicdump;
pub mod registry;
pub mod shared;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use flight::{FlightEvent, FlightRecorder};
pub use registry::{CounterId, GaugeId, ObsSnapshot, Recorder, SpanId, SpanStats, SpanToken, TsId};
pub use shared::{SharedId, SharedStats};
pub use slo::{Alert, AlertKind, AlertLog, SloAgg, SloId, SloPlane, SloSpec};
pub use timeseries::{TsRing, WindowAgg};
pub use trace::{
    assemble_trace, check_well_formed, render_trace, TraceBuffer, TraceCtx, TraceSpan, TraceToken,
};

/// Observability configuration: one struct, off by default, handed to each
/// plane's `enable_obs`-style entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. Off ⇒ every record call is a single never-taken
    /// branch and the flight recorder retains nothing.
    pub enabled: bool,
    /// Flight-recorder capacity (events retained before wrap-around).
    pub flight_capacity: usize,
    /// Reservoir size for span/value histograms (bounded memory under
    /// million-event storms; summaries stay exact for count/mean/min/max).
    pub reservoir: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            flight_capacity: 4096,
            reservoir: 4096,
        }
    }
}

impl ObsConfig {
    /// An enabled configuration with default capacities.
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            ..Self::default()
        }
    }

    /// Builder: set the flight-recorder capacity.
    pub fn with_flight_capacity(mut self, cap: usize) -> Self {
        self.flight_capacity = cap;
        self
    }
}
