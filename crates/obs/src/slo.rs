//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloPlane`] holds a set of named objectives ([`SloSpec`]), each
//! backed by its own [`TsRing`]. Values are recorded at pump/cycle
//! boundaries (replica lag, windowed validate latency, queue waits) and
//! [`SloPlane::evaluate`] — also called at boundaries, never on a hot
//! path — applies the classic multi-window rule: an objective *breaches*
//! only when both its short window and its long window violate the
//! target, which suppresses one-bucket blips without missing a sustained
//! burn. Alerts are edge-triggered: one [`Alert`] fires on the
//! quiet→breach transition, one clears on breach→quiet, and the
//! [`AlertLog`] keeps the full history for queries.
//!
//! SLO names follow the `plane.subsystem.name` convention and are checked
//! by `eus-analyze` (R3 name format/uniqueness, R4 against the
//! ARCHITECTURE.md SLO table) exactly like span registrations.

use crate::timeseries::TsRing;
use eus_simcore::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Handle to a registered SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloId(u16);

/// How a window of samples is reduced to the value compared against the
/// target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloAgg {
    /// Mean of recorded values over the window.
    Mean,
    /// Max of recorded values over the window.
    Max,
    /// Events per sim-second over the window.
    Rate,
}

/// One objective: the recorded value, reduced by `agg` over both windows,
/// must stay **below** `target` (objectives are phrased as budgets —
/// "p99 validate latency < 1µs", "replica lag < budget/2").
#[derive(Debug, Clone, Copy)]
pub struct SloSpec {
    /// Breach threshold (the objective is `value < target`).
    pub target: f64,
    /// Window reduction.
    pub agg: SloAgg,
    /// Short (fast-burn) window, in buckets.
    pub short_buckets: usize,
    /// Long (slow-burn) window, in buckets; both must violate to breach.
    pub long_buckets: usize,
}

/// Fired or cleared?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Quiet → breach transition.
    Fire,
    /// Breach → quiet transition.
    Clear,
}

/// One alert-log entry.
#[derive(Debug, Clone, Copy)]
pub struct Alert {
    /// Evaluation boundary that produced it.
    pub at: SimTime,
    /// SLO name.
    pub slo: &'static str,
    /// Fire or clear.
    pub kind: AlertKind,
    /// Short-window value at the boundary.
    pub value_short: f64,
    /// Long-window value at the boundary.
    pub value_long: f64,
    /// The spec's target.
    pub target: f64,
}

/// Queryable alert history.
#[derive(Debug, Clone, Default)]
pub struct AlertLog {
    entries: Vec<Alert>,
}

impl AlertLog {
    /// All entries, oldest first.
    pub fn entries(&self) -> &[Alert] {
        &self.entries
    }

    /// Entries for one SLO.
    pub fn for_slo(&self, name: &str) -> Vec<&Alert> {
        self.entries.iter().filter(|a| a.slo == name).collect()
    }

    /// Number of `Fire` entries.
    pub fn fired(&self) -> usize {
        self.entries
            .iter()
            .filter(|a| a.kind == AlertKind::Fire)
            .count()
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing ever fired or cleared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render as a JSON array.
    pub fn dump_json(&self) -> String {
        let mut out = String::from("[");
        for (i, a) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n  {{ \"t_us\": {}, \"slo\": \"{}\", \"kind\": \"{}\", \
                 \"short\": {:.3}, \"long\": {:.3}, \"target\": {:.3} }}",
                if i == 0 { "" } else { "," },
                a.at.as_micros(),
                a.slo,
                match a.kind {
                    AlertKind::Fire => "fire",
                    AlertKind::Clear => "clear",
                },
                a.value_short,
                a.value_long,
                a.target
            );
        }
        out.push_str("\n]");
        out
    }
}

/// The registry + evaluation state for one plane's objectives.
#[derive(Debug, Clone)]
pub struct SloPlane {
    enabled: bool,
    bucket: SimDuration,
    names: Vec<&'static str>,
    specs: Vec<SloSpec>,
    rings: Vec<TsRing>,
    breached: Vec<bool>,
    log: AlertLog,
}

impl SloPlane {
    /// A plane whose rings use `bucket`-wide buckets. Disabled planes
    /// record and evaluate nothing.
    pub fn new(bucket: SimDuration, enabled: bool) -> Self {
        SloPlane {
            enabled,
            bucket,
            names: Vec::new(),
            specs: Vec::new(),
            rings: Vec::new(),
            breached: Vec::new(),
            log: AlertLog::default(),
        }
    }

    /// A disabled plane (the construction default).
    pub fn disabled() -> Self {
        Self::new(SimDuration::from_secs(10), false)
    }

    /// Is evaluation on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Flip evaluation on/off (standing rings and log are kept).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Register (or look up) an objective by its `plane.subsystem.name`.
    /// Construction time only, like every obs registration.
    pub fn slo(&mut self, name: &'static str, spec: SloSpec) -> SloId {
        if let Some(i) = self.names.iter().position(|&n| n == name) {
            return SloId(i as u16);
        }
        let cap = spec.long_buckets.max(spec.short_buckets).max(1) * 2;
        self.names.push(name);
        self.rings.push(TsRing::new(self.bucket, cap));
        self.specs.push(spec);
        self.breached.push(false);
        SloId((self.names.len() - 1) as u16)
    }

    /// Re-aim a registered objective (deployment-specific budgets, e.g.
    /// `revsync.replica.lag < revsync_max_lag / 2`).
    pub fn set_target(&mut self, id: SloId, target: f64) {
        if let Some(s) = self.specs.get_mut(id.0 as usize) {
            s.target = target;
        }
    }

    /// Re-aim a registered objective's burn-rate windows at runtime, the
    /// same way [`set_target`](Self::set_target) re-aims its budget
    /// (deployment-specific alerting cadence: a chaos soak wants a slower
    /// long window than an interactive run). The backing ring grows when
    /// the new windows need more capacity — growth restarts the ring's
    /// history, so evaluation holds state until fresh samples land (the
    /// same no-data rule as any gap). Shrinking keeps the ring and its
    /// history.
    pub fn set_windows(&mut self, id: SloId, short_buckets: usize, long_buckets: usize) {
        let i = id.0 as usize;
        let Some(s) = self.specs.get_mut(i) else {
            return;
        };
        s.short_buckets = short_buckets;
        s.long_buckets = long_buckets;
        let need = long_buckets.max(short_buckets).max(1) * 2;
        if let Some(r) = self.rings.get_mut(i) {
            if r.capacity() < need {
                *r = TsRing::new(self.bucket, need);
            }
        }
    }

    /// The current spec of an objective.
    pub fn spec(&self, id: SloId) -> Option<&SloSpec> {
        self.specs.get(id.0 as usize)
    }

    /// Record one boundary sample for an objective.
    pub fn record(&mut self, id: SloId, at: SimTime, v: f64) {
        if !self.enabled {
            return;
        }
        if let Some(r) = self.rings.get_mut(id.0 as usize) {
            r.record(at, v);
        }
    }

    /// Evaluate every objective at boundary `at`; returns the alerts this
    /// boundary produced (also appended to the log). Objectives whose
    /// windows saw no samples **hold their previous state** — absence of
    /// data is evidence of nothing, and sparse event-driven objectives
    /// (queue waits land only when a job starts) would otherwise flap on
    /// every gap between samples.
    pub fn evaluate(&mut self, at: SimTime) -> Vec<Alert> {
        if !self.enabled {
            return Vec::new();
        }
        let mut fresh = Vec::new();
        for i in 0..self.names.len() {
            let (Some(spec), Some(ring)) = (self.specs.get(i), self.rings.get(i)) else {
                continue;
            };
            let short = ring.window(at, spec.short_buckets);
            let long = ring.window(at, spec.long_buckets);
            if short.count == 0 || long.count == 0 {
                continue; // no data: hold state, no edge either way
            }
            let reduce = |w: &crate::timeseries::WindowAgg| match spec.agg {
                SloAgg::Mean => w.mean(),
                SloAgg::Max => w.max,
                SloAgg::Rate => w.rate_per_sec(),
            };
            let vs = reduce(&short);
            let vl = reduce(&long);
            let violating = vs >= spec.target && vl >= spec.target;
            let was = self.breached.get(i).copied().unwrap_or(false);
            if violating != was {
                if let Some(b) = self.breached.get_mut(i) {
                    *b = violating;
                }
                let alert = Alert {
                    at,
                    slo: self.names.get(i).copied().unwrap_or("unknown"),
                    kind: if violating {
                        AlertKind::Fire
                    } else {
                        AlertKind::Clear
                    },
                    value_short: vs,
                    value_long: vl,
                    target: spec.target,
                };
                self.log.entries.push(alert);
                fresh.push(alert);
            }
        }
        fresh
    }

    /// The alert history.
    pub fn alerts(&self) -> &AlertLog {
        &self.log
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// The ring behind one objective (windowed reads for reports).
    pub fn ring(&self, id: SloId) -> Option<&TsRing> {
        self.rings.get(id.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> (SloPlane, SloId) {
        let mut p = SloPlane::new(SimDuration::from_secs(10), true);
        let id = p.slo(
            "test.metric.level",
            SloSpec {
                target: 100.0,
                agg: SloAgg::Max,
                short_buckets: 2,
                long_buckets: 6,
            },
        );
        (p, id)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn sustained_burn_fires_once_then_clears() {
        let (mut p, id) = plane();
        // Healthy for a while.
        for k in 0..6 {
            p.record(id, t(k * 10), 10.0);
            assert!(p.evaluate(t(k * 10)).is_empty());
        }
        // Sustained violation: must fire exactly once.
        let mut fires = 0;
        for k in 6..12 {
            p.record(id, t(k * 10), 500.0);
            fires += p
                .evaluate(t(k * 10))
                .iter()
                .filter(|a| a.kind == AlertKind::Fire)
                .count();
        }
        assert_eq!(fires, 1);
        assert_eq!(p.alerts().fired(), 1);
        // Recovery: clears once the short window drains.
        for k in 12..20 {
            p.record(id, t(k * 10), 5.0);
            p.evaluate(t(k * 10));
        }
        let log = p.alerts();
        assert_eq!(log.for_slo("test.metric.level").len(), 2);
        assert_eq!(log.entries().last().map(|a| a.kind), Some(AlertKind::Clear));
    }

    #[test]
    fn one_bucket_blip_does_not_fire() {
        let (mut p, id) = plane();
        for k in 0..5 {
            p.record(id, t(k * 10), 10.0);
            p.evaluate(t(k * 10));
        }
        // A single hot bucket violates the short window but not the long
        // one (long max also violates... so use mean agg for blip test).
        let mut p2 = SloPlane::new(SimDuration::from_secs(10), true);
        let id2 = p2.slo(
            "test.metric.mean",
            SloSpec {
                target: 100.0,
                agg: SloAgg::Mean,
                short_buckets: 1,
                long_buckets: 6,
            },
        );
        for k in 0..5 {
            p2.record(id2, t(k * 10), 10.0);
            p2.evaluate(t(k * 10));
        }
        p2.record(id2, t(50), 500.0); // blip: long-window mean stays low
        assert!(p2.evaluate(t(50)).is_empty());
        assert_eq!(p2.alerts().fired(), 0);
        let _ = (p, id);
    }

    #[test]
    fn empty_windows_hold_state_instead_of_clearing() {
        let (mut p, id) = plane();
        // Sustained breach, then a long gap with no samples at all.
        for k in 0..6 {
            p.record(id, t(k * 10), 500.0);
            p.evaluate(t(k * 10));
        }
        assert_eq!(p.alerts().fired(), 1);
        for k in 30..40 {
            p.evaluate(t(k * 10)); // windows empty: no Clear, no re-Fire
        }
        assert_eq!(p.alerts().len(), 1, "{:?}", p.alerts().entries());
        // A breaching sample after the gap does not re-fire either.
        p.record(id, t(400), 500.0);
        p.record(id, t(410), 500.0);
        p.evaluate(t(410));
        assert_eq!(p.alerts().fired(), 1);
        // Recovery with real samples still clears.
        for k in 42..50 {
            p.record(id, t(k * 10), 5.0);
            p.evaluate(t(k * 10));
        }
        assert_eq!(
            p.alerts().entries().last().map(|a| a.kind),
            Some(AlertKind::Clear)
        );
    }

    #[test]
    fn disabled_plane_is_inert() {
        let mut p = SloPlane::disabled();
        let id = p.slo(
            "test.metric.x",
            SloSpec {
                target: 1.0,
                agg: SloAgg::Max,
                short_buckets: 1,
                long_buckets: 1,
            },
        );
        p.record(id, t(0), 99.0);
        assert!(p.evaluate(t(0)).is_empty());
        assert!(p.alerts().is_empty());
    }

    #[test]
    fn registration_dedups_and_retargets() {
        let (mut p, id) = plane();
        let again = p.slo(
            "test.metric.level",
            SloSpec {
                target: 1.0,
                agg: SloAgg::Mean,
                short_buckets: 1,
                long_buckets: 1,
            },
        );
        assert_eq!(id, again);
        p.set_target(id, 250.0);
        assert_eq!(p.spec(id).map(|s| s.target), Some(250.0));
    }

    #[test]
    fn rewindowing_changes_burn_behavior_and_grows_the_ring() {
        let (mut p, id) = plane();
        // Shrink both windows to one bucket: a single hot sample now fires
        // immediately (no long-window suppression left).
        p.set_windows(id, 1, 1);
        assert_eq!(
            p.spec(id).map(|s| (s.short_buckets, s.long_buckets)),
            Some((1, 1))
        );
        p.record(id, t(0), 500.0);
        let alerts = p.evaluate(t(0));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Fire);

        // Widen past the original capacity: the ring grows, history
        // restarts, and state holds until fresh samples land.
        p.set_windows(id, 3, 60);
        assert!(p.ring(id).unwrap().capacity() >= 120);
        assert!(p.evaluate(t(10)).is_empty(), "no data: hold state");
        // A sustained recovery across the new windows clears.
        for k in 1..70 {
            p.record(id, t(k * 10), 5.0);
            p.evaluate(t(k * 10));
        }
        assert_eq!(
            p.alerts().entries().last().map(|a| a.kind),
            Some(AlertKind::Clear)
        );
        // Unknown ids are ignored, like set_target.
        p.set_windows(SloId(99), 1, 1);
    }

    #[test]
    fn alert_log_json() {
        let (mut p, id) = plane();
        for k in 0..8 {
            p.record(id, t(k * 10), 900.0);
            p.evaluate(t(k * 10));
        }
        assert!(p.alerts().fired() >= 1);
        let json = p.alerts().dump_json();
        assert!(json.contains("\"slo\": \"test.metric.level\""), "{json}");
        assert!(json.contains("\"kind\": \"fire\""), "{json}");
    }
}
