//! Fixed-capacity sim-time-bucketed rings: windowed rates and levels.
//!
//! A [`TsRing`] divides the sim clock into equal buckets and keeps the
//! last `capacity` of them, each holding exact (count, sum, max)
//! aggregates. Recording never allocates once the ring is at capacity,
//! and never looks at the wall clock — windows are pure sim time, so a
//! windowed rate is replay-deterministic.
//!
//! Two ways to feed one:
//!
//! * directly ([`TsRing::record`]) with a value per event, or
//! * behind an existing counter/gauge handle via
//!   [`crate::Recorder::track_counter`] / `track_gauge` +
//!   [`crate::Recorder::ts_tick`], which samples the handle's *delta*
//!   (counter) or *level* (gauge) into the ring at pump/cycle boundaries —
//!   the hot record path stays exactly one branch, the ring sees only
//!   boundary work.

use eus_simcore::{SimDuration, SimTime};
use std::fmt::Write as _;

/// One bucket's exact aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TsBucket {
    /// Observations that landed in this bucket.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
}

/// Aggregates over a trailing window of buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowAgg {
    /// Observations inside the window.
    pub count: u64,
    /// Sum of values inside the window.
    pub sum: f64,
    /// Largest value inside the window (0 when empty).
    pub max: f64,
    /// Window length in seconds of sim time.
    pub window_secs: f64,
}

impl WindowAgg {
    /// Mean value (0 when the window saw nothing).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Events per second of sim time.
    pub fn rate_per_sec(&self) -> f64 {
        if self.window_secs <= 0.0 {
            0.0
        } else {
            self.count as f64 / self.window_secs
        }
    }
}

/// A fixed-capacity ring of sim-time buckets.
#[derive(Debug, Clone)]
pub struct TsRing {
    bucket_us: u64,
    buckets: Vec<TsBucket>,
    /// Absolute bucket index (`at / bucket_us`) of the newest bucket;
    /// `u64::MAX` marks an empty ring.
    head: u64,
    cap: usize,
}

impl TsRing {
    /// A ring of `capacity` buckets, each `bucket` of sim time wide.
    pub fn new(bucket: SimDuration, capacity: usize) -> Self {
        let cap = capacity.max(1);
        TsRing {
            bucket_us: bucket.as_micros().max(1),
            buckets: vec![TsBucket::default(); cap],
            head: u64::MAX,
            cap,
        }
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        SimDuration::from_micros(self.bucket_us)
    }

    /// Ring capacity in buckets.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Record one observation at sim time `at`. O(1) amortized, allocation
    /// free. Observations older than the retained window are dropped;
    /// observations in a retained past bucket fold into it.
    pub fn record(&mut self, at: SimTime, v: f64) {
        let idx = at.as_micros() / self.bucket_us;
        if self.head == u64::MAX {
            self.head = idx;
        }
        if idx > self.head {
            // Advance, zeroing skipped buckets (at most `cap` of them).
            let gap = (idx - self.head).min(self.cap as u64);
            for k in 1..=gap {
                let slot = ((self.head + k) % self.cap as u64) as usize;
                if let Some(b) = self.buckets.get_mut(slot) {
                    *b = TsBucket::default();
                }
            }
            self.head = idx;
        } else if self.head - idx >= self.cap as u64 {
            return; // older than the retained window
        }
        let slot = (idx % self.cap as u64) as usize;
        if let Some(b) = self.buckets.get_mut(slot) {
            b.count += 1;
            b.sum += v;
            if v > b.max {
                b.max = v;
            }
        }
    }

    /// Aggregate the trailing `window` buckets ending at `now`'s bucket.
    /// Buckets past the ring's retention (or after `now` relative to the
    /// head) contribute nothing.
    pub fn window(&self, now: SimTime, window: usize) -> WindowAgg {
        let window = window.clamp(1, self.cap);
        let mut agg = WindowAgg {
            window_secs: (window as u64 * self.bucket_us) as f64 / 1e6,
            ..WindowAgg::default()
        };
        if self.head == u64::MAX {
            return agg;
        }
        let now_idx = now.as_micros() / self.bucket_us;
        for k in 0..window as u64 {
            let Some(idx) = now_idx.checked_sub(k) else {
                break;
            };
            // Skip buckets the ring never reached or already recycled.
            if idx > self.head || self.head - idx >= self.cap as u64 {
                continue;
            }
            let slot = (idx % self.cap as u64) as usize;
            if let Some(b) = self.buckets.get(slot) {
                agg.count += b.count;
                agg.sum += b.sum;
                if b.max > agg.max {
                    agg.max = b.max;
                }
            }
        }
        agg
    }

    /// Render the retained non-empty buckets as a JSON array, oldest first.
    pub fn dump_json(&self) -> String {
        let mut out = String::from("[");
        if self.head != u64::MAX {
            let oldest = self.head.saturating_sub(self.cap as u64 - 1);
            let mut first = true;
            for idx in oldest..=self.head {
                let slot = (idx % self.cap as u64) as usize;
                let Some(b) = self.buckets.get(slot) else {
                    continue;
                };
                if b.count == 0 {
                    continue;
                }
                let _ = write!(
                    out,
                    "{}\n  {{ \"t_us\": {}, \"count\": {}, \"sum\": {:.3}, \"max\": {:.3} }}",
                    if first { "" } else { "," },
                    idx * self.bucket_us,
                    b.count,
                    b.sum,
                    b.max
                );
                first = false;
            }
        }
        out.push_str("\n]");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn windowed_aggregates() {
        let mut r = TsRing::new(SimDuration::from_secs(10), 8);
        r.record(t(5), 2.0);
        r.record(t(7), 4.0);
        r.record(t(15), 10.0);
        // Window of 1 bucket at t=15 sees only the second bucket.
        let w1 = r.window(t(15), 1);
        assert_eq!(w1.count, 1);
        assert_eq!(w1.max, 10.0);
        // Window of 2 buckets sees everything.
        let w2 = r.window(t(15), 2);
        assert_eq!(w2.count, 3);
        assert!((w2.mean() - 16.0 / 3.0).abs() < 1e-12);
        assert!((w2.rate_per_sec() - 3.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn old_buckets_age_out() {
        let mut r = TsRing::new(SimDuration::from_secs(1), 4);
        r.record(t(0), 1.0);
        r.record(t(100), 1.0); // jump far ahead: old bucket recycled
        assert_eq!(r.window(t(100), 4).count, 1);
        // A record older than retention is dropped.
        r.record(t(90), 5.0);
        assert_eq!(r.window(t(100), 4).count, 1);
    }

    #[test]
    fn gap_zeroes_skipped_buckets() {
        let mut r = TsRing::new(SimDuration::from_secs(1), 4);
        r.record(t(0), 7.0);
        r.record(t(2), 1.0);
        // Bucket 1 must be empty, not stale.
        let w = r.window(t(2), 2);
        assert_eq!(w.count, 1);
        assert_eq!(w.max, 1.0);
        // The full window still sees bucket 0.
        assert_eq!(r.window(t(2), 3).count, 2);
    }

    #[test]
    fn empty_ring_is_quiet() {
        let r = TsRing::new(SimDuration::from_secs(1), 4);
        let w = r.window(t(50), 4);
        assert_eq!(w.count, 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.rate_per_sec(), 0.0);
        assert_eq!(r.dump_json(), "[\n]");
    }

    #[test]
    fn dump_json_lists_nonempty_buckets() {
        let mut r = TsRing::new(SimDuration::from_secs(1), 4);
        r.record(t(1), 3.0);
        r.record(t(3), 4.0);
        let json = r.dump_json();
        assert!(json.contains("\"t_us\": 1000000"), "{json}");
        assert!(json.contains("\"t_us\": 3000000"), "{json}");
    }
}
