//! Lock-free validate-path statistics for the credential plane.
//!
//! The broker's verification hot path runs behind a `RwLock` read guard
//! (`&self`), often from several threads at once (the sharded batch
//! fan-out), so it cannot use the single-writer
//! [`eus_obs::Recorder`]. [`ValidateStats`] wraps
//! [`eus_obs::SharedStats`] — relaxed atomic slots — with the handle set
//! the verify path records through: call/outcome counts and wall-clock
//! nanoseconds (sum + max). Disabled (the default) every record call is
//! one relaxed load of a bool.

use eus_obs::{SharedId, SharedStats};
use std::time::Instant;

/// Plane code baked into credential-plane trace ids (see
/// [`eus_obs::TraceBuffer::new`]); keeps span ids collision-free across
/// planes when traces are assembled.
pub const CRED_TRACE_CODE: u8 = 3;

/// Atomic statistics for a credential plane's verification hot path.
#[derive(Debug, Clone)]
pub struct ValidateStats {
    stats: SharedStats,
    s_calls: SharedId,
    s_ok: SharedId,
    s_rejects: SharedId,
    s_ns: SharedId,
    s_ns_max: SharedId,
    s_batches: SharedId,
    s_fanout_batches: SharedId,
}

impl ValidateStats {
    /// A disabled stats block with every slot registered.
    pub fn new() -> Self {
        let mut stats = SharedStats::new();
        ValidateStats {
            s_calls: stats.slot("cred.validate.calls"),
            s_ok: stats.slot("cred.validate.ok"),
            s_rejects: stats.slot("cred.validate.rejects"),
            s_ns: stats.slot("cred.validate.ns"),
            s_ns_max: stats.slot("cred.validate.ns_max"),
            s_batches: stats.slot("cred.validate.batches"),
            s_fanout_batches: stats.slot("cred.validate.fanout_batches"),
            stats,
        }
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.stats.enabled()
    }

    /// Turn recording on or off (atomically; `&self` on purpose — the
    /// plane usually sits behind a lock by the time anyone wants this).
    pub fn set_enabled(&self, on: bool) {
        self.stats.set_enabled(on);
    }

    /// Start timing one validation. `None` (free) when disabled.
    pub fn begin(&self) -> Option<Instant> {
        if self.stats.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish timing one validation started by [`begin`](Self::begin).
    pub fn finish(&self, started: Option<Instant>, ok: bool) {
        if let Some(t0) = started {
            let ns = t0.elapsed().as_nanos() as u64;
            self.stats.incr(self.s_calls);
            self.stats.incr(if ok { self.s_ok } else { self.s_rejects });
            self.stats.add(self.s_ns, ns);
            self.stats.max(self.s_ns_max, ns);
        }
    }

    /// Count one batch call; `fanout` marks the shard-parallel path.
    pub fn batch(&self, fanout: bool) {
        self.stats.incr(self.s_batches);
        if fanout {
            self.stats.incr(self.s_fanout_batches);
        }
    }

    /// Validations recorded.
    pub fn calls(&self) -> u64 {
        self.stats.value(self.s_calls)
    }

    /// Validations that accepted the credential.
    pub fn ok(&self) -> u64 {
        self.stats.value(self.s_ok)
    }

    /// Validations that refused the credential.
    pub fn rejects(&self) -> u64 {
        self.stats.value(self.s_rejects)
    }

    /// Total verification wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.stats.value(self.s_ns)
    }

    /// Slowest single verification, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.stats.value(self.s_ns_max)
    }

    /// Mean verification wall time, nanoseconds (0 when nothing recorded).
    pub fn mean_ns(&self) -> f64 {
        let n = self.calls();
        if n == 0 {
            0.0
        } else {
            self.total_ns() as f64 / n as f64
        }
    }

    /// Batch calls recorded (and how many took the fan-out path).
    pub fn batches(&self) -> (u64, u64) {
        (
            self.stats.value(self.s_batches),
            self.stats.value(self.s_fanout_batches),
        )
    }

    /// Every slot as `(name, value)`.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.stats.snapshot()
    }
}

impl Default for ValidateStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let s = ValidateStats::new();
        assert!(!s.enabled());
        let t = s.begin();
        assert!(t.is_none());
        s.finish(t, true);
        s.batch(true);
        assert_eq!(s.calls(), 0);
        assert_eq!(s.batches(), (0, 0));
    }

    #[test]
    fn enabled_counts_outcomes_and_time() {
        let s = ValidateStats::new();
        s.set_enabled(true);
        for i in 0..5 {
            let t = s.begin();
            s.finish(t, i % 2 == 0);
        }
        s.batch(false);
        s.batch(true);
        assert_eq!(s.calls(), 5);
        assert_eq!(s.ok(), 3);
        assert_eq!(s.rejects(), 2);
        assert!(s.total_ns() >= s.max_ns());
        assert!(s.mean_ns() >= 0.0);
        assert_eq!(s.batches(), (2, 1));
        assert!(s.snapshot().iter().any(|(n, _)| *n == "cred.validate.ok"));
    }
}
