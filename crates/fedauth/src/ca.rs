//! The certificate authority: exchanges identity assertions for short-lived,
//! signed credentials — bearer tokens (portal, job submission) and SSH
//! certificates (interactive access) — with validity windows on the
//! simulation clock and unguessable material from a seeded RNG stream.
//!
//! Verification is the hot path: a keyed-MAC recomputation plus two clock
//! comparisons, O(1) and allocation-free.

use crate::realm::{IdentityAssertion, RealmId};
use eus_simcore::{SimDuration, SimRng, SimTime};
use eus_simos::Uid;
use std::fmt;

/// Monotonic credential serial, unique per CA; the revocation key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CredSerial(pub u64);

impl fmt::Display for CredSerial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serial#{}", self.0)
    }
}

/// Why a credential failed verification or issuance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CredError {
    /// Unknown user at assertion time.
    UnknownUser(Uid),
    /// MFA policy demands a one-time code.
    MfaRequired,
    /// Presented one-time code is wrong for the current window.
    MfaInvalid,
    /// Credential presented before its validity window opens.
    NotYetValid {
        /// Window start.
        from: SimTime,
    },
    /// Credential presented after its validity window closed.
    Expired {
        /// Window end.
        until: SimTime,
    },
    /// Credential was minted for a different realm than the verifier's.
    RealmMismatch {
        /// The verifier's realm.
        ours: RealmId,
        /// The credential's realm.
        theirs: RealmId,
    },
    /// Credential was minted by a realm the verifying site's trust policy
    /// does not allow-list (federation: known concept, refused realm).
    UntrustedRealm {
        /// The verifying site's realm.
        ours: RealmId,
        /// The credential's realm.
        theirs: RealmId,
    },
    /// No broker is registered for this realm in the federation directory.
    UnknownRealm(RealmId),
    /// The verifying site *was* allow-listed for this realm, but the trust
    /// entry's expiry has passed (time-boxed collaborations fail closed).
    TrustExpired {
        /// The credential's realm.
        realm: RealmId,
        /// When the trust entry lapsed.
        expired_at: SimTime,
    },
    /// The local CRL replica for this realm is older than the verifying
    /// site's staleness budget: without fresh-enough revocation data the
    /// site refuses to judge the credential (bounded-staleness fail-closed,
    /// `eus-revsync`).
    StaleReplica {
        /// The credential's realm (whose replica is stale).
        realm: RealmId,
        /// How far behind the replica is.
        lag: SimDuration,
    },
    /// Signature does not verify under this CA's key.
    BadSignature,
    /// Serial appears on the revocation list.
    Revoked(CredSerial),
    /// No live credential of the required kind for this user.
    NoCredential(Uid),
    /// The identity provider or certificate authority behind this plane is
    /// temporarily down (fault injection / real outage): issuance is
    /// refused, but already-minted credentials keep validating.
    Unavailable,
}

impl fmt::Display for CredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CredError::UnknownUser(u) => write!(f, "no such user {u}"),
            CredError::MfaRequired => f.write_str("second factor required"),
            CredError::MfaInvalid => f.write_str("one-time code invalid"),
            CredError::NotYetValid { from } => write!(f, "credential not valid before {from}"),
            CredError::Expired { until } => write!(f, "credential expired at {until}"),
            CredError::RealmMismatch { ours, theirs } => {
                write!(f, "credential realm {theirs} not trusted by {ours}")
            }
            CredError::UntrustedRealm { ours, theirs } => {
                write!(f, "realm {theirs} not on {ours}'s trust allow-list")
            }
            CredError::UnknownRealm(r) => write!(f, "no broker registered for {r}"),
            CredError::TrustExpired { realm, expired_at } => {
                write!(f, "trust in {realm} expired at {expired_at}")
            }
            CredError::StaleReplica { realm, lag } => {
                write!(f, "CRL replica for {realm} is {lag} stale (over budget)")
            }
            CredError::BadSignature => f.write_str("signature verification failed"),
            CredError::Revoked(s) => write!(f, "credential {s} is revoked"),
            CredError::NoCredential(u) => write!(f, "no live credential for {u}"),
            CredError::Unavailable => {
                f.write_str("identity provider / certificate authority temporarily unavailable")
            }
        }
    }
}

impl std::error::Error for CredError {}

/// A signed bearer token: the portal session / job-submission credential.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedToken {
    /// Revocation key.
    pub serial: CredSerial,
    /// Unguessable bearer material.
    pub material: u128,
    /// Subject.
    pub user: Uid,
    /// Issuing realm.
    pub realm: RealmId,
    /// Window start.
    pub issued: SimTime,
    /// Window end (exclusive).
    pub expires: SimTime,
    /// Keyed MAC over every field above.
    pub sig: u64,
}

/// A short-lived SSH certificate: replaces long-lived authorized keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SshCertificate {
    /// Revocation key.
    pub serial: CredSerial,
    /// Subject (the certificate principal).
    pub user: Uid,
    /// Issuing realm.
    pub realm: RealmId,
    /// Window start.
    pub issued: SimTime,
    /// Window end (exclusive).
    pub expires: SimTime,
    /// Keyed MAC over every field above.
    pub sig: u64,
}

/// splitmix64-style keyed MAC: enough to model "forgery requires the CA
/// key" in a deterministic simulation (not a real cryptographic MAC).
fn mac64(key: u64, words: &[u64]) -> u64 {
    let mut acc = key ^ 0x1B87_3593_44ED_75DB;
    for &w in words {
        acc ^= w;
        acc = acc.wrapping_add(0x9E37_79B9_7F4A_7C15);
        acc = (acc ^ (acc >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        acc = (acc ^ (acc >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc ^= acc >> 31;
    }
    acc
}

fn token_words(t: &SignedToken) -> [u64; 7] {
    [
        t.serial.0,
        t.material as u64,
        (t.material >> 64) as u64,
        t.user.0 as u64,
        t.realm.0 as u64,
        t.issued.as_micros(),
        t.expires.as_micros(),
    ]
}

fn cert_words(c: &SshCertificate) -> [u64; 5] {
    [
        c.serial.0,
        c.user.0 as u64,
        c.realm.0 as u64,
        c.issued.as_micros(),
        c.expires.as_micros(),
    ]
}

/// The per-realm certificate authority.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    /// The realm whose credentials this CA signs.
    pub realm: RealmId,
    /// Token lifetime.
    pub token_ttl: SimDuration,
    /// SSH certificate lifetime.
    pub cert_ttl: SimDuration,
    key: u64,
    rng: SimRng,
    next_serial: u64,
    serial_step: u64,
}

impl CertificateAuthority {
    /// A CA for `realm`: the signing key and token material derive from
    /// `seed`, so identical seeds reproduce identical credential streams.
    pub fn new(realm: RealmId, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xFEDA_00CA);
        let key = rng.range_u64(1, u64::MAX);
        CertificateAuthority {
            realm,
            token_ttl: SimDuration::from_secs(12 * 3600),
            cert_ttl: SimDuration::from_secs(3600),
            key,
            rng,
            next_serial: 0,
            serial_step: 1,
        }
    }

    /// Override the token lifetime.
    pub fn with_token_ttl(mut self, ttl: SimDuration) -> Self {
        self.token_ttl = ttl;
        self
    }

    /// Override the certificate lifetime.
    pub fn with_cert_ttl(mut self, ttl: SimDuration) -> Self {
        self.cert_ttl = ttl;
        self
    }

    /// Partition the serial space: this CA mints serials congruent to
    /// `index` modulo `stride` (`index + stride`, `index + 2·stride`, …).
    /// A [`crate::ShardedBroker`] gives each shard a disjoint residue class
    /// so serials stay globally unique across shards and the owning shard of
    /// any serial is recoverable as `serial % stride`.
    pub fn set_serial_partition(&mut self, index: u64, stride: u64) {
        assert!(stride > 0, "stride must be positive");
        assert!(index < stride, "index must be a residue modulo stride");
        assert_eq!(
            self.next_serial, 0,
            "serial partition must be set before any credential is minted \
             (repartitioning would re-issue already-used serials)"
        );
        self.next_serial = index;
        self.serial_step = stride;
    }

    fn next_serial(&mut self) -> CredSerial {
        self.next_serial += self.serial_step;
        CredSerial(self.next_serial)
    }

    /// Mint a bearer token for an asserted identity.
    pub fn mint_token(&mut self, assertion: &IdentityAssertion, now: SimTime) -> SignedToken {
        let serial = self.next_serial();
        let material = (self.rng.range_u64(1, u64::MAX) as u128) << 64
            | self.rng.range_u64(1, u64::MAX) as u128;
        let mut t = SignedToken {
            serial,
            material,
            user: assertion.user,
            realm: self.realm,
            issued: now,
            expires: now + self.token_ttl,
            sig: 0,
        };
        t.sig = mac64(self.key, &token_words(&t));
        t
    }

    /// Mint an SSH certificate for an asserted identity.
    pub fn mint_cert(&mut self, assertion: &IdentityAssertion, now: SimTime) -> SshCertificate {
        let serial = self.next_serial();
        let mut c = SshCertificate {
            serial,
            user: assertion.user,
            realm: self.realm,
            issued: now,
            expires: now + self.cert_ttl,
            sig: 0,
        };
        c.sig = mac64(self.key, &cert_words(&c));
        c
    }

    /// Verify a token's realm, signature, and validity window at `now`.
    pub fn verify_token(&self, t: &SignedToken, now: SimTime) -> Result<(), CredError> {
        if t.realm != self.realm {
            return Err(CredError::RealmMismatch {
                ours: self.realm,
                theirs: t.realm,
            });
        }
        if t.sig != mac64(self.key, &token_words(t)) {
            return Err(CredError::BadSignature);
        }
        window_check(t.issued, t.expires, now)
    }

    /// Verify a certificate's realm, signature, and validity window at `now`.
    pub fn verify_cert(&self, c: &SshCertificate, now: SimTime) -> Result<(), CredError> {
        if c.realm != self.realm {
            return Err(CredError::RealmMismatch {
                ours: self.realm,
                theirs: c.realm,
            });
        }
        if c.sig != mac64(self.key, &cert_words(c)) {
            return Err(CredError::BadSignature);
        }
        window_check(c.issued, c.expires, now)
    }
}

/// A portable verification handle for one realm's credential plane: the
/// realm's CA verification state, exported once at trust-establishment time
/// so a *sister site* can verify this realm's signatures locally — no
/// network round-trip to the issuer on the validate hot path.
///
/// In the simulation's keyed-MAC model the "public key" is the CA state
/// itself (the MAC is symmetric); a real deployment would export the CA
/// public keys. What matters structurally is identical: verification
/// capability is distributed once, while *revocation* state keeps changing —
/// which is exactly what `eus-revsync` replicates asynchronously.
///
/// For a sharded plane the verifier carries one CA per shard; a credential
/// routes to its minting shard arithmetically (shard serials fill disjoint
/// residue classes, `serial % shards == shard index`), so lookup stays O(1).
#[derive(Debug, Clone)]
pub struct RealmVerifier {
    realm: RealmId,
    cas: Vec<CertificateAuthority>,
}

impl RealmVerifier {
    /// A verifier from the issuing plane's CAs, in shard order (a single
    /// broker passes exactly one).
    pub fn new(realm: RealmId, cas: Vec<CertificateAuthority>) -> Self {
        assert!(!cas.is_empty(), "a realm has at least one CA");
        assert!(
            cas.iter().all(|ca| ca.realm == realm),
            "every CA must belong to the verifier's realm"
        );
        RealmVerifier { realm, cas }
    }

    /// The realm this verifier judges.
    pub fn realm(&self) -> RealmId {
        self.realm
    }

    fn ca_for_serial(&self, serial: CredSerial) -> &CertificateAuthority {
        &self.cas[(serial.0 % self.cas.len() as u64) as usize]
    }

    /// Verify a token's realm, signature, and validity window at `now`,
    /// entirely locally. Revocation is *not* checked here — that is the
    /// replica's job (the whole point of splitting verification from
    /// revocation state).
    pub fn verify_token(&self, t: &SignedToken, now: SimTime) -> Result<Uid, CredError> {
        self.ca_for_serial(t.serial).verify_token(t, now)?;
        Ok(t.user)
    }

    /// Verify an SSH certificate the same way.
    pub fn verify_cert(&self, c: &SshCertificate, now: SimTime) -> Result<Uid, CredError> {
        self.ca_for_serial(c.serial).verify_cert(c, now)?;
        Ok(c.user)
    }
}

fn window_check(issued: SimTime, expires: SimTime, now: SimTime) -> Result<(), CredError> {
    if now < issued {
        return Err(CredError::NotYetValid { from: issued });
    }
    if now >= expires {
        return Err(CredError::Expired { until: expires });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realm::IdentityProvider;
    use eus_simos::UserDb;

    fn assertion() -> (IdentityAssertion, CertificateAuthority) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let idp = IdentityProvider::new(RealmId(1), 5);
        let a = idp
            .assert_identity(&db, alice, None, SimTime::ZERO)
            .unwrap();
        (a, CertificateAuthority::new(RealmId(1), 5))
    }

    #[test]
    fn token_roundtrip_inside_window() {
        let (a, mut ca) = assertion();
        let t = ca.mint_token(&a, SimTime::ZERO);
        assert!(ca.verify_token(&t, SimTime::ZERO).is_ok());
        assert!(ca
            .verify_token(&t, t.expires - SimDuration::from_micros(1))
            .is_ok());
        assert_eq!(
            ca.verify_token(&t, t.expires),
            Err(CredError::Expired { until: t.expires })
        );
    }

    #[test]
    fn tampered_fields_break_the_signature() {
        let (a, mut ca) = assertion();
        let t = ca.mint_token(&a, SimTime::ZERO);
        let mut forged = t;
        forged.user = Uid(4242);
        assert_eq!(
            ca.verify_token(&forged, SimTime::ZERO),
            Err(CredError::BadSignature)
        );
        let mut extended = t;
        extended.expires = t.expires + SimDuration::from_secs(9999);
        assert_eq!(
            ca.verify_token(&extended, SimTime::ZERO),
            Err(CredError::BadSignature)
        );
    }

    #[test]
    fn foreign_realm_rejected_before_signature() {
        let (a, ca) = assertion();
        let mut foreign_ca = CertificateAuthority::new(RealmId(2), 6);
        let foreign_assertion = IdentityAssertion {
            realm: RealmId(2),
            ..a
        };
        let t = foreign_ca.mint_token(&foreign_assertion, SimTime::ZERO);
        assert_eq!(
            ca.verify_token(&t, SimTime::ZERO),
            Err(CredError::RealmMismatch {
                ours: RealmId(1),
                theirs: RealmId(2),
            })
        );
    }

    #[test]
    fn cert_window_is_the_short_ttl() {
        let (a, mut ca) = assertion();
        let c = ca.mint_cert(&a, SimTime::from_secs(10));
        assert_eq!(c.expires, SimTime::from_secs(10) + ca.cert_ttl);
        assert_eq!(
            ca.verify_cert(&c, SimTime::ZERO),
            Err(CredError::NotYetValid { from: c.issued })
        );
        assert!(ca.verify_cert(&c, SimTime::from_secs(100)).is_ok());
    }

    #[test]
    fn serials_and_material_never_repeat() {
        let (a, mut ca) = assertion();
        let mut serials = std::collections::BTreeSet::new();
        let mut materials = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let t = ca.mint_token(&a, SimTime::ZERO);
            assert!(serials.insert(t.serial));
            assert!(materials.insert(t.material));
        }
    }
}
