//! The revocation list: O(1) hot-path membership checks, additions are
//! irreversible by construction (no removal API — a revoked serial stays
//! revoked for the life of the realm, exactly like a CRL entry for a
//! credential that never leaves its validity window un-revoked).
//!
//! Beyond the membership set, the list keeps a **sequence-numbered,
//! append-only delta log**: entry *k* (1-based) is the *k*-th serial ever
//! revoked at this realm. The log is what `eus-revsync` ships between
//! realms — a sister site holding entries `1..=n` asks for (or is pushed)
//! everything after `n`, and because revocation is irreversible the log
//! never rewrites history: replicas converge by append alone.
//!
//! **Compaction.** The tail of the log can be truncated below a floor once
//! every subscriber has acked past it ([`compact_below`]): the membership
//! set (the thing verification reads) is untouched, sequence numbers never
//! renumber, and a subscriber somehow below the floor re-bootstraps from a
//! full membership snapshot instead of a delta. So long soaks don't grow
//! the log without bound.
//!
//! [`compact_below`]: RevocationList::compact_below

use crate::ca::CredSerial;
use std::collections::HashSet;

/// The set of revoked credential serials, plus the append-only delta log
/// recording the order in which they were revoked.
#[derive(Debug, Clone, Default)]
pub struct RevocationList {
    revoked: HashSet<CredSerial>,
    /// Insertion-ordered log tail: `log[k]` is the serial with sequence
    /// number `compacted + k + 1`. Never reordered; the prefix below
    /// `compacted` has been truncated away.
    log: Vec<CredSerial>,
    /// How many leading log entries have been compacted away. Sequence
    /// numbers stay dense and 1-based: the oldest retained entry has
    /// sequence number `compacted + 1`.
    compacted: u64,
}

impl RevocationList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Revoke a serial. Returns true the first time, false if it was
    /// already revoked. There is deliberately no inverse operation.
    pub fn revoke(&mut self, serial: CredSerial) -> bool {
        let fresh = self.revoked.insert(serial);
        if fresh {
            self.log.push(serial);
        }
        fresh
    }

    /// O(1) hot-path check.
    #[inline]
    pub fn is_revoked(&self, serial: CredSerial) -> bool {
        self.revoked.contains(&serial)
    }

    /// Number of revoked serials.
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// True when nothing has been revoked.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }

    /// The log head: the sequence number of the newest entry (0 when
    /// nothing was ever revoked). Sequence numbers are 1-based and dense,
    /// and survive compaction unchanged.
    pub fn head(&self) -> u64 {
        self.compacted + self.log.len() as u64
    }

    /// The compaction floor: the highest sequence number that has been
    /// truncated out of the log (0 when never compacted). Deltas are only
    /// available for `since >= floor()`.
    pub fn floor(&self) -> u64 {
        self.compacted
    }

    /// The delta after sequence number `since`, oldest first.
    /// `entries_since(head())` is empty. `since` below the compaction
    /// [`floor`](Self::floor) clamps to the floor — callers that need the
    /// truncated history must take the [`snapshot`](Self::snapshot) path
    /// instead (the mesh checks `floor()` first).
    pub fn entries_since(&self, since: u64) -> &[CredSerial] {
        let from = (since.saturating_sub(self.compacted) as usize).min(self.log.len());
        &self.log[from..]
    }

    /// Truncate log entries with sequence number `<= upto` (clamped to the
    /// current head). Membership is untouched; returns how many entries
    /// were dropped. Callers must only pass frontiers every subscriber has
    /// acked past — the mesh computes that minimum.
    pub fn compact_below(&mut self, upto: u64) -> u64 {
        let upto = upto.min(self.head());
        if upto <= self.compacted {
            return 0;
        }
        let drop = (upto - self.compacted) as usize;
        self.log.drain(..drop);
        self.compacted = upto;
        drop as u64
    }

    /// The full membership set, sorted by serial: the bootstrap payload for
    /// a subscriber whose frontier fell below the compaction floor.
    /// Sorting makes the snapshot order seed-stable.
    pub fn snapshot(&self) -> Vec<CredSerial> {
        // analyze:allow(sim-determinism): HashSet iteration feeds a sort,
        // so the emitted order is independent of hash order.
        let mut all: Vec<CredSerial> = self.revoked.iter().copied().collect();
        all.sort_unstable();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revocation_is_immediate_and_sticky() {
        let mut rl = RevocationList::new();
        assert!(!rl.is_revoked(CredSerial(1)));
        assert!(rl.revoke(CredSerial(1)));
        assert!(rl.is_revoked(CredSerial(1)));
        assert!(!rl.revoke(CredSerial(1)), "second revoke is a no-op");
        assert_eq!(rl.len(), 1);
        assert!(!rl.is_empty());
    }

    #[test]
    fn delta_log_appends_in_order_and_dedupes() {
        let mut rl = RevocationList::new();
        assert_eq!(rl.head(), 0);
        assert!(rl.entries_since(0).is_empty());
        rl.revoke(CredSerial(5));
        rl.revoke(CredSerial(3));
        rl.revoke(CredSerial(5)); // duplicate: no log entry
        rl.revoke(CredSerial(9));
        assert_eq!(rl.head(), 3);
        assert_eq!(
            rl.entries_since(0),
            &[CredSerial(5), CredSerial(3), CredSerial(9)]
        );
        assert_eq!(rl.entries_since(2), &[CredSerial(9)]);
        assert!(rl.entries_since(3).is_empty());
        // Asking past the head is not an error (a replica that somehow got
        // ahead — impossible via the feed — just gets nothing).
        assert!(rl.entries_since(99).is_empty());
    }

    #[test]
    fn compaction_preserves_membership_sequence_numbers_and_snapshot() {
        let mut rl = RevocationList::new();
        for s in [7u64, 3, 11, 5, 9] {
            rl.revoke(CredSerial(s));
        }
        assert_eq!(rl.head(), 5);
        assert_eq!(rl.compact_below(3), 3, "drops entries 1..=3");
        assert_eq!(rl.floor(), 3);
        assert_eq!(rl.head(), 5, "head survives compaction");
        // Membership is untouched.
        for s in [7u64, 3, 11, 5, 9] {
            assert!(rl.is_revoked(CredSerial(s)));
        }
        // Deltas above the floor still address by original sequence number.
        assert_eq!(rl.entries_since(3), &[CredSerial(5), CredSerial(9)]);
        assert_eq!(rl.entries_since(4), &[CredSerial(9)]);
        // Below the floor the delta clamps (callers check floor() first and
        // take the snapshot path).
        assert_eq!(rl.entries_since(0), &[CredSerial(5), CredSerial(9)]);
        // Snapshot is the full sorted membership.
        assert_eq!(
            rl.snapshot(),
            vec![
                CredSerial(3),
                CredSerial(5),
                CredSerial(7),
                CredSerial(9),
                CredSerial(11)
            ]
        );
        // Re-compacting below the floor is a no-op; compacting past head clamps.
        assert_eq!(rl.compact_below(2), 0);
        assert_eq!(rl.compact_below(99), 2);
        assert_eq!(rl.floor(), 5);
        assert!(rl.entries_since(5).is_empty());
    }
}
