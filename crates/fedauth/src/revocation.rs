//! The revocation list: O(1) hot-path membership checks, additions are
//! irreversible by construction (no removal API — a revoked serial stays
//! revoked for the life of the realm, exactly like a CRL entry for a
//! credential that never leaves its validity window un-revoked).
//!
//! Beyond the membership set, the list keeps a **sequence-numbered,
//! append-only delta log**: entry *k* (1-based) is the *k*-th serial ever
//! revoked at this realm. The log is what `eus-revsync` ships between
//! realms — a sister site holding entries `1..=n` asks for (or is pushed)
//! everything after `n`, and because revocation is irreversible the log
//! never rewrites history: replicas converge by append alone.

use crate::ca::CredSerial;
use std::collections::HashSet;

/// The set of revoked credential serials, plus the append-only delta log
/// recording the order in which they were revoked.
#[derive(Debug, Clone, Default)]
pub struct RevocationList {
    revoked: HashSet<CredSerial>,
    /// Insertion-ordered log: `log[k]` is the serial with sequence number
    /// `k + 1`. Never truncated, never reordered.
    log: Vec<CredSerial>,
}

impl RevocationList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Revoke a serial. Returns true the first time, false if it was
    /// already revoked. There is deliberately no inverse operation.
    pub fn revoke(&mut self, serial: CredSerial) -> bool {
        let fresh = self.revoked.insert(serial);
        if fresh {
            self.log.push(serial);
        }
        fresh
    }

    /// O(1) hot-path check.
    #[inline]
    pub fn is_revoked(&self, serial: CredSerial) -> bool {
        self.revoked.contains(&serial)
    }

    /// Number of revoked serials.
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// True when nothing has been revoked.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }

    /// The log head: the sequence number of the newest entry (0 when the
    /// log is empty). Sequence numbers are 1-based and dense.
    pub fn head(&self) -> u64 {
        self.log.len() as u64
    }

    /// The delta after sequence number `since`: every serial revoked after
    /// the `since`-th revocation, oldest first. `entries_since(0)` is the
    /// full log; `entries_since(head())` is empty.
    pub fn entries_since(&self, since: u64) -> &[CredSerial] {
        let from = (since as usize).min(self.log.len());
        &self.log[from..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revocation_is_immediate_and_sticky() {
        let mut rl = RevocationList::new();
        assert!(!rl.is_revoked(CredSerial(1)));
        assert!(rl.revoke(CredSerial(1)));
        assert!(rl.is_revoked(CredSerial(1)));
        assert!(!rl.revoke(CredSerial(1)), "second revoke is a no-op");
        assert_eq!(rl.len(), 1);
        assert!(!rl.is_empty());
    }

    #[test]
    fn delta_log_appends_in_order_and_dedupes() {
        let mut rl = RevocationList::new();
        assert_eq!(rl.head(), 0);
        assert!(rl.entries_since(0).is_empty());
        rl.revoke(CredSerial(5));
        rl.revoke(CredSerial(3));
        rl.revoke(CredSerial(5)); // duplicate: no log entry
        rl.revoke(CredSerial(9));
        assert_eq!(rl.head(), 3);
        assert_eq!(
            rl.entries_since(0),
            &[CredSerial(5), CredSerial(3), CredSerial(9)]
        );
        assert_eq!(rl.entries_since(2), &[CredSerial(9)]);
        assert!(rl.entries_since(3).is_empty());
        // Asking past the head is not an error (a replica that somehow got
        // ahead — impossible via the feed — just gets nothing).
        assert!(rl.entries_since(99).is_empty());
    }
}
