//! The revocation list: O(1) hot-path membership checks, additions are
//! irreversible by construction (no removal API — a revoked serial stays
//! revoked for the life of the realm, exactly like a CRL entry for a
//! credential that never leaves its validity window un-revoked).

use crate::ca::CredSerial;
use std::collections::HashSet;

/// The set of revoked credential serials.
#[derive(Debug, Clone, Default)]
pub struct RevocationList {
    revoked: HashSet<CredSerial>,
}

impl RevocationList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Revoke a serial. Returns true the first time, false if it was
    /// already revoked. There is deliberately no inverse operation.
    pub fn revoke(&mut self, serial: CredSerial) -> bool {
        self.revoked.insert(serial)
    }

    /// O(1) hot-path check.
    #[inline]
    pub fn is_revoked(&self, serial: CredSerial) -> bool {
        self.revoked.contains(&serial)
    }

    /// Number of revoked serials.
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// True when nothing has been revoked.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revocation_is_immediate_and_sticky() {
        let mut rl = RevocationList::new();
        assert!(!rl.is_revoked(CredSerial(1)));
        assert!(rl.revoke(CredSerial(1)));
        assert!(rl.is_revoked(CredSerial(1)));
        assert!(!rl.revoke(CredSerial(1)), "second revoke is a no-op");
        assert_eq!(rl.len(), 1);
        assert!(!rl.is_empty());
    }
}
