//! The credential broker: the single enforcement point every service
//! consults instead of trusting raw uids or long-lived keys.
//!
//! sshd's PAM account phase ([`crate::PamFedAuth`]), the scheduler's
//! submission path, and the portal's session layer all hold a
//! [`crate::SharedBroker`] and ask it one O(1) question — "does this principal hold
//! a live, unrevoked credential of the right kind *right now*?" — keeping
//! issuance, expiry, and revocation in one place (the companion paper's
//! central identity plane).

use crate::ca::{
    CertificateAuthority, CredError, CredSerial, RealmVerifier, SignedToken, SshCertificate,
};
use crate::obs::{ValidateStats, CRED_TRACE_CODE};
use crate::plane::CredentialPlane;
use crate::realm::{
    IdentityAssertion, IdentityProvider, MfaCode, MfaEnrollment, RealmId, RecoveryCode,
};
use crate::revocation::RevocationList;
use eus_obs::TraceBuffer;
use eus_simcore::{SimDuration, SimTime};
use eus_simos::{Uid, UserDb};
use std::collections::BTreeMap;

/// Credential lifetimes for a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerPolicy {
    /// Bearer-token lifetime (portal sessions, job submission).
    pub token_ttl: SimDuration,
    /// SSH-certificate lifetime (interactive access).
    pub cert_ttl: SimDuration,
    /// Whether enrolled users must present a second factor at login.
    pub require_mfa: bool,
}

impl Default for BrokerPolicy {
    fn default() -> Self {
        BrokerPolicy {
            // The companion paper's shape: hours, not the months-to-forever
            // of authorized_keys files.
            token_ttl: SimDuration::from_secs(12 * 3600),
            cert_ttl: SimDuration::from_secs(3600),
            require_mfa: false,
        }
    }
}

/// The broker: home-realm IdP + CA + revocation list + live-session state.
#[derive(Debug)]
pub struct CredentialBroker {
    /// The home realm's identity provider.
    pub idp: IdentityProvider,
    /// The home realm's certificate authority.
    pub ca: CertificateAuthority,
    /// The realm-wide revocation list.
    pub revocations: RevocationList,
    now: SimTime,
    /// Live tokens per user, **keyed by serial** (serials are monotonic per
    /// CA, so iteration order is still oldest-first). The serial key makes
    /// `validate_serial` an O(log) map lookup instead of a linear scan of
    /// the user's sessions — users with hundreds of concurrent portal tabs
    /// and sbatch tokens are real (concurrent sessions are: two portal
    /// tabs, a portal session plus an sbatch token, ...).
    sessions: BTreeMap<Uid, BTreeMap<CredSerial, SignedToken>>,
    certs: BTreeMap<Uid, SshCertificate>,
    /// Identity-provider reachability (fault injection; defaults up).
    /// While down, assertion paths fail with [`CredError::Unavailable`];
    /// validation of already-minted credentials is untouched.
    idp_available: bool,
    /// Certificate-authority reachability (fault injection; defaults up).
    /// While down, minting fails with [`CredError::Unavailable`];
    /// verification is local key material and keeps serving.
    ca_available: bool,
    /// Verify-path statistics (atomic; off by default). Recorded only by
    /// the plane-level trait methods, so a broker serving as a
    /// [`crate::ShardedBroker`] shard stays silent — the plane counts once.
    pub stats: ValidateStats,
    /// Causal trace ring for the credential plane (off by default).
    /// Interior-mutable so entry points behind a read lock (PAM account
    /// phase, submission gate) can mint and record spans through `&self`.
    pub trace: TraceBuffer,
}

impl CredentialBroker {
    /// A broker for `realm`; `seed` determines all key/token material.
    pub fn new(realm: RealmId, seed: u64, policy: BrokerPolicy) -> Self {
        let mut idp = IdentityProvider::new(realm, seed);
        if policy.require_mfa {
            idp = idp.with_mfa_required();
        }
        CredentialBroker {
            idp,
            ca: CertificateAuthority::new(realm, seed)
                .with_token_ttl(policy.token_ttl)
                .with_cert_ttl(policy.cert_ttl),
            revocations: RevocationList::new(),
            now: SimTime::ZERO,
            sessions: BTreeMap::new(),
            certs: BTreeMap::new(),
            idp_available: true,
            ca_available: true,
            stats: ValidateStats::new(),
            trace: TraceBuffer::disabled("cred", CRED_TRACE_CODE),
        }
    }

    /// Partition the CA's serial space (see
    /// [`CertificateAuthority::set_serial_partition`]); used by
    /// [`crate::ShardedBroker`] so shard serials never collide.
    pub fn with_serial_partition(mut self, index: u64, stride: u64) -> Self {
        self.ca.set_serial_partition(index, stride);
        self
    }

    /// The broker's realm.
    pub fn realm(&self) -> RealmId {
        self.idp.realm
    }

    /// The broker's current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock (monotonic; driven by the cluster simulation).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    // ------------------------------------------------------------------
    // Issuance
    // ------------------------------------------------------------------

    /// Federated login: assert identity (MFA per policy), mint a bearer
    /// token and an SSH certificate, and record them as a live session.
    /// Concurrent sessions are real — a second login *appends* to the
    /// user's live sessions rather than replacing them (two portal tabs, a
    /// portal session plus an sbatch token, …); only revocation or expiry
    /// ends a session.
    pub fn login(
        &mut self,
        db: &UserDb,
        user: Uid,
        mfa: Option<MfaCode>,
    ) -> Result<SignedToken, CredError> {
        if !self.idp_available || !self.ca_available {
            return Err(CredError::Unavailable);
        }
        let assertion = self.idp.assert_identity(db, user, mfa, self.now)?;
        Ok(self.mint_session(&assertion))
    }

    /// Login with a single-use recovery code in place of the window code
    /// (the lost-authenticator path); the code is burned on success.
    pub fn login_recovery(
        &mut self,
        db: &UserDb,
        user: Uid,
        code: RecoveryCode,
    ) -> Result<SignedToken, CredError> {
        if !self.idp_available || !self.ca_available {
            return Err(CredError::Unavailable);
        }
        let assertion = self
            .idp
            .assert_identity_recovery(db, user, code, self.now)?;
        Ok(self.mint_session(&assertion))
    }

    /// Mint and record the token + SSH certificate for an assertion.
    fn mint_session(&mut self, assertion: &IdentityAssertion) -> SignedToken {
        let token = self.ca.mint_token(assertion, self.now);
        let cert = self.ca.mint_cert(assertion, self.now);
        self.sessions
            .entry(assertion.user)
            .or_default()
            .insert(token.serial, token);
        self.certs.insert(assertion.user, cert);
        token
    }

    /// [`login`](Self::login) with the second factor supplied by the
    /// simulation: enrolled users "type" the current window code (the
    /// out-of-band factor a real client would present), others log in
    /// single-factor.
    pub fn login_auto(&mut self, db: &UserDb, user: Uid) -> Result<SignedToken, CredError> {
        let mfa = self.idp.current_code(user, self.now);
        self.login(db, user, mfa)
    }

    /// Mint a fresh SSH certificate against a live bearer token (the
    /// `ssh-cert fetch` workflow).
    pub fn mint_ssh_cert(&mut self, token: &SignedToken) -> Result<SshCertificate, CredError> {
        if !self.ca_available {
            return Err(CredError::Unavailable);
        }
        let user = self.validate_token(token)?;
        let assertion = crate::realm::IdentityAssertion {
            realm: self.realm(),
            user,
            asserted_at: self.now,
            mfa_verified: false,
        };
        let cert = self.ca.mint_cert(&assertion, self.now);
        self.certs.insert(user, cert);
        Ok(cert)
    }

    /// Ensure the user holds a live session (login on first touch or after
    /// expiry/revocation) — the "credentials refresh transparently at
    /// connect time" path legitimate clients use.
    pub fn ensure_session(&mut self, db: &UserDb, user: Uid) -> Result<SignedToken, CredError> {
        let live = self
            .sessions
            .get(&user)
            .and_then(|v| v.values().rev().find(|t| self.validate_token(t).is_ok()));
        let token = match live {
            Some(t) => *t,
            // Re-login; enrolled users present their current window code.
            None => return self.login_auto(db, user),
        };
        // Certificates are shorter-lived than tokens: a live session may
        // still need its cert re-minted before ssh succeeds.
        let cert_live = self
            .certs
            .get(&user)
            .is_some_and(|c| self.validate_cert(c).is_ok());
        if !cert_live {
            self.mint_ssh_cert(&token)?;
        }
        Ok(token)
    }

    // ------------------------------------------------------------------
    // Verification (hot path)
    // ------------------------------------------------------------------

    // analyze:hot-path-begin(broker-validate)
    /// Validate a presented bearer token: signature, realm, window,
    /// revocation. Returns the authenticated uid.
    pub fn validate_token(&self, token: &SignedToken) -> Result<Uid, CredError> {
        self.ca.verify_token(token, self.now)?;
        if self.revocations.is_revoked(token.serial) {
            return Err(CredError::Revoked(token.serial));
        }
        Ok(token.user)
    }

    /// Validate a presented SSH certificate. Returns the principal uid.
    pub fn validate_cert(&self, cert: &SshCertificate) -> Result<Uid, CredError> {
        self.ca.verify_cert(cert, self.now)?;
        if self.revocations.is_revoked(cert.serial) {
            return Err(CredError::Revoked(cert.serial));
        }
        Ok(cert.user)
    }

    /// Validate a serial known to the broker (portal sessions keep only the
    /// serial after login). O(log) via the serial-keyed session index —
    /// constant-time in the user's concurrent-session count, however many
    /// tabs and tokens they hold.
    pub fn validate_serial(&self, user: Uid, serial: CredSerial) -> Result<(), CredError> {
        if self.revocations.is_revoked(serial) {
            return Err(CredError::Revoked(serial));
        }
        match self.sessions.get(&user).and_then(|v| v.get(&serial)) {
            Some(t) => self.ca.verify_token(t, self.now).map(|_| ()),
            None => Err(CredError::NoCredential(user)),
        }
    }

    /// sshd account phase: does this principal hold a live, unrevoked SSH
    /// certificate right now?
    pub fn authorize_ssh(&self, user: Uid) -> Result<(), CredError> {
        let cert = self.certs.get(&user).ok_or(CredError::NoCredential(user))?;
        self.validate_cert(cert).map(|_| ())
    }

    /// Scheduler submission gate: does this principal hold a live, unrevoked
    /// bearer token right now?
    pub fn authorize_submit(&self, user: Uid) -> Result<(), CredError> {
        self.authorize_submit_at(user, self.now)
    }

    /// Submission gate for a job arriving at `at` (>= now): the token must
    /// be unrevoked now and inside its window at the arrival instant, so a
    /// future-dated submission cannot outlive its credential.
    pub fn authorize_submit_at(&self, user: Uid, at: SimTime) -> Result<(), CredError> {
        let when = if at > self.now { at } else { self.now };
        let mut last = CredError::NoCredential(user);
        for token in self
            .sessions
            .get(&user)
            .into_iter()
            .flat_map(|v| v.values())
            .rev()
        {
            if self.revocations.is_revoked(token.serial) {
                last = CredError::Revoked(token.serial);
                continue;
            }
            match self.ca.verify_token(token, when) {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
        }
        Err(last)
    }
    // analyze:hot-path-end

    /// The user's live certificate, if any (probes use this to model theft).
    pub fn current_cert(&self, user: Uid) -> Option<SshCertificate> {
        self.certs.get(&user).copied()
    }

    /// The user's most recent token, if any (highest serial = newest).
    pub fn current_token(&self, user: Uid) -> Option<SignedToken> {
        self.sessions
            .get(&user)
            .and_then(|v| v.values().next_back().copied())
    }

    // ------------------------------------------------------------------
    // Revocation & lifecycle
    // ------------------------------------------------------------------

    /// Revoke one serial (immediate; irreversible). Returns true the first
    /// time, false if it was already revoked.
    pub fn revoke_serial(&mut self, serial: CredSerial) -> bool {
        self.revocations.revoke(serial)
    }

    /// Revoke every live credential of a user (incident response / logout).
    /// Returns the serials newly revoked, in revocation order — the
    /// sharded plane uses this to keep its plane-level delta log aligned
    /// with the per-shard lists.
    pub fn revoke_user(&mut self, user: Uid) -> Vec<CredSerial> {
        let mut revoked = Vec::new();
        for (serial, _) in self.sessions.remove(&user).unwrap_or_default() {
            if self.revocations.revoke(serial) {
                revoked.push(serial);
            }
        }
        if let Some(c) = self.certs.remove(&user) {
            if self.revocations.revoke(c.serial) {
                revoked.push(c.serial);
            }
        }
        revoked
    }

    /// Drop expired *and revoked* sessions and certificates; returns how
    /// many entries the sweep removed. (Both kinds already fail validation —
    /// the sweep bounds the table sizes, as a production broker must.
    /// Revoked-but-unexpired entries used to survive until their window
    /// lapsed, so a busy logout cycle grew the tables between sweeps.)
    pub fn sweep_expired(&mut self) -> usize {
        let now = self.now;
        let before = self.live_sessions() + self.certs.len();
        for tokens in self.sessions.values_mut() {
            tokens.retain(|serial, t| now < t.expires && !self.revocations.is_revoked(*serial));
        }
        self.sessions.retain(|_, tokens| !tokens.is_empty());
        self.certs
            .retain(|_, c| now < c.expires && !self.revocations.is_revoked(c.serial));
        before - (self.live_sessions() + self.certs.len())
    }

    /// Number of live (unswept) session tokens across all users.
    pub fn live_sessions(&self) -> usize {
        self.sessions.values().map(BTreeMap::len).sum()
    }

    // ------------------------------------------------------------------
    // Fault injection (eus-chaos)
    // ------------------------------------------------------------------

    /// Take the identity provider down (or back up). While down, every
    /// assertion path fails with [`CredError::Unavailable`]; validation of
    /// already-minted credentials keeps serving.
    pub fn set_idp_available(&mut self, up: bool) {
        self.idp_available = up;
    }

    /// Whether the identity provider is currently serving assertions.
    pub fn idp_available(&self) -> bool {
        self.idp_available
    }

    /// Take the certificate authority down (or back up). While down,
    /// minting fails with [`CredError::Unavailable`]; verification is local
    /// key material and keeps serving.
    pub fn set_ca_available(&mut self, up: bool) {
        self.ca_available = up;
    }

    /// Whether the certificate authority is currently minting.
    pub fn ca_available(&self) -> bool {
        self.ca_available
    }
}

impl CredentialPlane for CredentialBroker {
    fn realm(&self) -> RealmId {
        CredentialBroker::realm(self)
    }
    fn now(&self) -> SimTime {
        CredentialBroker::now(self)
    }
    fn advance_to(&mut self, t: SimTime) {
        CredentialBroker::advance_to(self, t)
    }
    fn login(
        &mut self,
        db: &UserDb,
        user: Uid,
        mfa: Option<MfaCode>,
    ) -> Result<SignedToken, CredError> {
        CredentialBroker::login(self, db, user, mfa)
    }
    fn login_auto(&mut self, db: &UserDb, user: Uid) -> Result<SignedToken, CredError> {
        CredentialBroker::login_auto(self, db, user)
    }
    fn mint_ssh_cert(&mut self, token: &SignedToken) -> Result<SshCertificate, CredError> {
        CredentialBroker::mint_ssh_cert(self, token)
    }
    fn ensure_session(&mut self, db: &UserDb, user: Uid) -> Result<SignedToken, CredError> {
        CredentialBroker::ensure_session(self, db, user)
    }
    fn validate_token(&self, token: &SignedToken) -> Result<Uid, CredError> {
        let t0 = self.stats.begin();
        let r = CredentialBroker::validate_token(self, token);
        self.stats.finish(t0, r.is_ok());
        r
    }
    fn validate_cert(&self, cert: &SshCertificate) -> Result<Uid, CredError> {
        let t0 = self.stats.begin();
        let r = CredentialBroker::validate_cert(self, cert);
        self.stats.finish(t0, r.is_ok());
        r
    }
    fn validate_serial(&self, user: Uid, serial: CredSerial) -> Result<(), CredError> {
        CredentialBroker::validate_serial(self, user, serial)
    }
    fn validate_stats(&self) -> Option<&ValidateStats> {
        Some(&self.stats)
    }
    fn trace_buffer(&self) -> Option<&TraceBuffer> {
        Some(&self.trace)
    }
    fn authorize_ssh(&self, user: Uid) -> Result<(), CredError> {
        CredentialBroker::authorize_ssh(self, user)
    }
    fn authorize_submit(&self, user: Uid) -> Result<(), CredError> {
        CredentialBroker::authorize_submit(self, user)
    }
    fn authorize_submit_at(&self, user: Uid, at: SimTime) -> Result<(), CredError> {
        CredentialBroker::authorize_submit_at(self, user, at)
    }
    fn current_cert(&self, user: Uid) -> Option<SshCertificate> {
        CredentialBroker::current_cert(self, user)
    }
    fn current_token(&self, user: Uid) -> Option<SignedToken> {
        CredentialBroker::current_token(self, user)
    }
    fn revoke_serial(&mut self, serial: CredSerial) {
        CredentialBroker::revoke_serial(self, serial);
    }
    fn revoke_user(&mut self, user: Uid) {
        CredentialBroker::revoke_user(self, user);
    }
    fn sweep_expired(&mut self) -> usize {
        CredentialBroker::sweep_expired(self)
    }
    fn live_sessions(&self) -> usize {
        CredentialBroker::live_sessions(self)
    }
    fn enroll_mfa(&mut self, user: Uid, mfa: Option<MfaCode>) -> Result<MfaEnrollment, CredError> {
        let now = self.now;
        self.idp.enroll_mfa_stepup(user, mfa, now)
    }
    fn login_recovery(
        &mut self,
        db: &UserDb,
        user: Uid,
        code: RecoveryCode,
    ) -> Result<SignedToken, CredError> {
        CredentialBroker::login_recovery(self, db, user, code)
    }
    fn unenroll_mfa(&mut self, user: Uid, mfa: Option<MfaCode>) -> Result<(), CredError> {
        let now = self.now;
        self.idp.unenroll_mfa(user, mfa, now)
    }
    fn mfa_challenged(&self, user: Uid) -> bool {
        self.idp.is_challenged(user)
    }
    fn current_mfa_code(&self, user: Uid) -> Option<MfaCode> {
        self.idp.current_code(user, self.now)
    }
    fn revocation_head(&self) -> u64 {
        self.revocations.head()
    }
    fn revocations_since(&self, since: u64) -> Vec<CredSerial> {
        self.revocations.entries_since(since).to_vec()
    }
    fn compact_revocations_below(&mut self, upto: u64) -> u64 {
        self.revocations.compact_below(upto)
    }
    fn revocation_floor(&self) -> u64 {
        self.revocations.floor()
    }
    fn revocation_snapshot(&self) -> Vec<CredSerial> {
        self.revocations.snapshot()
    }
    fn set_idp_available(&mut self, up: bool) {
        CredentialBroker::set_idp_available(self, up)
    }
    fn idp_available(&self) -> bool {
        CredentialBroker::idp_available(self)
    }
    fn set_ca_available(&mut self, up: bool) {
        CredentialBroker::set_ca_available(self, up)
    }
    fn ca_available(&self) -> bool {
        CredentialBroker::ca_available(self)
    }
    fn verifier(&self) -> RealmVerifier {
        RealmVerifier::new(self.realm(), vec![self.ca.clone()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (UserDb, CredentialBroker, Uid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = CredentialBroker::new(RealmId(1), 11, BrokerPolicy::default());
        (db, broker, alice)
    }

    #[test]
    fn login_validate_revoke_cycle() {
        let (db, mut b, alice) = setup();
        let t = b.login(&db, alice, None).unwrap();
        assert_eq!(b.validate_token(&t).unwrap(), alice);
        assert!(b.authorize_submit(alice).is_ok());
        assert!(b.authorize_ssh(alice).is_ok());

        b.revoke_user(alice);
        assert_eq!(b.validate_token(&t), Err(CredError::Revoked(t.serial)));
        assert!(b.authorize_submit(alice).is_err());
        assert!(b.authorize_ssh(alice).is_err());
    }

    #[test]
    fn expiry_is_enforced_and_swept() {
        let (db, mut b, alice) = setup();
        let t = b.login(&db, alice, None).unwrap();
        b.advance_to(t.expires);
        assert_eq!(
            b.validate_token(&t),
            Err(CredError::Expired { until: t.expires })
        );
        assert!(b.authorize_ssh(alice).is_err(), "cert TTL < token TTL");
        assert_eq!(b.live_sessions(), 1);
        assert_eq!(b.sweep_expired(), 2, "token + cert removed");
        assert_eq!(b.live_sessions(), 0);
    }

    #[test]
    fn sweep_drops_revoked_but_unexpired_entries() {
        // Regression: serial-level revocation (the portal-logout path) left
        // the session entry resident until its 12h window lapsed, so the
        // table grew unboundedly between expiry sweeps.
        let (db, mut b, alice) = setup();
        let t1 = b.login(&db, alice, None).unwrap();
        let t2 = b.login(&db, alice, None).unwrap();
        b.revoke_serial(t1.serial);
        assert_eq!(b.live_sessions(), 2, "revoked entry still resident");
        // The sweep removes the revoked token but keeps the live one and
        // the (unrevoked) cert.
        assert_eq!(b.sweep_expired(), 1);
        assert_eq!(b.live_sessions(), 1);
        assert!(b.validate_token(&t2).is_ok());
        assert!(b.authorize_ssh(alice).is_ok(), "cert untouched");
        // Revoking the cert's serial sweeps the cert too.
        let cert = b.current_cert(alice).unwrap();
        b.revoke_serial(cert.serial);
        assert_eq!(b.sweep_expired(), 1);
        assert!(b.authorize_ssh(alice).is_err());
    }

    #[test]
    fn ensure_session_refreshes_only_when_needed() {
        let (db, mut b, alice) = setup();
        let t1 = b.ensure_session(&db, alice).unwrap();
        let t2 = b.ensure_session(&db, alice).unwrap();
        assert_eq!(t1.serial, t2.serial, "live session is reused");
        b.advance_to(t1.expires);
        let t3 = b.ensure_session(&db, alice).unwrap();
        assert_ne!(t1.serial, t3.serial, "expired session re-issued");
        assert!(b.validate_token(&t3).is_ok());
    }

    #[test]
    fn ensure_session_remints_cert_after_cert_only_expiry() {
        let (db, mut b, alice) = setup();
        let t = b.ensure_session(&db, alice).unwrap();
        let cert = b.current_cert(alice).unwrap();
        // Cert TTL (1h) < token TTL (12h): advance past the cert only.
        b.advance_to(cert.expires);
        assert!(b.authorize_ssh(alice).is_err(), "cert lapsed");
        let t2 = b.ensure_session(&db, alice).unwrap();
        assert_eq!(t.serial, t2.serial, "token still live, not re-issued");
        assert!(b.authorize_ssh(alice).is_ok(), "cert re-minted");
    }

    #[test]
    fn mfa_enrolled_users_can_refresh_transparently() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut b = CredentialBroker::new(
            RealmId(1),
            11,
            BrokerPolicy {
                require_mfa: true,
                ..BrokerPolicy::default()
            },
        );
        b.idp.enroll_mfa(alice);
        // Explicit login without a code is refused...
        assert_eq!(b.login(&db, alice, None), Err(CredError::MfaRequired));
        // ...but the transparent paths present the current window code.
        let t = b.ensure_session(&db, alice).unwrap();
        assert!(b.validate_token(&t).is_ok());
        b.advance_to(t.expires);
        assert!(b.ensure_session(&db, alice).is_ok(), "refresh after expiry");
    }

    #[test]
    fn concurrent_sessions_stay_independently_valid() {
        let (db, mut b, alice) = setup();
        let t1 = b.login(&db, alice, None).unwrap();
        let t2 = b.login(&db, alice, None).unwrap();
        assert!(b.validate_token(&t1).is_ok(), "first tab still logged in");
        assert!(b.validate_token(&t2).is_ok());
        assert!(b.validate_serial(alice, t1.serial).is_ok());
        assert_eq!(b.live_sessions(), 2);
        // Incident response still kills everything at once.
        b.revoke_user(alice);
        assert!(b.validate_token(&t1).is_err());
        assert!(b.validate_token(&t2).is_err());
    }

    #[test]
    fn future_arrivals_are_gated_by_the_window_at_arrival() {
        let (db, mut b, alice) = setup();
        let t = b.login(&db, alice, None).unwrap();
        assert!(b.authorize_submit_at(alice, b.now()).is_ok());
        assert_eq!(
            b.authorize_submit_at(alice, t.expires),
            Err(CredError::Expired { until: t.expires }),
            "a job arriving after the token lapses must be refused at submit"
        );
    }

    #[test]
    fn cross_realm_token_rejected() {
        let (db, mut home, alice) = setup();
        home.login(&db, alice, None).unwrap();
        // A sister site with its own IdP/CA mints a token for the same uid.
        let mut foreign = CredentialBroker::new(RealmId(2), 99, BrokerPolicy::default());
        let foreign_token = foreign.login(&db, alice, None).unwrap();
        assert_eq!(
            home.validate_token(&foreign_token),
            Err(CredError::RealmMismatch {
                ours: RealmId(1),
                theirs: RealmId(2),
            })
        );
    }

    #[test]
    fn many_concurrent_sessions_stay_indexed_by_serial() {
        // The serial-keyed index must keep every behavior of the old Vec:
        // oldest-first ordering, newest-token lookup, all-sessions revoke —
        // while making per-serial validation a map hit.
        let (db, mut b, alice) = setup();
        let tokens: Vec<_> = (0..500)
            .map(|_| b.login(&db, alice, None).unwrap())
            .collect();
        assert_eq!(b.live_sessions(), 500);
        for t in &tokens {
            assert!(b.validate_serial(alice, t.serial).is_ok());
            assert_eq!(b.validate_token(t).unwrap(), alice);
        }
        assert_eq!(
            b.current_token(alice).unwrap().serial,
            tokens.last().unwrap().serial,
            "newest token = highest serial"
        );
        // Revoking one serial touches only that session.
        b.revoke_serial(tokens[250].serial);
        assert!(b.validate_serial(alice, tokens[250].serial).is_err());
        assert!(b.validate_serial(alice, tokens[251].serial).is_ok());
        assert_eq!(b.sweep_expired(), 1);
        assert_eq!(b.live_sessions(), 499);
        // Incident response still kills everything.
        b.revoke_user(alice);
        assert_eq!(b.live_sessions(), 0);
        assert!(tokens.iter().all(|t| b.validate_token(t).is_err()));
    }

    #[test]
    fn outage_refuses_issuance_but_not_validation() {
        let (db, mut b, alice) = setup();
        let t = b.login(&db, alice, None).unwrap();
        b.set_idp_available(false);
        assert_eq!(b.login(&db, alice, None), Err(CredError::Unavailable));
        assert_eq!(
            b.validate_token(&t).unwrap(),
            alice,
            "minted tokens keep validating through the outage"
        );
        assert!(b.authorize_submit(alice).is_ok());
        b.set_idp_available(true);
        assert!(b.login(&db, alice, None).is_ok(), "heal restores issuance");
        b.set_ca_available(false);
        assert_eq!(b.mint_ssh_cert(&t), Err(CredError::Unavailable));
        assert_eq!(
            b.login(&db, alice, None),
            Err(CredError::Unavailable),
            "login needs the CA to mint"
        );
        assert!(b.validate_token(&t).is_ok());
        b.set_ca_available(true);
        assert!(b.mint_ssh_cert(&t).is_ok());
    }

    #[test]
    fn serial_validation_tracks_session_and_revocation() {
        let (db, mut b, alice) = setup();
        let t = b.login(&db, alice, None).unwrap();
        assert!(b.validate_serial(alice, t.serial).is_ok());
        assert!(b.validate_serial(alice, CredSerial(9999)).is_err());
        b.revoke_serial(t.serial);
        assert_eq!(
            b.validate_serial(alice, t.serial),
            Err(CredError::Revoked(t.serial))
        );
    }
}
