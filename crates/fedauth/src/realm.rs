//! Realms and identity assertion: the federation half of the companion
//! paper. Each participating site is a *realm*; its identity provider (IdP)
//! authenticates local users — optionally requiring a second factor — and
//! emits a realm-stamped assertion the [`crate::CertificateAuthority`]
//! exchanges for short-lived credentials.

use crate::ca::CredError;
use eus_simcore::{SimRng, SimTime};
use eus_simos::{Uid, UserDb};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A federation realm (one per participating site / identity domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RealmId(pub u32);

impl fmt::Display for RealmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "realm{}", self.0)
    }
}

/// An enrolled second-factor secret (the simulated TOTP seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MfaSecret(pub u64);

/// A one-time code derived from a secret and a time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MfaCode(pub u32);

/// A single-use MFA recovery code, issued at enrollment and burned on use
/// (the "print these and keep them in a drawer" codes real portals hand
/// out for the lost-authenticator day).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecoveryCode(pub u64);

/// How many recovery codes each enrollment issues.
pub const RECOVERY_CODE_COUNT: usize = 8;

/// Everything a successful MFA enrollment hands back: the shared secret
/// (the QR-code moment) and the single-use recovery codes, both shown
/// exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MfaEnrollment {
    /// The TOTP seed.
    pub secret: MfaSecret,
    /// Single-use recovery codes; each works once, in any order.
    pub recovery: Vec<RecoveryCode>,
}

/// Width of the one-time-code window.
const MFA_WINDOW_US: u64 = 30_000_000;

/// Derive the valid code for a secret in a given window (TOTP-shaped: a
/// keyed mix of the secret and the 30-second window counter).
pub fn mfa_code_for_window(secret: MfaSecret, window: u64) -> MfaCode {
    let z = crate::splitmix64(secret.0 ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    MfaCode((z % 1_000_000) as u32)
}

/// Derive the valid code for a secret at an instant.
pub fn mfa_code_at(secret: MfaSecret, now: SimTime) -> MfaCode {
    mfa_code_for_window(secret, now.as_micros() / MFA_WINDOW_US)
}

/// Does `presented` match the code for the window containing `now`, or for
/// an adjacent window (±1)? Real TOTP validators accept one step of clock
/// skew so a code read just before a window boundary still works when it is
/// typed just after the boundary.
fn mfa_code_matches(secret: MfaSecret, presented: MfaCode, now: SimTime) -> bool {
    let window = now.as_micros() / MFA_WINDOW_US;
    let lo = window.saturating_sub(1);
    (lo..=window + 1).any(|w| presented == mfa_code_for_window(secret, w))
}

/// A successful identity assertion: "this realm vouches that `user` proved
/// who they are at `asserted_at`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityAssertion {
    /// The asserting realm.
    pub realm: RealmId,
    /// The asserted local identity.
    pub user: Uid,
    /// When the assertion was made.
    pub asserted_at: SimTime,
    /// Whether a second factor was verified.
    pub mfa_verified: bool,
}

/// A realm's identity provider.
#[derive(Debug, Clone)]
pub struct IdentityProvider {
    /// The realm this IdP speaks for.
    pub realm: RealmId,
    /// Whether enrolled users must present a one-time code at login.
    pub require_mfa: bool,
    enrolled: BTreeMap<Uid, MfaSecret>,
    /// Users whose enrollment is individually binding (portal self-service
    /// opt-in): challenged even when the realm policy does not require MFA.
    enforced: BTreeSet<Uid>,
    /// Unburned recovery codes per user (issued at enrollment, single-use).
    recovery: BTreeMap<Uid, BTreeSet<u64>>,
    rng: SimRng,
}

impl IdentityProvider {
    /// An IdP for `realm` with a seeded secret stream.
    pub fn new(realm: RealmId, seed: u64) -> Self {
        IdentityProvider {
            realm,
            require_mfa: false,
            enrolled: BTreeMap::new(),
            enforced: BTreeSet::new(),
            recovery: BTreeMap::new(),
            rng: SimRng::seed_from_u64(seed ^ 0xFEDA_0001),
        }
    }

    /// Require a second factor from enrolled users.
    pub fn with_mfa_required(mut self) -> Self {
        self.require_mfa = true;
        self
    }

    /// Enroll a user's second factor; returns the shared secret. The factor
    /// is challenged only when the realm policy requires MFA — see
    /// [`enroll_mfa_enforced`](Self::enroll_mfa_enforced) for the binding
    /// self-service opt-in.
    pub fn enroll_mfa(&mut self, user: Uid) -> MfaSecret {
        let secret = MfaSecret(self.rng.range_u64(1, u64::MAX));
        self.enrolled.insert(user, secret);
        secret
    }

    /// Enroll a user's second factor *and* make it binding for that user:
    /// from the next login on, this user is challenged even if the realm
    /// policy does not require MFA. This is the portal's `enroll_mfa`
    /// self-service flow.
    pub fn enroll_mfa_enforced(&mut self, user: Uid) -> MfaSecret {
        let secret = self.enroll_mfa(user);
        self.enforced.insert(user);
        secret
    }

    /// Binding enrollment with step-up: a user who *already holds* a
    /// second-factor secret — enforced or not — must present a current
    /// one-time code before the secret is rebound (otherwise one stolen
    /// session token would let an attacker swap in their own authenticator,
    /// locking the owner out and downgrading the second factor to
    /// single-token security). First-time enrollment rides on the
    /// authenticated session alone, as real portals' security pages do.
    ///
    /// Issues a fresh set of [`RECOVERY_CODE_COUNT`] single-use recovery
    /// codes; any codes from a previous enrollment are voided.
    pub fn enroll_mfa_stepup(
        &mut self,
        user: Uid,
        mfa: Option<MfaCode>,
        now: SimTime,
    ) -> Result<MfaEnrollment, CredError> {
        if let Some(secret) = self.enrolled.get(&user).copied() {
            let presented = mfa.ok_or(CredError::MfaRequired)?;
            if !mfa_code_matches(secret, presented, now) {
                return Err(CredError::MfaInvalid);
            }
        }
        let secret = self.enroll_mfa_enforced(user);
        let recovery = self.mint_recovery_codes(user);
        Ok(MfaEnrollment { secret, recovery })
    }

    /// Mint a fresh recovery-code set for a user, voiding any previous set.
    fn mint_recovery_codes(&mut self, user: Uid) -> Vec<RecoveryCode> {
        let mut set = BTreeSet::new();
        while set.len() < RECOVERY_CODE_COUNT {
            set.insert(self.rng.range_u64(1, u64::MAX));
        }
        let codes: Vec<RecoveryCode> = set.iter().map(|&c| RecoveryCode(c)).collect();
        self.recovery.insert(user, set);
        codes
    }

    /// Burn a recovery code: true exactly once per issued code. A burned,
    /// foreign, or never-issued code returns false (and consumes nothing).
    pub fn consume_recovery(&mut self, user: Uid, code: RecoveryCode) -> bool {
        self.recovery
            .get_mut(&user)
            .is_some_and(|set| set.remove(&code.0))
    }

    /// Unburned recovery codes remaining for a user.
    pub fn recovery_codes_left(&self, user: Uid) -> usize {
        self.recovery.get(&user).map_or(0, BTreeSet::len)
    }

    /// Remove a user's second factor. Step-up-gated exactly like rebinding:
    /// an enrolled user must present a current one-time code, so a stolen
    /// session token alone cannot strip the account down to single-factor.
    /// Unenrolling voids the remaining recovery codes. A no-op (Ok) for
    /// users with no enrolled factor.
    pub fn unenroll_mfa(
        &mut self,
        user: Uid,
        mfa: Option<MfaCode>,
        now: SimTime,
    ) -> Result<(), CredError> {
        let Some(secret) = self.enrolled.get(&user).copied() else {
            return Ok(());
        };
        let presented = mfa.ok_or(CredError::MfaRequired)?;
        if !mfa_code_matches(secret, presented, now) {
            return Err(CredError::MfaInvalid);
        }
        self.enrolled.remove(&user);
        self.enforced.remove(&user);
        self.recovery.remove(&user);
        Ok(())
    }

    /// Whether the user has an enrolled second factor.
    pub fn is_enrolled(&self, user: Uid) -> bool {
        self.enrolled.contains_key(&user)
    }

    /// Whether this user will be challenged at the next login (realm policy
    /// or binding self-enrollment).
    pub fn is_challenged(&self, user: Uid) -> bool {
        self.is_enrolled(user) && (self.require_mfa || self.enforced.contains(&user))
    }

    /// The current window code for an enrolled user — the simulation's
    /// stand-in for the user reading their authenticator out of band.
    pub fn current_code(&self, user: Uid, now: SimTime) -> Option<MfaCode> {
        self.enrolled.get(&user).map(|s| mfa_code_at(*s, now))
    }

    /// Authenticate `user` against the account database (site SSO assumed,
    /// as in `eus-portal`) and the MFA policy, emitting an assertion.
    pub fn assert_identity(
        &self,
        db: &UserDb,
        user: Uid,
        mfa: Option<MfaCode>,
        now: SimTime,
    ) -> Result<IdentityAssertion, CredError> {
        if db.user(user).is_none() {
            return Err(CredError::UnknownUser(user));
        }
        let mfa_verified = match (self.is_challenged(user), self.enrolled.get(&user)) {
            (true, Some(secret)) => {
                let presented = mfa.ok_or(CredError::MfaRequired)?;
                // ±1 window of skew, the way real TOTP validators do: a code
                // read at second 29 still works when presented at second 30.
                if !mfa_code_matches(*secret, presented, now) {
                    return Err(CredError::MfaInvalid);
                }
                true
            }
            // MFA not required for this user, or required but the user is
            // not yet enrolled (enrollment happens at first credential
            // issuance on the real system; unenrolled users authenticate
            // single-factor).
            _ => false,
        };
        Ok(IdentityAssertion {
            realm: self.realm,
            user,
            asserted_at: now,
            mfa_verified,
        })
    }

    /// Authenticate with a single-use recovery code in place of the window
    /// code (the lost-authenticator path). The code is burned on success;
    /// a wrong or already-burned code is [`CredError::MfaInvalid`]. Users
    /// with no enrolled factor have no recovery codes and always fail —
    /// recovery is strictly a downgrade path for an existing enrollment,
    /// never a login bypass.
    pub fn assert_identity_recovery(
        &mut self,
        db: &UserDb,
        user: Uid,
        code: RecoveryCode,
        now: SimTime,
    ) -> Result<IdentityAssertion, CredError> {
        if db.user(user).is_none() {
            return Err(CredError::UnknownUser(user));
        }
        if !self.is_enrolled(user) {
            return Err(CredError::NoCredential(user));
        }
        if !self.consume_recovery(user, code) {
            return Err(CredError::MfaInvalid);
        }
        Ok(IdentityAssertion {
            realm: self.realm,
            user,
            asserted_at: now,
            mfa_verified: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simcore::SimDuration;

    fn db_with_alice() -> (UserDb, Uid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        (db, alice)
    }

    #[test]
    fn asserts_known_users_only() {
        let (db, alice) = db_with_alice();
        let idp = IdentityProvider::new(RealmId(1), 7);
        let a = idp
            .assert_identity(&db, alice, None, SimTime::ZERO)
            .unwrap();
        assert_eq!(a.user, alice);
        assert_eq!(a.realm, RealmId(1));
        assert!(!a.mfa_verified);
        assert_eq!(
            idp.assert_identity(&db, Uid(999), None, SimTime::ZERO),
            Err(CredError::UnknownUser(Uid(999)))
        );
    }

    #[test]
    fn mfa_gate_requires_the_window_code() {
        let (db, alice) = db_with_alice();
        let mut idp = IdentityProvider::new(RealmId(1), 7).with_mfa_required();
        let secret = idp.enroll_mfa(alice);
        let now = SimTime::from_secs(45);

        assert_eq!(
            idp.assert_identity(&db, alice, None, now),
            Err(CredError::MfaRequired)
        );
        let wrong = MfaCode(mfa_code_at(secret, now).0.wrapping_add(1) % 1_000_000);
        assert_eq!(
            idp.assert_identity(&db, alice, Some(wrong), now),
            Err(CredError::MfaInvalid)
        );
        let ok = idp
            .assert_identity(&db, alice, Some(mfa_code_at(secret, now)), now)
            .unwrap();
        assert!(ok.mfa_verified);
    }

    #[test]
    fn window_boundary_accepts_one_step_of_skew() {
        // Regression: a code read at second 29 and presented at second 30
        // (the next window) used to be refused outright.
        let (db, alice) = db_with_alice();
        let mut idp = IdentityProvider::new(RealmId(1), 7).with_mfa_required();
        let secret = idp.enroll_mfa(alice);

        let read_at = SimTime::from_secs(29);
        let presented_at = SimTime::from_secs(30);
        let code = mfa_code_at(secret, read_at);
        let ok = idp
            .assert_identity(&db, alice, Some(code), presented_at)
            .unwrap();
        assert!(ok.mfa_verified, "±1 window skew must be accepted");

        // The skew also runs the other way: a code from the *next* window
        // presented just before the boundary (fast client clock).
        let early = mfa_code_at(secret, SimTime::from_secs(31));
        assert!(idp
            .assert_identity(&db, alice, Some(early), SimTime::from_secs(29))
            .is_ok());

        // Two windows back is outside the skew allowance.
        let stale = mfa_code_at(secret, SimTime::ZERO);
        assert_ne!(stale, mfa_code_at(secret, SimTime::from_secs(60)));
        assert_eq!(
            idp.assert_identity(&db, alice, Some(stale), SimTime::from_secs(65)),
            Err(CredError::MfaInvalid),
            "codes older than one window stay dead"
        );
    }

    #[test]
    fn self_enrollment_is_binding_without_realm_policy() {
        // The portal's enroll_mfa flow: realm policy does NOT require MFA,
        // but a user who opted in is challenged from the next login on.
        let (db, alice) = db_with_alice();
        let mut idp = IdentityProvider::new(RealmId(1), 7);
        assert!(!idp.require_mfa);
        let secret = idp.enroll_mfa_enforced(alice);
        assert!(idp.is_challenged(alice));

        let now = SimTime::from_secs(10);
        assert_eq!(
            idp.assert_identity(&db, alice, None, now),
            Err(CredError::MfaRequired)
        );
        let ok = idp
            .assert_identity(&db, alice, Some(mfa_code_at(secret, now)), now)
            .unwrap();
        assert!(ok.mfa_verified);

        // Plain (policy-gated) enrollment stays non-binding when the realm
        // does not require MFA.
        let mut idp2 = IdentityProvider::new(RealmId(1), 8);
        idp2.enroll_mfa(alice);
        assert!(!idp2.is_challenged(alice));
        assert!(idp2.assert_identity(&db, alice, None, now).is_ok());
    }

    #[test]
    fn rebinding_any_enrolled_secret_requires_stepup() {
        // Even a plain (policy-gated, unenforced) secret must be proven
        // before it can be replaced: a stolen session alone cannot swap in
        // the thief's authenticator over any existing factor.
        let (_db, alice) = db_with_alice();
        let mut idp = IdentityProvider::new(RealmId(1), 7);
        let secret = idp.enroll_mfa(alice);
        let now = SimTime::from_secs(40);
        assert_eq!(
            idp.enroll_mfa_stepup(alice, None, now),
            Err(CredError::MfaRequired)
        );
        let rotated = idp
            .enroll_mfa_stepup(alice, Some(mfa_code_at(secret, now)), now)
            .unwrap();
        assert_ne!(rotated.secret, secret);
        assert!(idp.is_challenged(alice), "rotation is binding");
        assert_eq!(rotated.recovery.len(), RECOVERY_CODE_COUNT);
    }

    #[test]
    fn recovery_codes_burn_exactly_once() {
        let (db, alice) = db_with_alice();
        let mut idp = IdentityProvider::new(RealmId(1), 7);
        let enr = idp.enroll_mfa_stepup(alice, None, SimTime::ZERO).unwrap();
        assert_eq!(idp.recovery_codes_left(alice), RECOVERY_CODE_COUNT);
        let code = enr.recovery[0];

        let now = SimTime::from_secs(90);
        let ok = idp.assert_identity_recovery(&db, alice, code, now).unwrap();
        assert!(ok.mfa_verified, "recovery counts as a verified factor");
        assert_eq!(idp.recovery_codes_left(alice), RECOVERY_CODE_COUNT - 1);
        // Second use of the same code is dead.
        assert_eq!(
            idp.assert_identity_recovery(&db, alice, code, now),
            Err(CredError::MfaInvalid)
        );
        // A made-up code never works.
        assert_eq!(
            idp.assert_identity_recovery(&db, alice, RecoveryCode(42), now),
            Err(CredError::MfaInvalid)
        );
        // Re-enrollment voids the old set and issues a fresh one.
        let now_code = mfa_code_at(enr.secret, now);
        let enr2 = idp.enroll_mfa_stepup(alice, Some(now_code), now).unwrap();
        assert_eq!(idp.recovery_codes_left(alice), RECOVERY_CODE_COUNT);
        assert_eq!(
            idp.assert_identity_recovery(&db, alice, enr.recovery[1], now),
            Err(CredError::MfaInvalid),
            "old-set codes are voided by re-enrollment"
        );
        assert!(idp
            .assert_identity_recovery(&db, alice, enr2.recovery[0], now)
            .is_ok());
    }

    #[test]
    fn recovery_is_not_a_bypass_for_unenrolled_users() {
        let (db, alice) = db_with_alice();
        let mut idp = IdentityProvider::new(RealmId(1), 7);
        assert_eq!(
            idp.assert_identity_recovery(&db, alice, RecoveryCode(1), SimTime::ZERO),
            Err(CredError::NoCredential(alice))
        );
    }

    #[test]
    fn unenroll_requires_stepup_and_voids_recovery() {
        let (db, alice) = db_with_alice();
        let mut idp = IdentityProvider::new(RealmId(1), 7);
        let enr = idp.enroll_mfa_stepup(alice, None, SimTime::ZERO).unwrap();
        let now = SimTime::from_secs(40);

        // A stolen session alone cannot strip the factor.
        assert_eq!(
            idp.unenroll_mfa(alice, None, now),
            Err(CredError::MfaRequired)
        );
        let wrong = MfaCode(mfa_code_at(enr.secret, now).0.wrapping_add(1) % 1_000_000);
        assert_eq!(
            idp.unenroll_mfa(alice, Some(wrong), now),
            Err(CredError::MfaInvalid)
        );

        // With the current code the factor comes off, recovery codes die,
        // and the next login is single-factor again.
        idp.unenroll_mfa(alice, Some(mfa_code_at(enr.secret, now)), now)
            .unwrap();
        assert!(!idp.is_enrolled(alice));
        assert!(!idp.is_challenged(alice));
        assert_eq!(idp.recovery_codes_left(alice), 0);
        assert!(idp.assert_identity(&db, alice, None, now).is_ok());
        // Idempotent once unenrolled.
        assert_eq!(idp.unenroll_mfa(alice, None, now), Ok(()));
    }

    #[test]
    fn codes_rotate_with_the_window() {
        let secret = MfaSecret(99);
        let a = mfa_code_at(secret, SimTime::ZERO);
        let b = mfa_code_at(secret, SimTime::ZERO + SimDuration::from_secs(29));
        let c = mfa_code_at(secret, SimTime::ZERO + SimDuration::from_secs(31));
        assert_eq!(a, b, "same 30s window");
        assert_ne!(a, c, "next window rotates the code");
    }
}
