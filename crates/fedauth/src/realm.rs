//! Realms and identity assertion: the federation half of the companion
//! paper. Each participating site is a *realm*; its identity provider (IdP)
//! authenticates local users — optionally requiring a second factor — and
//! emits a realm-stamped assertion the [`crate::CertificateAuthority`]
//! exchanges for short-lived credentials.

use crate::ca::CredError;
use eus_simcore::{SimRng, SimTime};
use eus_simos::{Uid, UserDb};
use std::collections::BTreeMap;
use std::fmt;

/// A federation realm (one per participating site / identity domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RealmId(pub u32);

impl fmt::Display for RealmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "realm{}", self.0)
    }
}

/// An enrolled second-factor secret (the simulated TOTP seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MfaSecret(pub u64);

/// A one-time code derived from a secret and a time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MfaCode(pub u32);

/// Width of the one-time-code window.
const MFA_WINDOW_US: u64 = 30_000_000;

/// Derive the valid code for a secret at an instant (TOTP-shaped: a keyed
/// mix of the secret and the 30-second window counter).
pub fn mfa_code_at(secret: MfaSecret, now: SimTime) -> MfaCode {
    let window = now.as_micros() / MFA_WINDOW_US;
    let mut z = secret.0 ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    MfaCode(((z ^ (z >> 31)) % 1_000_000) as u32)
}

/// A successful identity assertion: "this realm vouches that `user` proved
/// who they are at `asserted_at`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityAssertion {
    /// The asserting realm.
    pub realm: RealmId,
    /// The asserted local identity.
    pub user: Uid,
    /// When the assertion was made.
    pub asserted_at: SimTime,
    /// Whether a second factor was verified.
    pub mfa_verified: bool,
}

/// A realm's identity provider.
#[derive(Debug, Clone)]
pub struct IdentityProvider {
    /// The realm this IdP speaks for.
    pub realm: RealmId,
    /// Whether enrolled users must present a one-time code at login.
    pub require_mfa: bool,
    enrolled: BTreeMap<Uid, MfaSecret>,
    rng: SimRng,
}

impl IdentityProvider {
    /// An IdP for `realm` with a seeded secret stream.
    pub fn new(realm: RealmId, seed: u64) -> Self {
        IdentityProvider {
            realm,
            require_mfa: false,
            enrolled: BTreeMap::new(),
            rng: SimRng::seed_from_u64(seed ^ 0xFEDA_0001),
        }
    }

    /// Require a second factor from enrolled users.
    pub fn with_mfa_required(mut self) -> Self {
        self.require_mfa = true;
        self
    }

    /// Enroll a user's second factor; returns the shared secret.
    pub fn enroll_mfa(&mut self, user: Uid) -> MfaSecret {
        let secret = MfaSecret(self.rng.range_u64(1, u64::MAX));
        self.enrolled.insert(user, secret);
        secret
    }

    /// Whether the user has an enrolled second factor.
    pub fn is_enrolled(&self, user: Uid) -> bool {
        self.enrolled.contains_key(&user)
    }

    /// The current window code for an enrolled user — the simulation's
    /// stand-in for the user reading their authenticator out of band.
    pub fn current_code(&self, user: Uid, now: SimTime) -> Option<MfaCode> {
        self.enrolled.get(&user).map(|s| mfa_code_at(*s, now))
    }

    /// Authenticate `user` against the account database (site SSO assumed,
    /// as in `eus-portal`) and the MFA policy, emitting an assertion.
    pub fn assert_identity(
        &self,
        db: &UserDb,
        user: Uid,
        mfa: Option<MfaCode>,
        now: SimTime,
    ) -> Result<IdentityAssertion, CredError> {
        if db.user(user).is_none() {
            return Err(CredError::UnknownUser(user));
        }
        let mfa_verified = match (self.require_mfa, self.enrolled.get(&user)) {
            (true, Some(secret)) => {
                let presented = mfa.ok_or(CredError::MfaRequired)?;
                if presented != mfa_code_at(*secret, now) {
                    return Err(CredError::MfaInvalid);
                }
                true
            }
            // MFA not required, or required but the user is not yet enrolled
            // (enrollment happens at first credential issuance on the real
            // system; unenrolled users authenticate single-factor).
            _ => false,
        };
        Ok(IdentityAssertion {
            realm: self.realm,
            user,
            asserted_at: now,
            mfa_verified,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eus_simcore::SimDuration;

    fn db_with_alice() -> (UserDb, Uid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        (db, alice)
    }

    #[test]
    fn asserts_known_users_only() {
        let (db, alice) = db_with_alice();
        let idp = IdentityProvider::new(RealmId(1), 7);
        let a = idp
            .assert_identity(&db, alice, None, SimTime::ZERO)
            .unwrap();
        assert_eq!(a.user, alice);
        assert_eq!(a.realm, RealmId(1));
        assert!(!a.mfa_verified);
        assert_eq!(
            idp.assert_identity(&db, Uid(999), None, SimTime::ZERO),
            Err(CredError::UnknownUser(Uid(999)))
        );
    }

    #[test]
    fn mfa_gate_requires_the_window_code() {
        let (db, alice) = db_with_alice();
        let mut idp = IdentityProvider::new(RealmId(1), 7).with_mfa_required();
        let secret = idp.enroll_mfa(alice);
        let now = SimTime::from_secs(45);

        assert_eq!(
            idp.assert_identity(&db, alice, None, now),
            Err(CredError::MfaRequired)
        );
        let wrong = MfaCode(mfa_code_at(secret, now).0.wrapping_add(1) % 1_000_000);
        assert_eq!(
            idp.assert_identity(&db, alice, Some(wrong), now),
            Err(CredError::MfaInvalid)
        );
        let ok = idp
            .assert_identity(&db, alice, Some(mfa_code_at(secret, now)), now)
            .unwrap();
        assert!(ok.mfa_verified);
    }

    #[test]
    fn codes_rotate_with_the_window() {
        let secret = MfaSecret(99);
        let a = mfa_code_at(secret, SimTime::ZERO);
        let b = mfa_code_at(secret, SimTime::ZERO + SimDuration::from_secs(29));
        let c = mfa_code_at(secret, SimTime::ZERO + SimDuration::from_secs(31));
        assert_eq!(a, b, "same 30s window");
        assert_ne!(a, c, "next window rotates the code");
    }
}
