//! `pam_fedauth`: the sshd account-phase module. Login to any node requires
//! a live, unrevoked SSH certificate from the realm's broker — the
//! companion paper's replacement for `authorized_keys` files, and the hook
//! that makes a stolen long-lived key worthless once its short-lived
//! certificate lapses.

use crate::plane::SharedBroker;
use eus_simos::pam::{PamContext, PamModule, PamVerdict};

/// The PAM module; holds a shared broker handle like `PamSlurm` holds the
/// scheduler.
pub struct PamFedAuth {
    broker: SharedBroker,
}

impl PamFedAuth {
    /// Bind to the realm broker.
    pub fn new(broker: SharedBroker) -> Self {
        PamFedAuth { broker }
    }
}

impl PamModule for PamFedAuth {
    fn name(&self) -> &str {
        "pam_fedauth"
    }

    fn account(&self, ctx: &PamContext) -> PamVerdict {
        // Root logs in via the console/host keys, outside the federation.
        if ctx.cred.is_root() {
            return PamVerdict::Success;
        }
        let guard = self.broker.read();
        // Entry point: mint a trace root around the authorization (free
        // when the plane keeps no buffer or tracing is off).
        let tok = match guard.trace_buffer() {
            Some(tb) => tb.root("cred.pam.account", guard.now()),
            None => eus_obs::TraceToken::NOOP,
        };
        let r = guard.authorize_ssh(ctx.user);
        if let Some(tb) = guard.trace_buffer() {
            tb.finish_with(tok, guard.now(), ctx.user.0 as u64);
        }
        match r {
            Ok(()) => PamVerdict::Success,
            Err(e) => PamVerdict::Denied(format!("no valid ssh certificate: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{BrokerPolicy, CredentialBroker};
    use crate::plane::shared_broker;
    use crate::realm::RealmId;
    use eus_simos::{NodeId, NodeOs, UserDb, ROOT_UID};

    #[test]
    fn login_requires_live_certificate() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            3,
            BrokerPolicy::default(),
        ));
        let mut node = NodeOs::new(NodeId(1), "login1");
        node.pam.push(Box::new(PamFedAuth::new(broker.clone())));

        // No credential yet: denied.
        assert!(node.login(&db, alice, "sshd").is_err());
        // After federated login: allowed.
        broker.write().login(&db, alice, None).unwrap();
        assert!(node.login(&db, alice, "sshd").is_ok());
        // Root is exempt.
        assert!(node.login(&db, ROOT_UID, "sshd").is_ok());
    }

    #[test]
    fn expired_certificate_shuts_the_door() {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let broker = shared_broker(CredentialBroker::new(
            RealmId(1),
            3,
            BrokerPolicy::default(),
        ));
        let mut node = NodeOs::new(NodeId(1), "login1");
        node.pam.push(Box::new(PamFedAuth::new(broker.clone())));

        broker.write().login(&db, alice, None).unwrap();
        assert!(node.login(&db, alice, "sshd").is_ok());
        let expiry = broker.read().current_cert(alice).unwrap().expires;
        broker.write().advance_to(expiry);
        assert!(
            node.login(&db, alice, "sshd").is_err(),
            "certificate lapsed; the stolen key alone no longer works"
        );
    }
}
