//! Multi-realm trust: the federation half of *Securing HPC using Federated
//! Authentication* at more than one site.
//!
//! PR 1's identity plane was single-realm: any credential whose realm
//! differed from the verifier's was refused with `RealmMismatch`. Real
//! federations are richer — a site *chooses* which sister realms it trusts.
//! [`TrustPolicy`] is that choice (an explicit realm allow-list), and
//! [`FederationDirectory`] holds the per-realm credential planes plus each
//! site's policy, so a token minted by a trusted sister realm validates at
//! the home site — against the *issuer's* CA key and revocation list —
//! while credentials from realms off the allow-list still fail closed
//! (the `CrossRealmSpoof` audit channel stays blocked).

use crate::ca::{CredError, SignedToken, SshCertificate};
use crate::plane::SharedBroker;
use crate::realm::RealmId;
use eus_simcore::SimTime;
use eus_simos::Uid;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A site's explicit realm allow-list: which sister realms' credentials it
/// accepts. The home realm is always trusted; everything else is opt-in
/// (fail closed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustPolicy {
    home: RealmId,
    trusted: BTreeSet<RealmId>,
}

impl TrustPolicy {
    /// The PR-1 behavior: trust only the home realm.
    pub fn home_only(home: RealmId) -> Self {
        TrustPolicy {
            home,
            trusted: BTreeSet::new(),
        }
    }

    /// Builder: also trust a sister realm.
    pub fn with_trusted(mut self, realm: RealmId) -> Self {
        self.trust(realm);
        self
    }

    /// Add a sister realm to the allow-list.
    pub fn trust(&mut self, realm: RealmId) {
        if realm != self.home {
            self.trusted.insert(realm);
        }
    }

    /// The policy's home realm.
    pub fn home(&self) -> RealmId {
        self.home
    }

    /// Is `realm` acceptable at this site?
    pub fn trusts(&self, realm: RealmId) -> bool {
        realm == self.home || self.trusted.contains(&realm)
    }

    /// The allow-listed sister realms (home excluded).
    pub fn trusted_realms(&self) -> impl Iterator<Item = RealmId> + '_ {
        self.trusted.iter().copied()
    }
}

impl fmt::Display for TrustPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{{", self.home)?;
        for (i, r) in self.trusted.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{r}")?;
        }
        f.write_str("}")
    }
}

/// The federation directory: per-realm credential planes plus each site's
/// trust policy. Validation of a foreign credential is delegated to the
/// *issuing* realm's plane — its CA key verifies the signature and its
/// revocation list is consulted — but only after the verifying site's
/// [`TrustPolicy`] allow-lists the issuer.
#[derive(Default)]
pub struct FederationDirectory {
    planes: BTreeMap<RealmId, SharedBroker>,
    trust: BTreeMap<RealmId, TrustPolicy>,
}

impl FederationDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a realm's credential plane and its trust policy. Replaces
    /// any previous registration for the realm. Panics if the plane or the
    /// policy was built for a different realm — a mis-registration would
    /// otherwise surface later as a baffling `RealmMismatch` on every
    /// credential the allow-listed realm mints.
    pub fn register(&mut self, realm: RealmId, plane: SharedBroker, trust: TrustPolicy) {
        assert_eq!(trust.home(), realm, "policy home must match the realm");
        assert_eq!(
            plane.read().realm(),
            realm,
            "plane must be built for the realm it is registered under"
        );
        self.planes.insert(realm, plane);
        self.trust.insert(realm, trust);
    }

    /// The registered realms, in order.
    pub fn realms(&self) -> impl Iterator<Item = RealmId> + '_ {
        self.planes.keys().copied()
    }

    /// A realm's credential plane, if registered.
    pub fn plane(&self, realm: RealmId) -> Option<&SharedBroker> {
        self.planes.get(&realm)
    }

    /// A realm's trust policy, if registered.
    pub fn trust_policy(&self, realm: RealmId) -> Option<&TrustPolicy> {
        self.trust.get(&realm)
    }

    /// The trust gate both validators share: resolve the issuing realm's
    /// plane for a credential presented at `site`, failing closed when the
    /// site is unregistered, the issuer is off the site's allow-list, or
    /// the issuer has no registered plane.
    fn issuer_for(&self, site: RealmId, issuer: RealmId) -> Result<&SharedBroker, CredError> {
        let policy = self.trust.get(&site).ok_or(CredError::UnknownRealm(site))?;
        if !policy.trusts(issuer) {
            return Err(CredError::UntrustedRealm {
                ours: site,
                theirs: issuer,
            });
        }
        self.planes
            .get(&issuer)
            .ok_or(CredError::UnknownRealm(issuer))
    }

    /// Validate a bearer token presented at `site`. Home-realm tokens take
    /// the usual path; a trusted sister realm's token is verified by its
    /// issuer (signature under the issuer's CA key, issuer's revocation
    /// list); realms off the allow-list — or realms nobody registered —
    /// fail closed.
    pub fn validate_token_at(&self, site: RealmId, token: &SignedToken) -> Result<Uid, CredError> {
        self.issuer_for(site, token.realm)?
            .read()
            .validate_token(token)
    }

    /// Validate an SSH certificate presented at `site`; same trust rules as
    /// [`validate_token_at`](Self::validate_token_at).
    pub fn validate_cert_at(&self, site: RealmId, cert: &SshCertificate) -> Result<Uid, CredError> {
        self.issuer_for(site, cert.realm)?
            .read()
            .validate_cert(cert)
    }

    /// Advance every registered plane's clock (the federation runs on one
    /// simulated clock).
    pub fn advance_to(&mut self, t: SimTime) {
        for plane in self.planes.values() {
            plane.write().advance_to(t);
        }
    }
}

impl fmt::Debug for FederationDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FederationDirectory")
            .field("realms", &self.planes.keys().collect::<Vec<_>>())
            .field("trust", &self.trust.values().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{BrokerPolicy, CredentialBroker};
    use crate::plane::shared_broker;
    use eus_simos::UserDb;

    fn federation() -> (UserDb, FederationDirectory, Uid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut dir = FederationDirectory::new();
        // Home (1) trusts sister (2) but not (3).
        dir.register(
            RealmId(1),
            shared_broker(CredentialBroker::new(
                RealmId(1),
                10,
                BrokerPolicy::default(),
            )),
            TrustPolicy::home_only(RealmId(1)).with_trusted(RealmId(2)),
        );
        dir.register(
            RealmId(2),
            shared_broker(CredentialBroker::new(
                RealmId(2),
                20,
                BrokerPolicy::default(),
            )),
            TrustPolicy::home_only(RealmId(2)),
        );
        dir.register(
            RealmId(3),
            shared_broker(CredentialBroker::new(
                RealmId(3),
                30,
                BrokerPolicy::default(),
            )),
            TrustPolicy::home_only(RealmId(3)),
        );
        (db, dir, alice)
    }

    #[test]
    fn trusted_sister_realm_token_validates_at_home() {
        let (db, dir, alice) = federation();
        let sister = dir.plane(RealmId(2)).unwrap().clone();
        let token = sister.write().login(&db, alice, None).unwrap();
        assert_eq!(dir.validate_token_at(RealmId(1), &token).unwrap(), alice);
        // Trust is directional: realm 2 does not trust realm 1 back.
        let home = dir.plane(RealmId(1)).unwrap().clone();
        let home_token = home.write().login(&db, alice, None).unwrap();
        assert_eq!(
            dir.validate_token_at(RealmId(2), &home_token),
            Err(CredError::UntrustedRealm {
                ours: RealmId(2),
                theirs: RealmId(1),
            })
        );
    }

    #[test]
    fn untrusted_and_unknown_realms_fail_closed() {
        let (db, dir, alice) = federation();
        // Registered but off the allow-list.
        let r3 = dir.plane(RealmId(3)).unwrap().clone();
        let t3 = r3.write().login(&db, alice, None).unwrap();
        assert_eq!(
            dir.validate_token_at(RealmId(1), &t3),
            Err(CredError::UntrustedRealm {
                ours: RealmId(1),
                theirs: RealmId(3),
            })
        );
        // A realm nobody registered.
        let mut rogue = CredentialBroker::new(RealmId(99), 9, BrokerPolicy::default());
        let forged = rogue.login(&db, alice, None).unwrap();
        assert!(dir.validate_token_at(RealmId(1), &forged).is_err());
    }

    #[test]
    fn sister_realm_revocation_is_honored_at_home() {
        let (db, dir, alice) = federation();
        let sister = dir.plane(RealmId(2)).unwrap().clone();
        let token = sister.write().login(&db, alice, None).unwrap();
        assert!(dir.validate_token_at(RealmId(1), &token).is_ok());
        // Incident response at the *issuing* site kills the credential
        // everywhere in the federation.
        sister.write().revoke_user(alice);
        assert_eq!(
            dir.validate_token_at(RealmId(1), &token),
            Err(CredError::Revoked(token.serial))
        );
    }

    #[test]
    fn trusted_realm_cannot_forge_home_tokens() {
        // Trusting realm 2 means accepting tokens realm 2 *mints under its
        // own key* — not letting realm 2 material masquerade as realm 1.
        let (db, dir, alice) = federation();
        let sister = dir.plane(RealmId(2)).unwrap().clone();
        let mut forged = sister.write().login(&db, alice, None).unwrap();
        forged.realm = RealmId(1);
        assert_eq!(
            dir.validate_token_at(RealmId(1), &forged),
            Err(CredError::BadSignature),
            "re-stamped realm must break the issuer signature"
        );
    }

    #[test]
    fn certs_follow_the_same_trust_rules() {
        let (db, dir, alice) = federation();
        let sister = dir.plane(RealmId(2)).unwrap().clone();
        sister.write().login(&db, alice, None).unwrap();
        let cert = sister.read().current_cert(alice).unwrap();
        assert_eq!(dir.validate_cert_at(RealmId(1), &cert).unwrap(), alice);
        let r3 = dir.plane(RealmId(3)).unwrap().clone();
        r3.write().login(&db, alice, None).unwrap();
        let cert3 = r3.read().current_cert(alice).unwrap();
        assert!(matches!(
            dir.validate_cert_at(RealmId(1), &cert3),
            Err(CredError::UntrustedRealm { .. })
        ));
    }
}
