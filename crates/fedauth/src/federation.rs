//! Multi-realm trust: the federation half of *Securing HPC using Federated
//! Authentication* at more than one site.
//!
//! PR 1's identity plane was single-realm: any credential whose realm
//! differed from the verifier's was refused with `RealmMismatch`. Real
//! federations are richer — a site *chooses* which sister realms it trusts.
//! [`TrustPolicy`] is that choice (an explicit realm allow-list), and
//! [`FederationDirectory`] holds the per-realm credential planes plus each
//! site's policy, so a token minted by a trusted sister realm validates at
//! the home site — against the *issuer's* CA key and revocation list —
//! while credentials from realms off the allow-list still fail closed
//! (the `CrossRealmSpoof` audit channel stays blocked).

use crate::ca::{CredError, SignedToken, SshCertificate};
use crate::plane::SharedBroker;
use crate::realm::RealmId;
use eus_simcore::SimTime;
use eus_simos::Uid;
use std::collections::BTreeMap;
use std::fmt;

/// A site's explicit realm allow-list: which sister realms' credentials it
/// accepts. The home realm is always trusted; everything else is opt-in
/// (fail closed). An entry may carry an expiry on the simulation clock —
/// the time-boxed collaboration: once `expires_at` passes, the realm's
/// credentials are refused with [`CredError::TrustExpired`] until trust is
/// re-granted (rotation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustPolicy {
    home: RealmId,
    /// Allow-listed sister realms; `None` = permanent, `Some(t)` = trusted
    /// strictly before `t`.
    trusted: BTreeMap<RealmId, Option<SimTime>>,
}

impl TrustPolicy {
    /// The PR-1 behavior: trust only the home realm.
    pub fn home_only(home: RealmId) -> Self {
        TrustPolicy {
            home,
            trusted: BTreeMap::new(),
        }
    }

    /// Builder: also trust a sister realm, permanently.
    pub fn with_trusted(mut self, realm: RealmId) -> Self {
        self.trust(realm);
        self
    }

    /// Builder: also trust a sister realm until `expires_at`.
    pub fn with_trusted_until(mut self, realm: RealmId, expires_at: SimTime) -> Self {
        self.trust_until(realm, expires_at);
        self
    }

    /// Add a sister realm to the allow-list, permanently (replaces any
    /// time-boxed entry — rotation extends, it never shortens by accident).
    pub fn trust(&mut self, realm: RealmId) {
        if realm != self.home {
            self.trusted.insert(realm, None);
        }
    }

    /// Add a sister realm to the allow-list until `expires_at` (exclusive):
    /// the time-boxed collaboration. Replaces any previous entry for the
    /// realm, so re-granting with a later expiry is the rotation path.
    pub fn trust_until(&mut self, realm: RealmId, expires_at: SimTime) {
        if realm != self.home {
            self.trusted.insert(realm, Some(expires_at));
        }
    }

    /// The policy's home realm.
    pub fn home(&self) -> RealmId {
        self.home
    }

    /// Is `realm` acceptable at this site at instant `now`? Expired entries
    /// answer no, exactly like realms never listed.
    pub fn trusts_at(&self, realm: RealmId, now: SimTime) -> bool {
        self.gate(realm, now).is_ok()
    }

    /// The full trust decision for a credential from `realm` presented at
    /// `now`: `Ok` when allow-listed and unexpired, the precise refusal
    /// otherwise (expired trust is distinguishable from never-granted trust
    /// so operators can tell a lapsed collaboration from an attack).
    pub fn gate(&self, realm: RealmId, now: SimTime) -> Result<(), CredError> {
        if realm == self.home {
            return Ok(());
        }
        match self.trusted.get(&realm) {
            Some(None) => Ok(()),
            Some(Some(expires_at)) if now < *expires_at => Ok(()),
            Some(Some(expires_at)) => Err(CredError::TrustExpired {
                realm,
                expired_at: *expires_at,
            }),
            None => Err(CredError::UntrustedRealm {
                ours: self.home,
                theirs: realm,
            }),
        }
    }

    /// When trust in `realm` lapses: `Some(t)` for a time-boxed entry,
    /// `None` for a permanent entry or a realm not listed at all.
    pub fn trust_expires_at(&self, realm: RealmId) -> Option<SimTime> {
        self.trusted.get(&realm).copied().flatten()
    }

    /// The allow-listed sister realms (home excluded), including entries
    /// whose expiry has already passed.
    pub fn trusted_realms(&self) -> impl Iterator<Item = RealmId> + '_ {
        self.trusted.keys().copied()
    }
}

impl fmt::Display for TrustPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{{", self.home)?;
        for (i, (r, exp)) in self.trusted.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match exp {
                None => write!(f, "{r}")?,
                Some(t) => write!(f, "{r}<{t}")?,
            }
        }
        f.write_str("}")
    }
}

/// The federation directory: per-realm credential planes plus each site's
/// trust policy. Validation of a foreign credential is delegated to the
/// *issuing* realm's plane — its CA key verifies the signature and its
/// revocation list is consulted — but only after the verifying site's
/// [`TrustPolicy`] allow-lists the issuer.
#[derive(Default)]
pub struct FederationDirectory {
    planes: BTreeMap<RealmId, SharedBroker>,
    trust: BTreeMap<RealmId, TrustPolicy>,
}

impl FederationDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a realm's credential plane and its trust policy. Replaces
    /// any previous registration for the realm. Panics if the plane or the
    /// policy was built for a different realm — a mis-registration would
    /// otherwise surface later as a baffling `RealmMismatch` on every
    /// credential the allow-listed realm mints.
    pub fn register(&mut self, realm: RealmId, plane: SharedBroker, trust: TrustPolicy) {
        assert_eq!(trust.home(), realm, "policy home must match the realm");
        assert_eq!(
            plane.read().realm(),
            realm,
            "plane must be built for the realm it is registered under"
        );
        self.planes.insert(realm, plane);
        self.trust.insert(realm, trust);
    }

    /// The registered realms, in order.
    pub fn realms(&self) -> impl Iterator<Item = RealmId> + '_ {
        self.planes.keys().copied()
    }

    /// A realm's credential plane, if registered.
    pub fn plane(&self, realm: RealmId) -> Option<&SharedBroker> {
        self.planes.get(&realm)
    }

    /// A realm's trust policy, if registered.
    pub fn trust_policy(&self, realm: RealmId) -> Option<&TrustPolicy> {
        self.trust.get(&realm)
    }

    /// The policy half of validation, exposed for replica-backed
    /// validators: is a credential from `issuer` acceptable at `site`
    /// *right now*? Fails closed for unregistered sites, realms off the
    /// allow-list, and lapsed time-boxed trust. `now` is the site's plane
    /// clock (the whole federation ticks on one simulated clock).
    pub fn trust_gate(&self, site: RealmId, issuer: RealmId) -> Result<(), CredError> {
        let policy = self.trust.get(&site).ok_or(CredError::UnknownRealm(site))?;
        let now = self
            .planes
            .get(&site)
            .map(|p| p.read().now())
            .unwrap_or(SimTime::ZERO);
        policy.gate(issuer, now)
    }

    /// Grant (or rotate) the `site` policy's trust in `realm` after
    /// registration: permanent when `expires_at` is `None`, time-boxed
    /// otherwise. Panics if the site is not registered.
    pub fn trust_realm_until(
        &mut self,
        site: RealmId,
        realm: RealmId,
        expires_at: Option<SimTime>,
    ) {
        let policy = self.trust.get_mut(&site).expect("site must be registered");
        match expires_at {
            Some(t) => policy.trust_until(realm, t),
            None => policy.trust(realm),
        }
    }

    /// The trust gate both validators share: resolve the issuing realm's
    /// plane for a credential presented at `site`, failing closed when the
    /// site is unregistered, the issuer is off the site's allow-list (or
    /// its trust entry expired), or the issuer has no registered plane.
    fn issuer_for(&self, site: RealmId, issuer: RealmId) -> Result<&SharedBroker, CredError> {
        self.trust_gate(site, issuer)?;
        self.planes
            .get(&issuer)
            .ok_or(CredError::UnknownRealm(issuer))
    }

    /// Validate a bearer token presented at `site`. Home-realm tokens take
    /// the usual path; a trusted sister realm's token is verified by its
    /// issuer (signature under the issuer's CA key, issuer's revocation
    /// list); realms off the allow-list — or realms nobody registered —
    /// fail closed.
    pub fn validate_token_at(&self, site: RealmId, token: &SignedToken) -> Result<Uid, CredError> {
        self.issuer_for(site, token.realm)?
            .read()
            .validate_token(token)
    }

    /// Validate an SSH certificate presented at `site`; same trust rules as
    /// [`validate_token_at`](Self::validate_token_at).
    pub fn validate_cert_at(&self, site: RealmId, cert: &SshCertificate) -> Result<Uid, CredError> {
        self.issuer_for(site, cert.realm)?
            .read()
            .validate_cert(cert)
    }

    /// Advance every registered plane's clock (the federation runs on one
    /// simulated clock).
    pub fn advance_to(&mut self, t: SimTime) {
        for plane in self.planes.values() {
            plane.write().advance_to(t);
        }
    }
}

impl fmt::Debug for FederationDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FederationDirectory")
            .field("realms", &self.planes.keys().collect::<Vec<_>>())
            .field("trust", &self.trust.values().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{BrokerPolicy, CredentialBroker};
    use crate::plane::shared_broker;
    use eus_simos::UserDb;

    fn federation() -> (UserDb, FederationDirectory, Uid) {
        let mut db = UserDb::new();
        let alice = db.create_user("alice").unwrap();
        let mut dir = FederationDirectory::new();
        // Home (1) trusts sister (2) but not (3).
        dir.register(
            RealmId(1),
            shared_broker(CredentialBroker::new(
                RealmId(1),
                10,
                BrokerPolicy::default(),
            )),
            TrustPolicy::home_only(RealmId(1)).with_trusted(RealmId(2)),
        );
        dir.register(
            RealmId(2),
            shared_broker(CredentialBroker::new(
                RealmId(2),
                20,
                BrokerPolicy::default(),
            )),
            TrustPolicy::home_only(RealmId(2)),
        );
        dir.register(
            RealmId(3),
            shared_broker(CredentialBroker::new(
                RealmId(3),
                30,
                BrokerPolicy::default(),
            )),
            TrustPolicy::home_only(RealmId(3)),
        );
        (db, dir, alice)
    }

    #[test]
    fn trusted_sister_realm_token_validates_at_home() {
        let (db, dir, alice) = federation();
        let sister = dir.plane(RealmId(2)).unwrap().clone();
        let token = sister.write().login(&db, alice, None).unwrap();
        assert_eq!(dir.validate_token_at(RealmId(1), &token).unwrap(), alice);
        // Trust is directional: realm 2 does not trust realm 1 back.
        let home = dir.plane(RealmId(1)).unwrap().clone();
        let home_token = home.write().login(&db, alice, None).unwrap();
        assert_eq!(
            dir.validate_token_at(RealmId(2), &home_token),
            Err(CredError::UntrustedRealm {
                ours: RealmId(2),
                theirs: RealmId(1),
            })
        );
    }

    #[test]
    fn untrusted_and_unknown_realms_fail_closed() {
        let (db, dir, alice) = federation();
        // Registered but off the allow-list.
        let r3 = dir.plane(RealmId(3)).unwrap().clone();
        let t3 = r3.write().login(&db, alice, None).unwrap();
        assert_eq!(
            dir.validate_token_at(RealmId(1), &t3),
            Err(CredError::UntrustedRealm {
                ours: RealmId(1),
                theirs: RealmId(3),
            })
        );
        // A realm nobody registered.
        let mut rogue = CredentialBroker::new(RealmId(99), 9, BrokerPolicy::default());
        let forged = rogue.login(&db, alice, None).unwrap();
        assert!(dir.validate_token_at(RealmId(1), &forged).is_err());
    }

    #[test]
    fn sister_realm_revocation_is_honored_at_home() {
        let (db, dir, alice) = federation();
        let sister = dir.plane(RealmId(2)).unwrap().clone();
        let token = sister.write().login(&db, alice, None).unwrap();
        assert!(dir.validate_token_at(RealmId(1), &token).is_ok());
        // Incident response at the *issuing* site kills the credential
        // everywhere in the federation.
        sister.write().revoke_user(alice);
        assert_eq!(
            dir.validate_token_at(RealmId(1), &token),
            Err(CredError::Revoked(token.serial))
        );
    }

    #[test]
    fn trusted_realm_cannot_forge_home_tokens() {
        // Trusting realm 2 means accepting tokens realm 2 *mints under its
        // own key* — not letting realm 2 material masquerade as realm 1.
        let (db, dir, alice) = federation();
        let sister = dir.plane(RealmId(2)).unwrap().clone();
        let mut forged = sister.write().login(&db, alice, None).unwrap();
        forged.realm = RealmId(1);
        assert_eq!(
            dir.validate_token_at(RealmId(1), &forged),
            Err(CredError::BadSignature),
            "re-stamped realm must break the issuer signature"
        );
    }

    #[test]
    fn time_boxed_trust_expires_closed_and_rotates() {
        use eus_simcore::SimDuration;
        let (db, mut dir, alice) = federation();
        let horizon = SimTime::from_secs(3600);
        // Re-grant realm 3 as a time-boxed collaboration at the home site.
        dir.trust_realm_until(RealmId(1), RealmId(3), Some(horizon));
        let r3 = dir.plane(RealmId(3)).unwrap().clone();
        let token = r3.write().login(&db, alice, None).unwrap();
        assert_eq!(dir.validate_token_at(RealmId(1), &token).unwrap(), alice);

        // The instant the box closes, the same token fails closed — with an
        // error naming the lapsed trust, not a generic refusal.
        dir.advance_to(horizon);
        assert_eq!(
            dir.validate_token_at(RealmId(1), &token),
            Err(CredError::TrustExpired {
                realm: RealmId(3),
                expired_at: horizon,
            })
        );

        // Rotation: re-granting with a later expiry restores acceptance.
        dir.trust_realm_until(
            RealmId(1),
            RealmId(3),
            Some(horizon + SimDuration::from_secs(3600)),
        );
        assert_eq!(dir.validate_token_at(RealmId(1), &token).unwrap(), alice);
        // And a permanent upgrade never lapses.
        dir.trust_realm_until(RealmId(1), RealmId(3), None);
        assert_eq!(
            dir.trust_policy(RealmId(1))
                .unwrap()
                .trust_expires_at(RealmId(3)),
            None
        );
    }

    #[test]
    fn certs_follow_the_same_trust_rules() {
        let (db, dir, alice) = federation();
        let sister = dir.plane(RealmId(2)).unwrap().clone();
        sister.write().login(&db, alice, None).unwrap();
        let cert = sister.read().current_cert(alice).unwrap();
        assert_eq!(dir.validate_cert_at(RealmId(1), &cert).unwrap(), alice);
        let r3 = dir.plane(RealmId(3)).unwrap().clone();
        r3.write().login(&db, alice, None).unwrap();
        let cert3 = r3.read().current_cert(alice).unwrap();
        assert!(matches!(
            dir.validate_cert_at(RealmId(1), &cert3),
            Err(CredError::UntrustedRealm { .. })
        ));
    }
}
