//! # eus-fedauth — federated identity & credential lifecycle
//!
//! Reproduction of the identity layer from the companion paper *Securing HPC
//! using Federated Authentication* (Prout et al., 2019): every service on the
//! cluster stops trusting raw uids and long-lived keys, and instead consults
//! centrally-issued, **short-lived** credentials — signed bearer tokens for
//! the portal and job submission, SSH certificates for interactive access —
//! minted by a per-site [`CertificateAuthority`] after an
//! [`IdentityProvider`] assertion (optionally MFA-gated), and revocable in
//! O(1) on the verification hot path.
//!
//! This closes the "stolen long-lived credential" class of cross-user
//! channels that the base paper's mechanisms do not address, and is the
//! prerequisite for serving many sites/users through one identity plane:
//! every credential is bound to a [`RealmId`], so a uid from one site can
//! never be replayed against another.
//!
//! * [`realm`] — realms, identity assertion, MFA (±1-window TOTP skew,
//!   binding self-service enrollment).
//! * [`ca`] — the certificate authority: signed tokens and SSH certificates
//!   with validity windows on the simulation clock.
//! * [`revocation`] — the O(1) revocation list, plus the sequence-numbered
//!   append-only delta log that `eus-revsync` replicates between realms.
//! * [`broker`] — the [`CredentialBroker`] every enforcement point consults
//!   (sshd PAM, scheduler submission, portal fetch).
//! * [`plane`] — the [`CredentialPlane`] trait those enforcement points
//!   code against, so single and sharded brokers interchange freely.
//! * [`shard`] — [`ShardedBroker`]: N uid-hashed shards with disjoint
//!   serial spaces and shard-parallel batch verification, for
//!   millions-of-sessions scale.
//! * [`federation`] — [`TrustPolicy`] realm allow-lists and the
//!   [`FederationDirectory`] that lets a trusted sister realm's credential
//!   validate at the home site while untrusted realms fail closed.
//! * [`pam`] — [`PamFedAuth`], the sshd account-phase module.
//!
//! ```
//! use eus_fedauth::{BrokerPolicy, CredentialBroker, RealmId};
//! use eus_simos::UserDb;
//!
//! let mut db = UserDb::new();
//! let alice = db.create_user("alice").unwrap();
//! let mut broker = CredentialBroker::new(RealmId(1), 42, BrokerPolicy::default());
//! let token = broker.login(&db, alice, None).unwrap();
//! assert_eq!(broker.validate_token(&token).unwrap(), alice);
//! broker.revoke_serial(token.serial);
//! assert!(broker.validate_token(&token).is_err());
//! ```

#![warn(missing_docs)]

pub mod broker;
pub mod ca;
pub mod federation;
pub mod obs;
pub mod pam;
pub mod plane;
pub mod realm;
pub mod revocation;
pub mod shard;

pub use broker::{BrokerPolicy, CredentialBroker};
pub use ca::{
    CertificateAuthority, CredError, CredSerial, RealmVerifier, SignedToken, SshCertificate,
};
pub use federation::{FederationDirectory, TrustPolicy};
pub use obs::ValidateStats;
pub use pam::PamFedAuth;
pub use plane::{shared_broker, CredentialPlane, SharedBroker};
pub use realm::{
    IdentityAssertion, IdentityProvider, MfaCode, MfaEnrollment, MfaSecret, RealmId, RecoveryCode,
    RECOVERY_CODE_COUNT,
};
pub use revocation::RevocationList;
pub use shard::ShardedBroker;

/// splitmix64 finalizer: the identity plane's one bit-mixing primitive
/// (uid→shard routing, TOTP window codes, the portal's keyed token fold).
/// Kept in one place so the constants cannot drift between call sites.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
