//! # eus-fedauth — federated identity & credential lifecycle
//!
//! Reproduction of the identity layer from the companion paper *Securing HPC
//! using Federated Authentication* (Prout et al., 2019): every service on the
//! cluster stops trusting raw uids and long-lived keys, and instead consults
//! centrally-issued, **short-lived** credentials — signed bearer tokens for
//! the portal and job submission, SSH certificates for interactive access —
//! minted by a per-site [`CertificateAuthority`] after an
//! [`IdentityProvider`] assertion (optionally MFA-gated), and revocable in
//! O(1) on the verification hot path.
//!
//! This closes the "stolen long-lived credential" class of cross-user
//! channels that the base paper's mechanisms do not address, and is the
//! prerequisite for serving many sites/users through one identity plane:
//! every credential is bound to a [`RealmId`], so a uid from one site can
//! never be replayed against another.
//!
//! * [`realm`] — realms, identity assertion, MFA.
//! * [`ca`] — the certificate authority: signed tokens and SSH certificates
//!   with validity windows on the simulation clock.
//! * [`revocation`] — the O(1) revocation list.
//! * [`broker`] — the [`CredentialBroker`] every enforcement point consults
//!   (sshd PAM, scheduler submission, portal fetch).
//! * [`pam`] — [`PamFedAuth`], the sshd account-phase module.
//!
//! ```
//! use eus_fedauth::{BrokerPolicy, CredentialBroker, RealmId};
//! use eus_simos::UserDb;
//!
//! let mut db = UserDb::new();
//! let alice = db.create_user("alice").unwrap();
//! let mut broker = CredentialBroker::new(RealmId(1), 42, BrokerPolicy::default());
//! let token = broker.login(&db, alice, None).unwrap();
//! assert_eq!(broker.validate_token(&token).unwrap(), alice);
//! broker.revoke_serial(token.serial);
//! assert!(broker.validate_token(&token).is_err());
//! ```

#![warn(missing_docs)]

pub mod broker;
pub mod ca;
pub mod pam;
pub mod realm;
pub mod revocation;

pub use broker::{shared_broker, BrokerPolicy, CredentialBroker, SharedBroker};
pub use ca::{CertificateAuthority, CredError, CredSerial, SignedToken, SshCertificate};
pub use pam::PamFedAuth;
pub use realm::{IdentityAssertion, IdentityProvider, MfaCode, MfaSecret, RealmId};
pub use revocation::RevocationList;
