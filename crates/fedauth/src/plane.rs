//! The [`CredentialPlane`] trait: the one surface every enforcement point
//! (sshd PAM, the scheduler submission gate, the portal) codes against, so a
//! deployment can swap a single [`crate::CredentialBroker`] for a
//! [`crate::ShardedBroker`] — or any future plane — without touching the
//! callers.
//!
//! The trait is object-safe on purpose: [`SharedBroker`] is an
//! `Arc<RwLock<Box<dyn CredentialPlane>>>`, and the PAM stacks, scheduler,
//! and portal all hold that handle.

use crate::ca::{CredError, CredSerial, RealmVerifier, SignedToken, SshCertificate};
use crate::obs::ValidateStats;
use crate::realm::{MfaCode, MfaEnrollment, RealmId, RecoveryCode};
use eus_obs::TraceBuffer;
use eus_simcore::SimTime;
use eus_simos::{Uid, UserDb};
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// A credential plane: issuance, verification, revocation, and lifecycle of
/// short-lived federated credentials for one realm.
///
/// Implemented by [`crate::CredentialBroker`] (one broker, one table) and
/// [`crate::ShardedBroker`] (N uid-hashed shards, for millions of sessions).
/// All methods are behaviorally identical across implementations — the
/// property tests in `tests/federation_properties.rs` assert observational
/// equivalence over arbitrary op sequences.
pub trait CredentialPlane: fmt::Debug + Send + Sync {
    /// The plane's realm.
    fn realm(&self) -> RealmId;

    /// The plane's current clock.
    fn now(&self) -> SimTime;

    /// Advance the clock (monotonic; driven by the cluster simulation).
    fn advance_to(&mut self, t: SimTime);

    /// Federated login: assert identity (MFA per policy), mint a bearer
    /// token and an SSH certificate, and record them as a live session.
    fn login(
        &mut self,
        db: &UserDb,
        user: Uid,
        mfa: Option<MfaCode>,
    ) -> Result<SignedToken, CredError>;

    /// [`login`](Self::login) with the second factor supplied by the
    /// simulation (enrolled users "type" the current window code).
    fn login_auto(&mut self, db: &UserDb, user: Uid) -> Result<SignedToken, CredError>;

    /// Mint a fresh SSH certificate against a live bearer token.
    fn mint_ssh_cert(&mut self, token: &SignedToken) -> Result<SshCertificate, CredError>;

    /// Ensure the user holds a live session (login on first touch or after
    /// expiry/revocation).
    fn ensure_session(&mut self, db: &UserDb, user: Uid) -> Result<SignedToken, CredError>;

    /// Validate a presented bearer token: signature, realm, window,
    /// revocation. Returns the authenticated uid.
    fn validate_token(&self, token: &SignedToken) -> Result<Uid, CredError>;

    /// Validate a presented SSH certificate. Returns the principal uid.
    fn validate_cert(&self, cert: &SshCertificate) -> Result<Uid, CredError>;

    /// Validate a serial known to the plane (portal sessions keep only the
    /// serial after login).
    fn validate_serial(&self, user: Uid, serial: CredSerial) -> Result<(), CredError>;

    /// sshd account phase: live, unrevoked SSH certificate right now?
    fn authorize_ssh(&self, user: Uid) -> Result<(), CredError>;

    /// Scheduler submission gate: live, unrevoked bearer token right now?
    fn authorize_submit(&self, user: Uid) -> Result<(), CredError>;

    /// Submission gate for a job arriving at `at` (>= now).
    fn authorize_submit_at(&self, user: Uid, at: SimTime) -> Result<(), CredError>;

    /// The user's live certificate, if any.
    fn current_cert(&self, user: Uid) -> Option<SshCertificate>;

    /// The user's most recent token, if any.
    fn current_token(&self, user: Uid) -> Option<SignedToken>;

    /// Revoke one serial (immediate; irreversible).
    fn revoke_serial(&mut self, serial: CredSerial);

    /// Revoke every live credential of a user (incident response / logout).
    fn revoke_user(&mut self, user: Uid);

    /// Drop expired *and revoked* sessions/certificates; returns how many
    /// entries were removed.
    fn sweep_expired(&mut self) -> usize;

    /// Number of live (unswept) session tokens across all users.
    fn live_sessions(&self) -> usize;

    /// Enroll a binding second factor for a user (the portal `enroll_mfa`
    /// route): enforced from the next login on, regardless of realm policy.
    /// Re-enrollment of an already-challenged user is step-up-gated: the
    /// current one-time code must be presented, or the rebind is refused.
    /// Returns the secret plus single-use recovery codes, both shown once.
    fn enroll_mfa(&mut self, user: Uid, mfa: Option<MfaCode>) -> Result<MfaEnrollment, CredError>;

    /// Federated login with a single-use recovery code in place of the
    /// window code (the lost-authenticator path); the code is burned on
    /// success.
    fn login_recovery(
        &mut self,
        db: &UserDb,
        user: Uid,
        code: RecoveryCode,
    ) -> Result<SignedToken, CredError>;

    /// Remove a user's second factor; step-up-gated like rebinding (the
    /// current one-time code must be presented). Voids remaining recovery
    /// codes.
    fn unenroll_mfa(&mut self, user: Uid, mfa: Option<MfaCode>) -> Result<(), CredError>;

    /// Whether the user will be MFA-challenged at the next login.
    fn mfa_challenged(&self, user: Uid) -> bool;

    /// The current window code for an enrolled user (the simulation's
    /// stand-in for reading the authenticator out of band).
    fn current_mfa_code(&self, user: Uid) -> Option<MfaCode>;

    /// Validate a batch of tokens. Implementations with internal
    /// parallelism (sharding) override this to fan out; the default checks
    /// sequentially. Result order matches input order.
    fn validate_batch(&self, tokens: &[SignedToken]) -> Vec<Result<Uid, CredError>> {
        tokens.iter().map(|t| self.validate_token(t)).collect()
    }

    // ------------------------------------------------------------------
    // Revocation delta feed (eus-revsync)
    // ------------------------------------------------------------------

    /// Head of the plane's revocation delta log: how many serials have ever
    /// been revoked here (sequence numbers are 1-based and dense, in the
    /// order the revocations were applied through this plane's API).
    fn revocation_head(&self) -> u64;

    /// The delta after sequence number `since`: every serial revoked after
    /// the `since`-th revocation, oldest first. `revocations_since(0)` is
    /// the full log.
    fn revocations_since(&self, since: u64) -> Vec<CredSerial>;

    /// Export this plane's verification capability (realm CA state) so a
    /// sister site can verify signatures locally — the trust-bootstrap key
    /// exchange `eus-revsync` replicas build on.
    fn verifier(&self) -> RealmVerifier;

    /// Truncate delta-log entries with sequence number `<= upto` (log
    /// compaction: the mesh calls this with the minimum frontier every
    /// subscriber has acked past). Membership — the thing verification
    /// reads — is untouched and sequence numbers never renumber. Returns
    /// how many entries were dropped; the default never compacts.
    fn compact_revocations_below(&mut self, upto: u64) -> u64 {
        let _ = upto;
        0
    }

    /// The compaction floor: the highest sequence number truncated out of
    /// the delta log (0 when never compacted). Deltas are only available
    /// for `since >= floor`; below it subscribers re-bootstrap from
    /// [`revocation_snapshot`](Self::revocation_snapshot).
    fn revocation_floor(&self) -> u64 {
        0
    }

    /// The full revoked-serial membership, in a deterministic order: the
    /// bootstrap payload for a subscriber whose frontier fell below the
    /// compaction floor. The default (for planes that never compact) is
    /// the full delta log.
    fn revocation_snapshot(&self) -> Vec<CredSerial> {
        self.revocations_since(0)
    }

    // ------------------------------------------------------------------
    // Fault injection & degraded modes (eus-chaos)
    // ------------------------------------------------------------------

    /// Take the plane's identity provider down (or back up) — fault
    /// injection. While down, assertion paths (login, recovery login,
    /// MFA management) fail with [`CredError::Unavailable`]; validation
    /// of already-minted credentials keeps serving. Default: no-op
    /// (third-party planes without an outage model stay always-up).
    fn set_idp_available(&mut self, up: bool) {
        let _ = up;
    }

    /// Whether the identity provider is currently serving assertions.
    fn idp_available(&self) -> bool {
        true
    }

    /// Take the plane's certificate authority down (or back up) — fault
    /// injection. While down, minting fails with
    /// [`CredError::Unavailable`]; verification is local key material and
    /// keeps serving. Default: no-op.
    fn set_ca_available(&mut self, up: bool) {
        let _ = up;
    }

    /// Whether the certificate authority is currently minting.
    fn ca_available(&self) -> bool {
        true
    }

    /// Seize one shard (fault injection on sharded planes): issuance for
    /// users hashing to that shard fails with
    /// [`CredError::Unavailable`] while every other shard — and all
    /// validation — keeps serving. Returns false when the plane has no
    /// such shard (the single-broker default).
    fn seize_shard(&mut self, shard: usize, seized: bool) -> bool {
        let _ = (shard, seized);
        false
    }

    // ------------------------------------------------------------------
    // Shared-path mutation (per-shard locking)
    // ------------------------------------------------------------------

    /// Login through a shared (`&self`) borrow, for planes with interior
    /// per-shard locking: concurrent logins that land on *different* shards
    /// proceed in parallel while the caller holds the plane-wide lock only
    /// for reading. Returns `None` when the plane has no interior locking
    /// (the caller must fall back to the exclusive
    /// [`login`](Self::login) path).
    fn try_login_shared(
        &self,
        db: &UserDb,
        user: Uid,
        mfa: Option<MfaCode>,
    ) -> Option<Result<SignedToken, CredError>> {
        let _ = (db, user, mfa);
        None
    }

    /// The plane's verify-path statistics ([`ValidateStats`], atomic and
    /// `&self`-recordable), when it keeps any. Both built-in planes do;
    /// the default is `None` so third-party planes owe nothing.
    fn validate_stats(&self) -> Option<&ValidateStats> {
        None
    }

    /// The plane's causal trace ring ([`TraceBuffer`], interior-mutable so
    /// `&self` validate paths can record), when it keeps one. Default
    /// `None`: third-party planes owe nothing, and every traced call site
    /// degrades to a no-op against an absent buffer.
    fn trace_buffer(&self) -> Option<&TraceBuffer> {
        None
    }
}

/// A shared credential-plane handle (PAM stacks, the scheduler, and the
/// portal all hold one). The plane behind it may be a single
/// [`crate::CredentialBroker`] or a [`crate::ShardedBroker`].
pub type SharedBroker = Arc<RwLock<Box<dyn CredentialPlane>>>;

/// Wrap any credential plane for sharing.
pub fn shared_broker<P: CredentialPlane + 'static>(plane: P) -> SharedBroker {
    Arc::new(RwLock::new(Box::new(plane)))
}
