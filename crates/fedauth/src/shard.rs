//! [`ShardedBroker`]: the credential plane at millions-of-sessions scale.
//!
//! One [`CredentialBroker`] keeps every live session in one table behind one
//! lock. For a site serving millions of users that table — and the lock —
//! becomes the bottleneck. The sharded broker partitions sessions, SSH
//! certificates, and revocations across N uid-hashed shards: every per-user
//! operation touches exactly one shard, and batch verification fans out
//! across shards (near-linear in shard count up to the core count, measured
//! by `benches/broker_shard_throughput.rs`).
//!
//! **Per-shard locking.** Each shard sits behind its own `RwLock`, so the
//! plane supports *shared-path mutation*: callers holding the plane-wide
//! lock only for reading can still log users in through
//! [`CredentialPlane::try_login_shared`] — concurrent logins that hash to
//! different shards proceed in parallel instead of serializing on one
//! plane-wide write lock (the ROADMAP follow-on;
//! `benches/broker_shard_throughput.rs` has the measured win). The `&mut`
//! trait methods use lock-free exclusive access (`get_mut`), so the
//! single-threaded paths pay nothing for the locks.
//!
//! Correctness-by-construction details:
//!
//! * each shard's CA mints serials in a disjoint residue class
//!   (`serial % shards == shard index`), so serials stay globally unique and
//!   a serial's owning shard is recoverable without knowing the uid;
//! * every shard shares the realm id, so realm binding (the
//!   `CrossRealmSpoof` defense) is unchanged;
//! * the plane keeps its own plane-level revocation delta log, appended in
//!   the order revocations pass through the plane API — so the feed a
//!   sister realm replicates (`eus-revsync`) is identical whether the
//!   issuer runs one broker or N shards;
//! * the plane is observationally equivalent to a single broker — the same
//!   accept/reject decision for every login/validate/revoke/sweep sequence
//!   (property-tested in `tests/federation_properties.rs`). Token *material*
//!   differs (different seeded streams), decisions never do.

use crate::broker::{BrokerPolicy, CredentialBroker};
use crate::ca::{CredError, CredSerial, RealmVerifier, SignedToken, SshCertificate};
use crate::obs::{ValidateStats, CRED_TRACE_CODE};
use crate::plane::CredentialPlane;
use crate::realm::{MfaCode, MfaEnrollment, RealmId, RecoveryCode};
use eus_obs::TraceBuffer;
use eus_simcore::SimTime;
use eus_simos::{Uid, UserDb};
use parking_lot::RwLock;
use rayon::prelude::*;

/// A credential plane partitioned across N uid-hashed shards, each behind
/// its own lock.
#[derive(Debug)]
pub struct ShardedBroker {
    shards: Vec<RwLock<CredentialBroker>>,
    /// Plane-level revocation delta log: serials in the order revocations
    /// were applied through the plane API (the feed `eus-revsync` ships).
    revocation_order: Vec<CredSerial>,
    /// How many leading plane-log entries have been compacted away (the
    /// oldest retained entry has sequence number `revocation_compacted + 1`).
    revocation_compacted: u64,
    /// Core count sampled once at construction: the batch-path dispatch
    /// decision, without a per-call affinity syscall.
    fanout_threads: usize,
    /// Verify-path statistics (atomic; off by default). Pure measurement —
    /// never consulted by an accept/reject decision.
    pub stats: ValidateStats,
    /// Causal trace ring (off by default). Plane-level, like `stats`, so a
    /// sharded deployment still mints ids from one mint.
    pub trace: TraceBuffer,
}

use crate::splitmix64 as mix;

impl ShardedBroker {
    /// A sharded plane for `realm` with `shards` uid-hashed partitions;
    /// `seed` determines all key/token material (each shard forks its own
    /// stream).
    pub fn new(realm: RealmId, seed: u64, shards: usize, policy: BrokerPolicy) -> Self {
        assert!(shards >= 1, "at least one shard");
        let shards = (0..shards)
            .map(|i| {
                RwLock::new(
                    CredentialBroker::new(realm, mix(seed ^ i as u64), policy)
                        .with_serial_partition(i as u64, shards as u64),
                )
            })
            .collect();
        ShardedBroker {
            shards,
            revocation_order: Vec::new(),
            revocation_compacted: 0,
            fanout_threads: std::thread::available_parallelism().map_or(1, |v| v.get()),
            stats: ValidateStats::new(),
            trace: TraceBuffer::disabled("cred", CRED_TRACE_CODE),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live sessions in the most loaded shard (the table-bound a single
    /// lock actually protects; capacity planning reads this).
    pub fn largest_shard_sessions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().live_sessions())
            .max()
            .unwrap_or(0)
    }

    /// The shard holding `user`'s sessions.
    fn shard_of(&self, user: Uid) -> usize {
        (mix(user.0 as u64) % self.shards.len() as u64) as usize
    }

    /// The lock guarding `user`'s shard — the one indexing site the hot
    /// validate paths share. The index is structurally in bounds:
    /// [`shard_of`](Self::shard_of) reduces modulo `shards.len()` and the
    /// constructor asserts at least one shard.
    fn shard(&self, user: Uid) -> &RwLock<CredentialBroker> {
        &self.shards[self.shard_of(user)]
    }

    /// Exclusive lock-free access to the shard for a user (`&mut self`
    /// paths never contend, so they skip the lock entirely).
    fn shard_mut(&mut self, user: Uid) -> &mut CredentialBroker {
        let i = self.shard_of(user);
        self.shards[i].get_mut()
    }

    /// The shard that minted `serial` (serials are partitioned into residue
    /// classes, so ownership is arithmetic, not a lookup).
    fn shard_of_serial(&self, serial: CredSerial) -> usize {
        (serial.0 % self.shards.len() as u64) as usize
    }

    /// The always-bucketed batch path: tokens bucket by owning shard,
    /// shards verify their buckets concurrently (the rayon shim runs real
    /// scoped-thread fan-out), results scatter back in input order.
    /// [`CredentialPlane::validate_batch`] dispatches here when there is
    /// parallelism to exploit; callers who know better can use it directly.
    pub fn validate_batch_fanout(&self, tokens: &[SignedToken]) -> Vec<Result<Uid, CredError>> {
        let n = self.shards.len();
        let mut buckets: Vec<(usize, Vec<usize>)> = (0..n)
            .map(|s| (s, Vec::with_capacity(tokens.len() / n + 1)))
            .collect();
        for (i, t) in tokens.iter().enumerate() {
            buckets[self.shard_of(t.user)].1.push(i);
        }
        let per_shard: Vec<Vec<(usize, Result<Uid, CredError>)>> = buckets
            .par_iter()
            .map(|(s, idxs)| {
                let shard = self.shards[*s].read();
                idxs.iter()
                    .map(|&i| (i, shard.validate_token(&tokens[i])))
                    .collect()
            })
            .collect();
        let mut out: Vec<Result<Uid, CredError>> = Vec::with_capacity(tokens.len());
        out.resize(tokens.len(), Err(CredError::NoCredential(Uid(0))));
        for bucket in per_shard {
            for (i, r) in bucket {
                out[i] = r;
            }
        }
        out
    }
}

impl CredentialPlane for ShardedBroker {
    fn realm(&self) -> RealmId {
        self.shards[0].read().realm()
    }

    fn now(&self) -> SimTime {
        self.shards[0].read().now()
    }

    fn advance_to(&mut self, t: SimTime) {
        for s in &mut self.shards {
            s.get_mut().advance_to(t);
        }
    }

    fn login(
        &mut self,
        db: &UserDb,
        user: Uid,
        mfa: Option<MfaCode>,
    ) -> Result<SignedToken, CredError> {
        self.shard_mut(user).login(db, user, mfa)
    }

    fn login_auto(&mut self, db: &UserDb, user: Uid) -> Result<SignedToken, CredError> {
        self.shard_mut(user).login_auto(db, user)
    }

    fn mint_ssh_cert(&mut self, token: &SignedToken) -> Result<SshCertificate, CredError> {
        self.shard_mut(token.user).mint_ssh_cert(token)
    }

    fn ensure_session(&mut self, db: &UserDb, user: Uid) -> Result<SignedToken, CredError> {
        self.shard_mut(user).ensure_session(db, user)
    }

    // analyze:hot-path-begin(sharded-validate)
    fn validate_token(&self, token: &SignedToken) -> Result<Uid, CredError> {
        let t0 = self.stats.begin();
        let r = self.shard(token.user).read().validate_token(token);
        self.stats.finish(t0, r.is_ok());
        r
    }

    fn validate_cert(&self, cert: &SshCertificate) -> Result<Uid, CredError> {
        let t0 = self.stats.begin();
        let r = self.shard(cert.user).read().validate_cert(cert);
        self.stats.finish(t0, r.is_ok());
        r
    }

    fn validate_serial(&self, user: Uid, serial: CredSerial) -> Result<(), CredError> {
        self.shard(user).read().validate_serial(user, serial)
    }

    fn authorize_ssh(&self, user: Uid) -> Result<(), CredError> {
        self.shard(user).read().authorize_ssh(user)
    }

    fn authorize_submit(&self, user: Uid) -> Result<(), CredError> {
        self.shard(user).read().authorize_submit(user)
    }

    fn authorize_submit_at(&self, user: Uid, at: SimTime) -> Result<(), CredError> {
        self.shard(user).read().authorize_submit_at(user, at)
    }
    // analyze:hot-path-end

    fn current_cert(&self, user: Uid) -> Option<SshCertificate> {
        self.shard(user).read().current_cert(user)
    }

    fn current_token(&self, user: Uid) -> Option<SignedToken> {
        self.shard(user).read().current_token(user)
    }

    fn revoke_serial(&mut self, serial: CredSerial) {
        // A user's tokens are minted by — and validated at — the same shard,
        // and that shard's serials fill one residue class, so routing by
        // residue lands the revocation exactly where the token validates.
        let i = self.shard_of_serial(serial);
        if self.shards[i].get_mut().revoke_serial(serial) {
            self.revocation_order.push(serial);
        }
    }

    fn revoke_user(&mut self, user: Uid) {
        let revoked = self.shard_mut(user).revoke_user(user);
        self.revocation_order.extend(revoked);
    }

    fn sweep_expired(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.get_mut().sweep_expired())
            .sum()
    }

    fn live_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.read().live_sessions()).sum()
    }

    // MFA routes delegate to the owning shard's own plane impl, so the
    // binding-enrollment policy is encoded exactly once (in
    // CredentialBroker's CredentialPlane impl).
    fn enroll_mfa(&mut self, user: Uid, mfa: Option<MfaCode>) -> Result<MfaEnrollment, CredError> {
        CredentialPlane::enroll_mfa(self.shard_mut(user), user, mfa)
    }

    fn login_recovery(
        &mut self,
        db: &UserDb,
        user: Uid,
        code: RecoveryCode,
    ) -> Result<SignedToken, CredError> {
        self.shard_mut(user).login_recovery(db, user, code)
    }

    fn unenroll_mfa(&mut self, user: Uid, mfa: Option<MfaCode>) -> Result<(), CredError> {
        CredentialPlane::unenroll_mfa(self.shard_mut(user), user, mfa)
    }

    fn mfa_challenged(&self, user: Uid) -> bool {
        CredentialPlane::mfa_challenged(&*self.shard(user).read(), user)
    }

    fn current_mfa_code(&self, user: Uid) -> Option<MfaCode> {
        CredentialPlane::current_mfa_code(&*self.shard(user).read(), user)
    }

    fn revocation_head(&self) -> u64 {
        self.revocation_compacted + self.revocation_order.len() as u64
    }

    fn revocations_since(&self, since: u64) -> Vec<CredSerial> {
        let from = (since.saturating_sub(self.revocation_compacted) as usize)
            .min(self.revocation_order.len());
        self.revocation_order[from..].to_vec()
    }

    fn compact_revocations_below(&mut self, upto: u64) -> u64 {
        let upto = upto.min(self.revocation_head());
        if upto <= self.revocation_compacted {
            return 0;
        }
        let drop = (upto - self.revocation_compacted) as usize;
        self.revocation_order.drain(..drop);
        self.revocation_compacted = upto;
        drop as u64
    }

    fn revocation_floor(&self) -> u64 {
        self.revocation_compacted
    }

    fn revocation_snapshot(&self) -> Vec<CredSerial> {
        // Union of the shard membership sets (revocations only enter
        // through the plane API, so this equals the full plane log),
        // sorted so the payload is seed-stable.
        let mut all: Vec<CredSerial> = self
            .shards
            .iter()
            .flat_map(|s| s.read().revocations.snapshot())
            .collect();
        all.sort_unstable();
        all
    }

    fn set_idp_available(&mut self, up: bool) {
        for s in &mut self.shards {
            s.get_mut().set_idp_available(up);
        }
    }

    fn idp_available(&self) -> bool {
        self.shards.iter().all(|s| s.read().idp_available())
    }

    fn set_ca_available(&mut self, up: bool) {
        for s in &mut self.shards {
            s.get_mut().set_ca_available(up);
        }
    }

    fn ca_available(&self) -> bool {
        self.shards.iter().all(|s| s.read().ca_available())
    }

    fn seize_shard(&mut self, shard: usize, seized: bool) -> bool {
        match self.shards.get_mut(shard) {
            Some(s) => {
                let b = s.get_mut();
                b.set_idp_available(!seized);
                b.set_ca_available(!seized);
                true
            }
            None => false,
        }
    }

    fn verifier(&self) -> RealmVerifier {
        RealmVerifier::new(
            self.realm(),
            self.shards.iter().map(|s| s.read().ca.clone()).collect(),
        )
    }

    /// Shared-path login through the owning shard's own write lock: the
    /// plane-wide handle stays a *read* borrow, so logins landing on other
    /// shards run concurrently (the per-shard-locking scale win).
    fn try_login_shared(
        &self,
        db: &UserDb,
        user: Uid,
        mfa: Option<MfaCode>,
    ) -> Option<Result<SignedToken, CredError>> {
        Some(self.shard(user).write().login(db, user, mfa))
    }

    /// Shard-parallel batch verification
    /// ([`validate_batch_fanout`](ShardedBroker::validate_batch_fanout))
    /// when there is parallelism to exploit; plain sequential otherwise
    /// (bucketing only pays when threads exist to fan out to).
    fn validate_batch(&self, tokens: &[SignedToken]) -> Vec<Result<Uid, CredError>> {
        if self.shards.len() == 1 || self.fanout_threads == 1 || tokens.len() < 2 {
            self.stats.batch(false);
            return tokens.iter().map(|t| self.validate_token(t)).collect();
        }
        self.stats.batch(true);
        self.validate_batch_fanout(tokens)
    }

    fn validate_stats(&self) -> Option<&ValidateStats> {
        Some(&self.stats)
    }

    fn trace_buffer(&self) -> Option<&TraceBuffer> {
        Some(&self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(shards: usize) -> (UserDb, ShardedBroker, Vec<Uid>) {
        let mut db = UserDb::new();
        let users: Vec<Uid> = (0..16)
            .map(|i| db.create_user(&format!("u{i}")).unwrap())
            .collect();
        let plane = ShardedBroker::new(RealmId(1), 77, shards, BrokerPolicy::default());
        (db, plane, users)
    }

    #[test]
    fn per_user_lifecycle_spans_shards() {
        let (db, mut p, users) = setup(4);
        let tokens: Vec<SignedToken> = users
            .iter()
            .map(|&u| p.login(&db, u, None).unwrap())
            .collect();
        assert_eq!(p.live_sessions(), users.len());
        for (u, t) in users.iter().zip(&tokens) {
            assert_eq!(p.validate_token(t).unwrap(), *u);
            assert!(p.authorize_ssh(*u).is_ok());
            assert!(p.authorize_submit(*u).is_ok());
        }
        // Users actually spread over more than one shard.
        let occupied = (0..4)
            .filter(|&i| p.shards[i].read().live_sessions() > 0)
            .count();
        assert!(occupied > 1, "uid hash must spread users");
    }

    #[test]
    fn serials_are_globally_unique_and_route_back() {
        let (db, mut p, users) = setup(8);
        let mut seen = std::collections::BTreeSet::new();
        for &u in &users {
            for _ in 0..10 {
                let t = p.login(&db, u, None).unwrap();
                assert!(seen.insert(t.serial), "serial collision across shards");
                assert_eq!(p.shard_of_serial(t.serial), p.shard_of(u));
            }
        }
    }

    #[test]
    fn serial_revocation_routes_to_the_minting_shard() {
        let (db, mut p, users) = setup(4);
        let t = p.login(&db, users[3], None).unwrap();
        p.revoke_serial(t.serial);
        assert_eq!(p.validate_token(&t), Err(CredError::Revoked(t.serial)));
        // Only one shard carries the revocation entry.
        let lists = (0..4)
            .filter(|&i| !p.shards[i].read().revocations.is_empty())
            .count();
        assert_eq!(lists, 1);
    }

    #[test]
    fn plane_level_delta_log_tracks_revocations_in_api_order() {
        let (db, mut p, users) = setup(4);
        let t0 = p.login(&db, users[0], None).unwrap();
        let t1 = p.login(&db, users[1], None).unwrap();
        assert_eq!(p.revocation_head(), 0);
        p.revoke_serial(t1.serial);
        p.revoke_serial(t1.serial); // duplicate: no new entry
        p.revoke_user(users[0]); // token + cert
        let log = p.revocations_since(0);
        assert_eq!(p.revocation_head(), 3);
        assert_eq!(log[0], t1.serial, "API order, not shard order");
        assert_eq!(log[1], t0.serial);
        assert_eq!(p.revocations_since(2).len(), 1);
        // The plane log and the shard lists agree on membership.
        for s in &log {
            assert!(p.shards[p.shard_of_serial(*s)]
                .read()
                .revocations
                .is_revoked(*s));
        }
    }

    #[test]
    fn shared_path_login_matches_exclusive_login_decisions() {
        let (db, mut p, users) = setup(4);
        // Shared-path login under a &self borrow mints a live session...
        let t = p.try_login_shared(&db, users[2], None).unwrap().unwrap();
        assert_eq!(p.validate_token(&t).unwrap(), users[2]);
        // ...and refuses exactly like the exclusive path.
        let bad = p.try_login_shared(&db, Uid(4242), None).unwrap();
        assert_eq!(bad, p.login(&db, Uid(4242), None));
        // The single broker has no shared path (callers must fall back).
        let single = CredentialBroker::new(RealmId(1), 5, BrokerPolicy::default());
        assert!(CredentialPlane::try_login_shared(&single, &db, users[0], None).is_none());
    }

    #[test]
    fn verifier_routes_serials_to_the_minting_shards_ca() {
        let (db, mut p, users) = setup(4);
        let tokens: Vec<SignedToken> = users
            .iter()
            .map(|&u| p.login(&db, u, None).unwrap())
            .collect();
        let v = p.verifier();
        for (u, t) in users.iter().zip(&tokens) {
            assert_eq!(v.verify_token(t, p.now()).unwrap(), *u);
        }
        // The verifier checks signatures only — revocation is the replica's
        // job, so a revoked-at-issuer token still *verifies* here.
        p.revoke_serial(tokens[0].serial);
        assert!(v.verify_token(&tokens[0], p.now()).is_ok());
        // Tampering still breaks the signature.
        let mut forged = tokens[1];
        forged.user = Uid(999);
        assert_eq!(
            v.verify_token(&forged, p.now()),
            Err(CredError::BadSignature)
        );
    }

    #[test]
    fn batch_validation_matches_pointwise() {
        let (db, mut p, users) = setup(4);
        let mut tokens: Vec<SignedToken> = users
            .iter()
            .flat_map(|&u| {
                (0..4)
                    .map(|_| p.login(&db, u, None).unwrap())
                    .collect::<Vec<_>>()
            })
            .collect();
        // Poison a few: revoke one, tamper one.
        p.revoke_serial(tokens[5].serial);
        tokens[9].user = Uid(424242);
        // Both the dispatching entry point and the always-bucketed fan-out
        // path (the dispatcher may fall back to sequential on 1-core boxes).
        for batch in [p.validate_batch(&tokens), p.validate_batch_fanout(&tokens)] {
            assert_eq!(batch.len(), tokens.len());
            for (t, r) in tokens.iter().zip(&batch) {
                assert_eq!(*r, p.validate_token(t), "batch must equal pointwise");
            }
            assert!(batch[5].is_err());
            assert!(batch[9].is_err());
        }
    }

    #[test]
    fn seized_shard_fails_issuance_while_others_serve() {
        let (db, mut p, users) = setup(4);
        let tokens: Vec<SignedToken> = users
            .iter()
            .map(|&u| p.login(&db, u, None).unwrap())
            .collect();
        let victim = users[0];
        let shard = p.shard_of(victim);
        assert!(p.seize_shard(shard, true));
        assert_eq!(p.login(&db, victim, None), Err(CredError::Unavailable));
        assert_eq!(
            p.validate_token(&tokens[0]).unwrap(),
            victim,
            "validation on the seized shard keeps serving"
        );
        let other = users
            .iter()
            .copied()
            .find(|&u| p.shard_of(u) != shard)
            .unwrap();
        assert!(p.login(&db, other, None).is_ok(), "other shards unaffected");
        // Global outage fans to every shard; heal restores.
        p.set_idp_available(false);
        assert!(!p.idp_available());
        for &u in &users {
            assert_eq!(p.login(&db, u, None), Err(CredError::Unavailable));
        }
        p.set_idp_available(true);
        assert!(p.seize_shard(shard, false));
        assert!(p.idp_available() && p.ca_available());
        assert!(p.login(&db, victim, None).is_ok());
        assert!(!p.seize_shard(99, true), "no such shard");
    }

    #[test]
    fn plane_log_compaction_preserves_sequence_and_snapshot() {
        let (db, mut p, users) = setup(4);
        let tokens: Vec<SignedToken> = users
            .iter()
            .take(4)
            .map(|&u| p.login(&db, u, None).unwrap())
            .collect();
        for t in &tokens {
            p.revoke_serial(t.serial);
        }
        assert_eq!(p.revocation_head(), 4);
        assert_eq!(p.compact_revocations_below(2), 2);
        assert_eq!(p.revocation_floor(), 2);
        assert_eq!(p.revocation_head(), 4, "head survives compaction");
        assert_eq!(
            p.revocations_since(2),
            vec![tokens[2].serial, tokens[3].serial]
        );
        // Below the floor the delta clamps; the snapshot path carries the
        // full membership, sorted.
        assert_eq!(p.revocations_since(0).len(), 2);
        let mut expect: Vec<CredSerial> = tokens.iter().map(|t| t.serial).collect();
        expect.sort_unstable();
        assert_eq!(p.revocation_snapshot(), expect);
        assert_eq!(p.compact_revocations_below(1), 0, "below floor: no-op");
    }

    #[test]
    fn cross_realm_rejection_is_preserved() {
        let (db, mut p, users) = setup(4);
        p.login(&db, users[0], None).unwrap();
        let mut foreign = CredentialBroker::new(RealmId(9), 5, BrokerPolicy::default());
        let forged = foreign.login(&db, users[0], None).unwrap();
        assert!(matches!(
            p.validate_token(&forged),
            Err(CredError::RealmMismatch { .. })
        ));
    }
}
