//! CLI for the workspace invariant linter.
//!
//! ```text
//! eus-analyze [--root <dir>] [--json] [--deny]
//! ```
//!
//! `--deny` exits non-zero when any finding survives suppression — the CI
//! mode. `--json` emits the machine-readable findings array instead of
//! the human rendering.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("eus-analyze: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: eus-analyze [--root <dir>] [--json] [--deny]");
                println!("rules: {}", eus_analyze::diag::ALL_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("eus-analyze: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let report = match eus_analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("eus-analyze: failed to scan {} — {e}", root.display());
            eprintln!("hint: run from the workspace root or pass --root <dir>");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", eus_analyze::render_json(&report.diags));
    } else {
        for d in &report.diags {
            println!("{}", d.human());
        }
        println!(
            "eus-analyze: {} finding{} across {} files",
            report.diags.len(),
            if report.diags.len() == 1 { "" } else { "s" },
            report.files_scanned
        );
    }
    if deny && !report.diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
