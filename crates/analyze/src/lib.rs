//! `eus-analyze` — the workspace invariant linter.
//!
//! The repo's value rests on invariants no compiler checks: sim-clock
//! determinism, panic-free hot kernels, the `plane.subsystem.name` obs
//! convention, ARCHITECTURE.md tables that match the code, and deadlock-
//! free lock nesting. This crate machine-checks all five with a
//! self-contained scanner — a hand-rolled lexer ([`lexer`]), a per-file
//! model with test/hot/suppression overlays ([`source`]), and five rule
//! passes ([`rules`]) — no dependencies, same offline discipline as
//! `vendor/`.
//!
//! | rule id | invariant |
//! |---|---|
//! | `sim-determinism` | no wall-clock/sleep/hash-iteration in engine crates |
//! | `hot-path-panic` | no unwrap/expect/panic!/indexing in annotated hot regions |
//! | `obs-naming` | dotted obs names, registered exactly once |
//! | `docs-sync` | ARCHITECTURE.md audit/span/SLO/fault tables match the code |
//! | `lock-discipline` | no nested lock scopes (static half of the check) |
//!
//! Suppress a finding on one line with
//! `// analyze:allow(rule-id): justification`; bracket hot regions with
//! `// analyze:hot-path-begin(label)` … `// analyze:hot-path-end`.
//! CI runs `cargo run -p eus-analyze -- --deny`, which exits non-zero on
//! any finding. The dynamic half of the lock rule lives in the vendored
//! `parking_lot` shim behind `--cfg lock_order_check`.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diag::{render_json, Diag};

use source::SourceFile;
use std::path::Path;

/// Result of a workspace scan.
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub diags: Vec<Diag>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Scan the workspace rooted at `root` (the directory holding
/// `ARCHITECTURE.md` and `crates/`) with every rule.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let files = source::collect_sources(root)?;
    let mut parsed = Vec::with_capacity(files.len());
    for (rel, path) in &files {
        let text = std::fs::read_to_string(path)?;
        parsed.push(SourceFile::parse(rel, &text));
    }
    let mut diags = Vec::new();
    let mut regs = Vec::new();
    for f in &parsed {
        diags.extend(f.pre_diags.iter().cloned());
        rules::determinism::check(f, &mut diags);
        rules::hotpath::check(f, &mut diags);
        rules::locks::check(f, &mut diags);
        regs.extend(rules::obsnames::collect(f, &mut diags));
    }
    rules::obsnames::check_unique(&regs, &mut diags);

    let arch_path = root.join("ARCHITECTURE.md");
    let channels_path = root.join("crates/core/src/audit/channels.rs");
    let faults_path = root.join("crates/chaos/src/fault.rs");
    let arch = std::fs::read_to_string(&arch_path).unwrap_or_default();
    let channels = std::fs::read_to_string(&channels_path).unwrap_or_default();
    let faults = std::fs::read_to_string(&faults_path).unwrap_or_default();
    rules::docsync::check(
        &arch,
        "ARCHITECTURE.md",
        &channels,
        "crates/core/src/audit/channels.rs",
        &faults,
        "crates/chaos/src/fault.rs",
        &regs,
        &mut diags,
    );

    let diags = finish(diags, &parsed);
    Ok(Report {
        diags,
        files_scanned: parsed.len(),
    })
}

/// Lint a single source text as if it lived at `rel` in the workspace —
/// the per-file rules only (R1, R2, R5, plus R3 name-format and in-file
/// uniqueness). Used by the fixture tests and handy for editor
/// integration.
pub fn lint_source(rel: &str, text: &str) -> Vec<Diag> {
    let f = SourceFile::parse(rel, text);
    let mut diags = f.pre_diags.clone();
    rules::determinism::check(&f, &mut diags);
    rules::hotpath::check(&f, &mut diags);
    rules::locks::check(&f, &mut diags);
    let regs = rules::obsnames::collect(&f, &mut diags);
    rules::obsnames::check_unique(&regs, &mut diags);
    finish(diags, std::slice::from_ref(&f))
}

/// Apply per-line suppressions and sort deterministically.
fn finish(diags: Vec<Diag>, files: &[SourceFile]) -> Vec<Diag> {
    let mut out: Vec<Diag> = diags
        .into_iter()
        .filter(|d| {
            !files
                .iter()
                .find(|f| f.rel == d.file)
                .is_some_and(|f| f.allowed(d.line, d.rule))
        })
        .collect();
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_runs_per_file_rules() {
        let diags = lint_source(
            "crates/sched/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, diag::R1_SIM_DETERMINISM);
    }

    #[test]
    fn suppressions_filter_findings() {
        let diags = lint_source(
            "crates/sched/src/x.rs",
            "fn f() { let t = Instant::now(); } // analyze:allow(sim-determinism): test shim\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn out_of_scope_crates_are_exempt() {
        assert!(lint_source(
            "crates/bench/src/x.rs",
            "fn f() { let t = Instant::now(); }\n"
        )
        .is_empty());
    }
}
