//! R5 `lock-discipline`: no nested lock scopes.
//!
//! The workspace's locks (vendored `parking_lot` `Mutex`/`RwLock`) guard
//! single subsystems: broker shards, the shared user db, per-site revsync
//! planes. Holding one while acquiring another creates an ordering edge,
//! and two code paths with opposite edges deadlock under load. The static
//! rule is a lexical approximation — it flags any `.lock()`/`.read()`/
//! `.write()` (zero-argument, the guard-returning forms) while another
//! guard from the same function scope is still live:
//!
//! - `let g = x.lock();` keeps a guard live until its block closes (or an
//!   explicit `drop(g)`);
//! - `x.lock().method(…)` keeps a temporary guard live to the end of the
//!   statement, so `a.write().f(&b.read())` is one nested scope.
//!
//! Deliberately-nested sites document their global acquisition order with
//! an `analyze:allow(lock-discipline)` comment; the dynamic
//! `lock_order_check` cfg in the vendored parking_lot shim then enforces
//! that the documented order is acyclic at runtime across the whole test
//! suite.

use crate::diag::{Diag, R5_LOCK_DISCIPLINE as RULE};
use crate::lexer::TokKind;
use crate::source::SourceFile;

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

#[derive(Debug)]
struct LiveGuard {
    /// Binding name when `let`-bound (for `drop(name)` release tracking).
    name: Option<String>,
    method: String,
    line: u32,
    /// Brace depth at acquisition.
    depth: i32,
    /// Temporary (dies at end of statement) vs `let`-bound (dies with the
    /// enclosing block).
    temp: bool,
}

/// Run R5 over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diag>) {
    if !super::engine_scope(file) {
        return;
    }
    let toks = &file.toks;
    let mut depth: i32 = 0;
    let mut guards: Vec<LiveGuard> = Vec::new();
    // Statement context: set by `let`, cleared at `;`.
    let mut stmt_let: Option<String> = None;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    // Condition/scrutinee temporaries do not outlive the
                    // expression in the common `if x.lock().y { … }` shape.
                    guards.retain(|g| !(g.temp && g.depth >= depth));
                    stmt_let = None;
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                    stmt_let = None;
                }
                ";" => {
                    guards.retain(|g| !(g.temp && g.depth >= depth));
                    stmt_let = None;
                }
                _ => {}
            }
            continue;
        }
        if t.kind != TokKind::Ident || file.in_test[i] {
            continue;
        }
        match t.text.as_str() {
            "let" => {
                // Capture the binding name: first ident after `let`,
                // skipping `mut`.
                let mut j = i + 1;
                if file.ident(j, "mut") {
                    j += 1;
                }
                stmt_let = toks
                    .get(j)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text.clone());
            }
            // `drop(name)` releases a let-bound guard early.
            "drop"
                if file.punct(i + 1, '(')
                    && file.punct(i + 3, ')')
                    && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident) =>
            {
                let name = toks[i + 2].text.as_str();
                guards.retain(|g| g.name.as_deref() != Some(name));
            }
            m if ACQUIRE_METHODS.contains(&m)
                && i > 0
                && file.punct(i - 1, '.')
                && file.punct(i + 1, '(')
                && file.punct(i + 2, ')') =>
            {
                if let Some(holder) = guards.first() {
                    if !file.allowed(t.line, RULE) {
                        out.push(Diag {
                            file: file.rel.clone(),
                            line: t.line,
                            rule: RULE,
                            msg: format!(
                                "nested lock scope: .{m}() while the .{}() guard from line {} \
                                 is still held",
                                holder.method, holder.line
                            ),
                            hint: "narrow the first guard's scope (or drop() it) before the \
                                   second acquisition; if the nesting is deliberate, document \
                                   the global acquisition order with \
                                   analyze:allow(lock-discipline)"
                                .into(),
                        });
                    }
                }
                // `let g = x.lock();` — guard itself is the bound value
                // only when the statement ends right after the call AND the
                // receiver chain starts at the `=`: a prefix like the deref
                // in `let v = *x.lock();` copies through the guard, leaving
                // it a temporary.
                let bound = stmt_let.is_some() && file.punct(i + 3, ';') && {
                    let mut j = i - 1; // the `.` before the method name
                    while j > 0 {
                        let p = &toks[j - 1];
                        let chain =
                            matches!(p.kind, TokKind::Ident | TokKind::Literal | TokKind::Str)
                                || (p.kind == TokKind::Punct
                                    && matches!(
                                        p.text.as_str(),
                                        "." | "(" | ")" | "[" | "]" | ":" | ","
                                    ));
                        if !chain {
                            break;
                        }
                        j -= 1;
                    }
                    j > 0 && toks[j - 1].text == "="
                };
                guards.push(LiveGuard {
                    name: if bound { stmt_let.clone() } else { None },
                    method: m.to_string(),
                    line: t.line,
                    depth,
                    temp: !bound,
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(body: &str) -> Vec<Diag> {
        let src = format!("fn f() {{\n{body}\n}}\n");
        let f = SourceFile::parse("crates/x/src/a.rs", &src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn sequential_scopes_are_clean() {
        assert!(run("let a = m.lock();\ndo_work(&a);").is_empty());
        assert!(run("{ let a = m.lock(); }\n{ let b = n.lock(); }").is_empty());
        assert!(run("m.lock().push(1);\nn.lock().push(2);").is_empty());
    }

    #[test]
    fn let_guard_then_second_acquisition_flags() {
        let out = run("let a = m.lock();\nlet b = n.lock();");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RULE);
        assert!(out[0].msg.contains("nested lock scope"));
    }

    #[test]
    fn two_temporaries_in_one_statement_flag() {
        let out = run("b.write().ensure(&db.read(), user);");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn drop_releases_the_guard() {
        assert!(run("let a = m.lock();\ndrop(a);\nlet b = n.lock();").is_empty());
    }

    #[test]
    fn explicit_allow_suppresses() {
        let out = run(
            "let a = m.lock();\n// analyze:allow(lock-discipline): order is m before n everywhere\nlet b = n.lock();",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        assert!(run("let a = m.lock();\nfile.read(&mut buf);").is_empty());
    }

    #[test]
    fn deref_copy_through_guard_is_temporary() {
        // `x` holds the copied value, not the guard.
        assert!(run("let x = *m.lock();\nlet b = n.lock();").is_empty());
    }

    #[test]
    fn let_bound_result_of_guarded_call_is_temporary() {
        // The guard here is a temporary — the binding holds the call
        // result — so a later acquisition in the block is clean.
        assert!(run("let v = m.lock().len();\nlet b = n.lock();").is_empty());
    }
}
