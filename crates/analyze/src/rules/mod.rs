//! The rule passes. R1/R2/R5 are per-file token scans; R3 collects obs
//! registrations per file and checks uniqueness across the workspace; R4
//! cross-checks ARCHITECTURE.md tables against the code.

pub mod determinism;
pub mod docsync;
pub mod hotpath;
pub mod locks;
pub mod obsnames;

use crate::source::SourceFile;

/// Crates whose *purpose* exempts them from the engine-invariant rules:
/// `bench` is wall-clock measurement by definition, and `analyze` is the
/// linter itself (its fixtures and scanners mention every banned pattern).
pub fn engine_scope(file: &SourceFile) -> bool {
    match file.crate_name.as_deref() {
        Some("bench") | Some("analyze") => false,
        Some(_) => true,
        None => false,
    }
}
