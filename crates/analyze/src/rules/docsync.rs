//! R4 `docs-sync`: the load-bearing tables in ARCHITECTURE.md must
//! match the code, in both directions.
//!
//! - The **audit-channel table** mirrors `enum Channel` in
//!   `crates/core/src/audit/channels.rs`. A variant added without a doc
//!   row loses its paper cross-reference; a doc row whose variant was
//!   renamed documents a channel that no longer exists.
//! - The **obs span table** mirrors the workspace's `Recorder::span`
//!   registrations. Spans are the phase vocabulary every perf
//!   investigation starts from, so a missing or stale row misdirects
//!   whoever reads the table first.
//! - The **SLO table** mirrors the workspace's `SloPlane::slo`
//!   registrations. An undocumented objective pages with no runbook; a
//!   documented objective that was deleted promises alerting that will
//!   never fire.
//! - The **fault taxonomy table** mirrors `enum Fault` in
//!   `crates/chaos/src/fault.rs`. A fault the chaos plane can inject but
//!   the docs don't list is a failure mode nobody plans drills for; a
//!   documented fault with no variant promises coverage that isn't there.
//! - The **counter-family thread-invariance table** mirrors the `sched.*`
//!   counter registrations, grouped by family (`plane.subsystem.*`). The
//!   sharded dispatcher's contract is that every family except
//!   `sched.shard.*` is bit-identical at any plan width; a family
//!   registered without a row ships a counter with an undeclared
//!   invariance contract, and a row without a registration documents a
//!   contract nothing upholds.

use crate::diag::{Diag, R4_DOCS_SYNC as RULE};
use crate::lexer::{lex, TokKind};
use crate::rules::obsnames::Registration;
use std::collections::BTreeMap;

/// Cross-check all four tables. `arch` is the ARCHITECTURE.md text,
/// `channels` the source of `crates/core/src/audit/channels.rs`, `faults`
/// the source of `crates/chaos/src/fault.rs`, `spans` the registrations
/// collected by R3 (spans and SLOs are filtered out of it here).
#[allow(clippy::too_many_arguments)] // one (source, path) pair per mirrored table
pub fn check(
    arch: &str,
    arch_path: &str,
    channels: &str,
    channels_path: &str,
    faults: &str,
    faults_path: &str,
    spans: &[Registration],
    out: &mut Vec<Diag>,
) {
    // --- audit channels ---
    let code_channels = enum_variants(channels, "Channel");
    let (audit_header, audit_rows) = table_rows(arch, "channel");
    if code_channels.is_empty() {
        out.push(Diag {
            file: channels_path.to_string(),
            line: 1,
            rule: RULE,
            msg: "could not find `enum Channel` variants to cross-check".into(),
            hint: "keep the audit channel enum in crates/core/src/audit/channels.rs".into(),
        });
    }
    if audit_rows.is_empty() {
        out.push(Diag {
            file: arch_path.to_string(),
            line: 1,
            rule: RULE,
            msg: "ARCHITECTURE.md has no audit-channel table (header cell `channel`)".into(),
            hint: "restore the `| channel | … |` table".into(),
        });
    }
    for (variant, _line) in &code_channels {
        if !audit_rows.contains_key(variant) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: audit_header.unwrap_or(1),
                rule: RULE,
                msg: format!(
                    "audit channel `{variant}` ({channels_path}) has no row in the \
                     ARCHITECTURE.md audit table"
                ),
                hint: "add a row documenting the paper section and llsc/closed-by status".into(),
            });
        }
    }
    for (name, line) in &audit_rows {
        if !code_channels.iter().any(|(v, _)| v == name) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: *line,
                rule: RULE,
                msg: format!(
                    "ARCHITECTURE.md documents audit channel `{name}` which does not exist \
                     in {channels_path}"
                ),
                hint: "remove the row or rename it to the current Channel variant".into(),
            });
        }
    }

    // --- obs spans ---
    let (span_header, span_rows) = table_rows(arch, "span");
    if span_rows.is_empty() {
        out.push(Diag {
            file: arch_path.to_string(),
            line: 1,
            rule: RULE,
            msg: "ARCHITECTURE.md has no obs span table (header cell `span`)".into(),
            hint: "restore the `| span | covers |` table".into(),
        });
    }
    let registered: BTreeMap<&str, &Registration> = spans
        .iter()
        .filter(|r| r.kind == "span")
        .map(|r| (r.name.as_str(), r))
        .collect();
    for (name, reg) in &registered {
        if !span_rows.contains_key(*name) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: span_header.unwrap_or(1),
                rule: RULE,
                msg: format!(
                    "obs span `{name}` (registered at {}:{}) has no row in the \
                     ARCHITECTURE.md span table",
                    reg.file, reg.line
                ),
                hint: "add a row describing what the span covers".into(),
            });
        }
    }
    for (name, line) in &span_rows {
        if !registered.contains_key(name.as_str()) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: *line,
                rule: RULE,
                msg: format!(
                    "ARCHITECTURE.md documents obs span `{name}` which is not registered \
                     anywhere in the workspace"
                ),
                hint: "remove the row or restore the rec.span(\"…\") registration".into(),
            });
        }
    }

    // --- SLOs ---
    let (slo_header, slo_rows) = table_rows(arch, "slo");
    let slo_regs: BTreeMap<&str, &Registration> = spans
        .iter()
        .filter(|r| r.kind == "slo")
        .map(|r| (r.name.as_str(), r))
        .collect();
    if slo_rows.is_empty() && !slo_regs.is_empty() {
        out.push(Diag {
            file: arch_path.to_string(),
            line: 1,
            rule: RULE,
            msg: "ARCHITECTURE.md has no SLO table (header cell `slo`)".into(),
            hint: "restore the `| slo | target | windows |` table".into(),
        });
    }
    for (name, reg) in &slo_regs {
        if !slo_rows.contains_key(*name) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: slo_header.unwrap_or(1),
                rule: RULE,
                msg: format!(
                    "SLO `{name}` (registered at {}:{}) has no row in the \
                     ARCHITECTURE.md SLO table",
                    reg.file, reg.line
                ),
                hint: "add a row with the target, aggregation and burn-rate windows".into(),
            });
        }
    }
    for (name, line) in &slo_rows {
        if !slo_regs.contains_key(name.as_str()) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: *line,
                rule: RULE,
                msg: format!(
                    "ARCHITECTURE.md documents SLO `{name}` which is not registered \
                     anywhere in the workspace"
                ),
                hint: "remove the row or restore the slo.slo(\"…\", …) registration".into(),
            });
        }
    }

    // --- fault taxonomy ---
    let code_faults = enum_variants(faults, "Fault");
    let (fault_header, fault_rows) = table_rows(arch, "fault");
    if fault_rows.is_empty() && !code_faults.is_empty() {
        out.push(Diag {
            file: arch_path.to_string(),
            line: 1,
            rule: RULE,
            msg: "ARCHITECTURE.md has no fault taxonomy table (header cell `fault`)".into(),
            hint: "restore the `| fault | … |` table in the fault-injection section".into(),
        });
    }
    for (variant, _line) in &code_faults {
        if !fault_rows.contains_key(variant) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: fault_header.unwrap_or(1),
                rule: RULE,
                msg: format!(
                    "chaos fault `{variant}` ({faults_path}) has no row in the \
                     ARCHITECTURE.md fault taxonomy table"
                ),
                hint: "add a row with the fault's label, plane hook and heal ownership".into(),
            });
        }
    }
    for (name, line) in &fault_rows {
        if !code_faults.iter().any(|(v, _)| v == name) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: *line,
                rule: RULE,
                msg: format!(
                    "ARCHITECTURE.md documents chaos fault `{name}` which does not exist \
                     in {faults_path}"
                ),
                hint: "remove the row or rename it to the current Fault variant".into(),
            });
        }
    }

    // --- scheduler counter-family thread-invariance table ---
    let mut sched_families: BTreeMap<String, &Registration> = BTreeMap::new();
    for r in spans.iter().filter(|r| r.kind == "counter") {
        let mut segs = r.name.split('.');
        if let (Some("sched"), Some(sub)) = (segs.next(), segs.next()) {
            sched_families.entry(format!("sched.{sub}.*")).or_insert(r);
        }
    }
    let (inv_header, inv_rows) = table_rows(arch, "counter family");
    if inv_rows.is_empty() && !sched_families.is_empty() {
        out.push(Diag {
            file: arch_path.to_string(),
            line: 1,
            rule: RULE,
            msg: "ARCHITECTURE.md has no counter-family thread-invariance table \
                  (header cell `counter family`)"
                .into(),
            hint: "restore the `| counter family | thread-invariant | why |` table".into(),
        });
    }
    for (family, reg) in &sched_families {
        if !inv_rows.contains_key(family) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: inv_header.unwrap_or(1),
                rule: RULE,
                msg: format!(
                    "scheduler counter family `{family}` (e.g. `{}` registered at {}:{}) \
                     has no row in the ARCHITECTURE.md thread-invariance table",
                    reg.name, reg.file, reg.line
                ),
                hint: "add a row declaring whether the family is bit-identical at any \
                       shard width, and why"
                    .into(),
            });
        }
    }
    for (name, line) in &inv_rows {
        if !sched_families.contains_key(name.as_str()) {
            out.push(Diag {
                file: arch_path.to_string(),
                line: *line,
                rule: RULE,
                msg: format!(
                    "ARCHITECTURE.md thread-invariance table documents counter family \
                     `{name}` with no registered `sched.*` counter in it"
                ),
                hint: "remove the row or restore a rec.counter(\"…\") registration in \
                       the family"
                    .into(),
            });
        }
    }
}

/// Parse the variants of `pub enum <name> { … }` with their lines.
/// Handles fieldless, tuple, and struct variants: a variant is any ident
/// at brace depth 1 directly followed by `,`, `}`, `{`, or `(` (field
/// idents sit at depth 2 or inside parens and never match).
fn enum_variants(src: &str, name: &str) -> Vec<(String, u32)> {
    let toks = lex(src).toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "enum"
            && toks.get(i + 1).is_some_and(|t| t.text == name)
        {
            let mut depth = 0i32;
            let mut parens = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return out;
                            }
                        }
                        "(" => parens += 1,
                        ")" => parens -= 1,
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident && depth == 1 && parens == 0 {
                    let next_is_sep = toks.get(j + 1).is_some_and(|n| {
                        n.kind == TokKind::Punct && matches!(n.text.as_str(), "," | "}" | "{" | "(")
                    });
                    if next_is_sep {
                        out.push((t.text.clone(), t.line));
                    }
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// Extract `first-cell -> line` for the markdown table whose header's
/// first cell is `header_cell`. Rows run until the first non-`|` line;
/// the `|---|` separator is skipped; cells are stripped of backticks.
fn table_rows(md: &str, header_cell: &str) -> (Option<u32>, BTreeMap<String, u32>) {
    let mut rows = BTreeMap::new();
    let mut header_line = None;
    let mut in_table = false;
    for (idx, raw) in md.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if !line.starts_with('|') {
            if in_table {
                break;
            }
            continue;
        }
        let first = line
            .trim_start_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches('`')
            .to_string();
        if !in_table {
            if first == header_cell {
                in_table = true;
                header_line = Some(line_no);
            }
            continue;
        }
        if first.chars().all(|c| c == '-' || c == ':') {
            continue; // separator row
        }
        if !first.is_empty() {
            rows.insert(first, line_no);
        }
    }
    (header_line, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHANNELS: &str = "pub enum Channel {\n    ProcList,\n    NetTcp,\n}\n";
    const FAULTS: &str =
        "pub enum Fault {\n    NodeCrash { node: NodeId },\n    IdpOutage { heal_after: SimDuration },\n}\n";
    const ARCH: &str = "# arch\n\n| channel | sect |\n|---|---|\n| `ProcList` | 1 |\n| `NetTcp` | 2 |\n\n| span | covers |\n|---|---|\n| `sched.cycle.select` | x |\n\n| slo | target |\n|---|---|\n| `cred.validate.latency` | 10ms |\n\n| fault | label |\n|---|---|\n| `NodeCrash` | node.crash |\n| `IdpOutage` | idp.outage |\n\n| counter family | thread-invariant |\n|---|---|\n| `sched.memo.*` | yes |\n| `sched.shard.*` | no |\n";

    fn reg(name: &str, kind: &str) -> Registration {
        Registration {
            name: name.into(),
            kind: kind.into(),
            file: "crates/sched/src/obs.rs".into(),
            line: 10,
        }
    }

    fn span_reg(name: &str) -> Registration {
        reg(name, "span")
    }

    #[test]
    fn in_sync_is_clean() {
        let mut out = Vec::new();
        check(
            ARCH,
            "ARCHITECTURE.md",
            CHANNELS,
            "channels.rs",
            FAULTS,
            "fault.rs",
            &[
                span_reg("sched.cycle.select"),
                reg("cred.validate.latency", "slo"),
                reg("sched.memo.head_hit", "counter"),
                reg("sched.shard.plans", "counter"),
            ],
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn counter_family_table_drift_is_caught_both_directions() {
        let mut out = Vec::new();
        // Code registers a family the table lacks; the table documents a
        // family (`sched.shard.*`) with no registered counter left in it.
        check(
            ARCH,
            "ARCHITECTURE.md",
            CHANNELS,
            "channels.rs",
            FAULTS,
            "fault.rs",
            &[
                span_reg("sched.cycle.select"),
                reg("cred.validate.latency", "slo"),
                reg("sched.memo.head_hit", "counter"),
                reg("sched.backfill.accepts", "counter"),
            ],
            &mut out,
        );
        assert!(
            out.iter()
                .any(|d| d.msg.contains("sched.backfill.*") && d.msg.contains("no row")),
            "{out:?}"
        );
        assert!(
            out.iter()
                .any(|d| d.msg.contains("sched.shard.*") && d.msg.contains("no registered")),
            "{out:?}"
        );
        // Non-sched counters carry no invariance contract.
        assert!(!out.iter().any(|d| d.msg.contains("cred.validate")));
    }

    #[test]
    fn drift_is_caught_both_directions() {
        let mut out = Vec::new();
        // Code has a channel the docs lack, docs have a span and an SLO the
        // code lacks.
        check(
            ARCH,
            "ARCHITECTURE.md",
            "pub enum Channel { ProcList, NetTcp, GpuRemanence }",
            "channels.rs",
            FAULTS,
            "fault.rs",
            &[],
            &mut out,
        );
        assert!(out.iter().any(|d| d.msg.contains("GpuRemanence")));
        assert!(out.iter().any(|d| d.msg.contains("sched.cycle.select")));
        assert!(out.iter().any(|d| d.msg.contains("cred.validate.latency")));
    }

    #[test]
    fn unregistered_slo_and_undocumented_slo_both_flagged() {
        let mut out = Vec::new();
        // Registration with no doc row.
        check(
            ARCH,
            "ARCHITECTURE.md",
            CHANNELS,
            "channels.rs",
            FAULTS,
            "fault.rs",
            &[
                span_reg("sched.cycle.select"),
                reg("cred.validate.latency", "slo"),
                reg("revsync.replica.lag", "slo"),
            ],
            &mut out,
        );
        assert!(out
            .iter()
            .any(|d| d.msg.contains("revsync.replica.lag") && d.msg.contains("no row")));
    }

    #[test]
    fn fault_table_drift_is_caught_both_directions() {
        let mut out = Vec::new();
        // Code grows a fault the docs lack; docs list one the code lost.
        check(
            ARCH,
            "ARCHITECTURE.md",
            CHANNELS,
            "channels.rs",
            "pub enum Fault {\n    NodeCrash { node: NodeId },\n    FeedStall { realm: RealmId },\n}\n",
            "fault.rs",
            &[
                span_reg("sched.cycle.select"),
                reg("cred.validate.latency", "slo"),
            ],
            &mut out,
        );
        assert!(
            out.iter()
                .any(|d| d.msg.contains("FeedStall") && d.msg.contains("no row")),
            "{out:?}"
        );
        assert!(
            out.iter()
                .any(|d| d.msg.contains("IdpOutage") && d.msg.contains("does not exist")),
            "{out:?}"
        );
    }

    #[test]
    fn struct_and_tuple_variants_parse() {
        let vs = enum_variants(
            "pub enum Fault { A, B(u32), C { x: Y, z: SimDuration }, D }",
            "Fault",
        );
        let names: Vec<&str> = vs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "C", "D"]);
    }
}
