//! R1 `sim-determinism`: engine crates must be replay-deterministic.
//!
//! The simulation has exactly one legal wall-clock site — the obs span
//! path (`Recorder::span_start` and the per-plane `obs.rs` shared-stats
//! timers), whose readings feed metrics, never decisions. Everything else
//! in `crates/*` must run on `SimTime`. Three pattern families are banned:
//!
//! 1. wall-clock reads: `Instant::now`, any `SystemTime` use;
//! 2. real sleeps: `thread::sleep` (a sim actor waits by advancing the
//!    virtual clock, never the host's);
//! 3. iteration over `HashMap`/`HashSet` bindings — hash iteration order
//!    is seed-dependent, so any decision derived from it diverges between
//!    runs. Keyed point lookups (`get`/`insert`/`remove`) stay legal.

use crate::diag::{Diag, R1_SIM_DETERMINISM as RULE};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Is this file allowed to read the wall clock? Only the obs crate itself
/// and the per-plane `obs.rs` modules (span timing / shared-stats `begin`/
/// `finish` paths).
fn wall_clock_allowed(file: &SourceFile) -> bool {
    file.rel.starts_with("crates/obs/")
        || file
            .rel
            .rsplit('/')
            .next()
            .is_some_and(|base| base == "obs.rs")
}

/// Run R1 over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diag>) {
    if !super::engine_scope(file) {
        return;
    }
    let clock_ok = wall_clock_allowed(file);
    let hashed = hashed_bindings(file);
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let line = t.line;
        match t.text.as_str() {
            // Only the read itself is banned; `use std::time::Instant`
            // without a `::now` call is inert.
            "Instant"
                if !clock_ok
                    && file.punct(i + 1, ':')
                    && file.punct(i + 2, ':')
                    && file.ident(i + 3, "now") =>
            {
                out.push(diag(
                    file, line,
                    "wall-clock read: Instant::now() in an engine crate".into(),
                    "schedule on SimTime; wall-clock timing belongs to the obs span path (obs.rs modules)",
                ));
            }
            "SystemTime" if !clock_ok => {
                out.push(diag(
                    file,
                    line,
                    "wall-clock type: SystemTime in an engine crate".into(),
                    "derive timestamps from SimTime so replays are bit-identical",
                ));
            }
            "thread"
                if file.punct(i + 1, ':')
                    && file.punct(i + 2, ':')
                    && file.ident(i + 3, "sleep") =>
            {
                out.push(diag(
                    file,
                    line,
                    "real sleep: thread::sleep in an engine crate".into(),
                    "advance the virtual clock instead; sim actors never block the host thread",
                ));
            }
            "in" => {
                // `for x in name` / `for x in &name` / `&mut name`.
                let mut j = i + 1;
                while file.punct(j, '&') || file.ident(j, "mut") {
                    j += 1;
                }
                if let Some(n) = toks.get(j) {
                    if n.kind == TokKind::Ident
                        && hashed.contains(n.text.as_str())
                        && !file.punct(j + 1, '.')
                    {
                        out.push(hash_iter_diag(file, n.line, &n.text));
                    }
                }
            }
            // `name.iter()`, `name.keys()`, … — only when `name` is
            // known to be a HashMap/HashSet binding in this file.
            name if hashed.contains(name)
                && file.punct(i + 1, '.')
                && toks.get(i + 2).is_some_and(|m| {
                    m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str())
                })
                && file.punct(i + 3, '(') =>
            {
                out.push(hash_iter_diag(file, line, name));
            }
            _ => {}
        }
    }
}

/// Names bound to `HashMap`/`HashSet` in this file, from field/binding
/// type ascriptions (`name: HashMap<…>`) and constructor assignments
/// (`let name = HashMap::new()`).
fn hashed_bindings(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.toks;
    let mut names = BTreeSet::new();
    let is_hash = |i: usize| {
        toks.get(i).is_some_and(|t| {
            t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet")
        })
    };
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name: HashMap<…>` — type ascription on a field, binding, or
        // struct-literal init. Accept only reference/path prefixes between
        // the colon and the type.
        if file.punct(i + 1, ':') && !file.punct(i + 2, ':') {
            let mut j = i + 2;
            let limit = (j + 8).min(toks.len());
            while j < limit {
                if is_hash(j) {
                    names.insert(toks[i].text.clone());
                    break;
                }
                let Some(t) = toks.get(j) else { break };
                let path_part = (t.kind == TokKind::Punct && (t.text == ":" || t.text == "&"))
                    || t.kind == TokKind::Lifetime
                    || (t.kind == TokKind::Ident
                        && matches!(t.text.as_str(), "std" | "collections" | "mut"));
                if !path_part {
                    break;
                }
                j += 1;
            }
        }
        // `let [mut] name = [path ::]* HashMap ::`
        if toks[i].text == "let" {
            let mut j = i + 1;
            if file.ident(j, "mut") {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) && file.punct(j + 1, '=') {
                let name = toks[j].text.clone();
                let mut k = j + 2;
                let limit = k + 6;
                while k < limit {
                    if is_hash(k) {
                        names.insert(name);
                        break;
                    }
                    let Some(t) = toks.get(k) else { break };
                    if !(t.kind == TokKind::Ident || (t.kind == TokKind::Punct && t.text == ":")) {
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    names
}

fn hash_iter_diag(file: &SourceFile, line: u32, name: &str) -> Diag {
    diag(
        file,
        line,
        format!("iteration over hash-ordered collection `{name}`"),
        "hash iteration order is nondeterministic across runs; use a BTreeMap/BTreeSet or an \
         explicit ordered index when order can reach a decision",
    )
}

fn diag(file: &SourceFile, line: u32, msg: String, hint: &str) -> Diag {
    Diag {
        file: file.rel.clone(),
        line,
        rule: RULE,
        msg,
        hint: hint.to_string(),
    }
}
