//! R3 `obs-naming`: every obs registration (`Recorder::counter/gauge/span`,
//! `SharedStats::slot`, `SloPlane::slo`) uses the dotted
//! `plane.subsystem.name` convention
//! (at least three lowercase dot-separated segments) and each name is
//! registered at exactly one source site — duplicate registrations split
//! one logical metric across two ids and corrupt dashboards silently.
//!
//! Scope: engine crates, excluding `crates/obs` itself (the framework's
//! internals and doctests exercise arbitrary names) and `bench`
//! (microbench probes are deliberately outside the plane taxonomy).

use crate::diag::{Diag, R3_OBS_NAMING as RULE};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

const REGISTER_METHODS: &[&str] = &["counter", "gauge", "span", "slot", "slo"];

/// One obs registration site.
#[derive(Debug, Clone)]
pub struct Registration {
    /// The registered dotted name.
    pub name: String,
    /// Which method registered it (`counter`/`gauge`/`span`/`slot`/`slo`).
    pub kind: String,
    pub file: String,
    pub line: u32,
}

/// Scan one file for registrations, emitting naming-format findings and
/// returning the sites for the workspace-level uniqueness pass (and for
/// R4's span- and SLO-table cross-checks).
pub fn collect(file: &SourceFile, out: &mut Vec<Diag>) -> Vec<Registration> {
    let mut regs = Vec::new();
    if !super::engine_scope(file) || file.rel.starts_with("crates/obs/") {
        return regs;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !REGISTER_METHODS.contains(&t.text.as_str())
            || i == 0
            || !file.punct(i - 1, '.')
            || !file.punct(i + 1, '(')
        {
            continue;
        }
        let Some(arg) = toks.get(i + 2) else { continue };
        if arg.kind != TokKind::Str {
            // Not an obs registration (e.g. an unrelated `.slot(idx)`):
            // obs names are literal strings by construction.
            continue;
        }
        let name = arg.text.clone();
        if !well_formed(&name) {
            out.push(Diag {
                file: file.rel.clone(),
                line: arg.line,
                rule: RULE,
                msg: format!(
                    "obs {} name `{name}` does not match the plane.subsystem.name convention",
                    t.text
                ),
                hint: "use >= 3 dot-separated segments of [a-z0-9_], e.g. sched.cycle.select"
                    .into(),
            });
        }
        regs.push(Registration {
            name,
            kind: t.text.clone(),
            file: file.rel.clone(),
            line: arg.line,
        });
    }
    regs
}

/// Workspace pass: each name registered at exactly one site.
pub fn check_unique(regs: &[Registration], out: &mut Vec<Diag>) {
    let mut by_name: BTreeMap<&str, Vec<&Registration>> = BTreeMap::new();
    for r in regs {
        by_name.entry(&r.name).or_default().push(r);
    }
    for (name, sites) in by_name {
        if sites.len() < 2 {
            continue;
        }
        let first = sites[0];
        for dup in &sites[1..] {
            out.push(Diag {
                file: dup.file.clone(),
                line: dup.line,
                rule: RULE,
                msg: format!(
                    "obs name `{name}` registered more than once (first at {}:{})",
                    first.file, first.line
                ),
                hint: "register each metric exactly once and share the returned id".into(),
            });
        }
    }
}

/// `plane.subsystem.name`: >= 3 non-empty lowercase segments.
fn well_formed(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 3
        && segs.iter().all(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_names() {
        assert!(well_formed("sched.cycle.select"));
        assert!(well_formed("revsync.validate.unknown_realm"));
        assert!(!well_formed("sched.cycle"));
        assert!(!well_formed("Sched.Cycle.Select"));
        assert!(!well_formed("sched..select"));
    }
}
