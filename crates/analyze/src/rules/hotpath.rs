//! R2 `hot-path-panic`: panic-freedom inside annotated hot regions.
//!
//! Regions are bracketed with `// analyze:hot-path-begin(label)` …
//! `// analyze:hot-path-end` around the kernels a scheduling cycle or a
//! credential validation actually executes: the sched placement/shadow
//! kernels, broker/shard validate, replica lookup, and the ubf match path.
//! Inside a region the rule bans every lexical form that can panic:
//!
//! - `.unwrap()` / `.expect(…)`;
//! - `panic!` / `todo!` / `unimplemented!` / `unreachable!` and the
//!   release-mode `assert!` family (`debug_assert*` stays legal — it
//!   compiles out of release builds);
//! - indexing (`x[i]`, `map[&k]`, slicing) — `.get()` with an explicit
//!   miss path, or a justified `analyze:allow`, instead.

use crate::diag::{Diag, R2_HOT_PATH_PANIC as RULE};
use crate::lexer::TokKind;
use crate::source::SourceFile;

const PANIC_MACROS: &[&str] = &[
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Run R2 over one file (any crate — regions opt in explicitly).
pub fn check(file: &SourceFile, out: &mut Vec<Diag>) {
    if file.hot.is_empty() {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        let Some(label) = file.hot_label(t.line) else {
            continue;
        };
        match t.kind {
            TokKind::Ident => {
                if (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && file.punct(i - 1, '.')
                    && file.punct(i + 1, '(')
                {
                    out.push(diag(
                        file,
                        t.line,
                        format!("`.{}()` inside hot path `{label}`", t.text),
                        "return the error (or use .get()/if-let with an explicit miss path); \
                         a panic here takes down the whole scheduling cycle",
                    ));
                } else if PANIC_MACROS.contains(&t.text.as_str()) && file.punct(i + 1, '!') {
                    out.push(diag(
                        file,
                        t.line,
                        format!("`{}!` inside hot path `{label}`", t.text),
                        "hot kernels must be panic-free in release builds; use debug_assert! \
                         for invariants or propagate an error",
                    ));
                }
            }
            TokKind::Punct if t.text == "[" && i > 0 => {
                let prev = &toks[i - 1];
                // A `[` indexes only when it follows a value expression. An
                // identifier qualifies unless it is a keyword that can
                // directly precede a slice/array *type* (`&mut [T]`,
                // `dyn [T]`, `as [T; N]`).
                let indexee = (prev.kind == TokKind::Ident
                    && !matches!(prev.text.as_str(), "mut" | "dyn" | "as"))
                    || (prev.kind == TokKind::Punct && (prev.text == "]" || prev.text == ")"));
                if indexee {
                    out.push(diag(
                        file,
                        t.line,
                        format!("indexing expression inside hot path `{label}`"),
                        "indexing panics on a miss; use .get()/.get_mut() with an explicit \
                         miss path, or add a justified analyze:allow if the bound is structural",
                    ));
                }
            }
            _ => {}
        }
    }
}

fn diag(file: &SourceFile, line: u32, msg: String, hint: &str) -> Diag {
    Diag {
        file: file.rel.clone(),
        line,
        rule: RULE,
        msg,
        hint: hint.to_string(),
    }
}
