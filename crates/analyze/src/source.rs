//! The per-file analysis model: lexed tokens plus the three overlays every
//! rule needs — test regions (skipped), hot-path regions (R2 scope), and
//! per-line `analyze:allow` suppressions — and the workspace walker that
//! feeds it.

use crate::diag::{Diag, RD_DIRECTIVE};
use crate::lexer::{lex, Directive, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// A parsed source file ready for rule passes.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// `crates/<name>/…` → `<name>`; `None` outside `crates/`.
    pub crate_name: Option<String>,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Parallel to `toks`: token is inside a `#[cfg(test)]` / `#[test]`
    /// item (rules skip these).
    pub in_test: Vec<bool>,
    /// Hot-path regions `(first_line, last_line, label)` from
    /// `analyze:hot-path-begin/end` comments.
    pub hot: Vec<(u32, u32, String)>,
    /// line → rules allowed on that line.
    allow: BTreeMap<u32, BTreeSet<String>>,
    /// Directive-hygiene findings produced during parsing.
    pub pre_diags: Vec<Diag>,
}

impl SourceFile {
    /// Lex and annotate one file.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let in_test = test_flags(&lexed.toks);
        let mut allow: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        let mut hot = Vec::new();
        let mut pre_diags = Vec::new();
        let mut open_hot: Option<(u32, String)> = None;
        for d in &lexed.directives {
            match d {
                Directive::Allow {
                    line,
                    own_line,
                    rules,
                } => {
                    let mut lines = vec![*line];
                    if *own_line {
                        // A standalone allow comment covers the next line
                        // that actually has code.
                        if let Some(next) = lexed
                            .toks
                            .iter()
                            .map(|t| t.line)
                            .find(|&l| l > *line)
                        {
                            lines.push(next);
                        }
                    }
                    for l in lines {
                        allow.entry(l).or_default().extend(rules.iter().cloned());
                    }
                }
                Directive::HotBegin { line, label } => {
                    if let Some((start, lbl)) = open_hot.take() {
                        pre_diags.push(Diag {
                            file: rel.to_string(),
                            line: *line,
                            rule: RD_DIRECTIVE,
                            msg: format!(
                                "hot-path-begin({label}) opened while hot-path-begin({lbl}) from line {start} is still open"
                            ),
                            hint: "close the previous region with // analyze:hot-path-end".into(),
                        });
                    }
                    open_hot = Some((*line, label.clone()));
                }
                Directive::HotEnd { line } => match open_hot.take() {
                    Some((start, label)) => hot.push((start, *line, label)),
                    None => pre_diags.push(Diag {
                        file: rel.to_string(),
                        line: *line,
                        rule: RD_DIRECTIVE,
                        msg: "hot-path-end without a matching hot-path-begin".into(),
                        hint: "remove it, or add // analyze:hot-path-begin(label) above".into(),
                    }),
                },
                Directive::Malformed { line, text } => pre_diags.push(Diag {
                    file: rel.to_string(),
                    line: *line,
                    rule: RD_DIRECTIVE,
                    msg: format!("unrecognized analyze: directive: {text}"),
                    hint: "known forms: analyze:allow(rule,…), analyze:hot-path-begin(label), analyze:hot-path-end".into(),
                }),
            }
        }
        if let Some((start, label)) = open_hot {
            pre_diags.push(Diag {
                file: rel.to_string(),
                line: start,
                rule: RD_DIRECTIVE,
                msg: format!("hot-path-begin({label}) is never closed"),
                hint: "add // analyze:hot-path-end after the region".into(),
            });
        }
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(str::to_string);
        SourceFile {
            rel: rel.to_string(),
            crate_name,
            toks: lexed.toks,
            in_test,
            hot,
            allow,
            pre_diags,
        }
    }

    /// Is `rule` suppressed on `line`?
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allow
            .get(&line)
            .is_some_and(|set| set.contains(rule) || set.contains("all"))
    }

    /// The hot-path label covering `line`, if any.
    pub fn hot_label(&self, line: u32) -> Option<&str> {
        self.hot
            .iter()
            .find(|(a, b, _)| (*a..=*b).contains(&line))
            .map(|(_, _, l)| l.as_str())
    }

    /// Convenience: token `i` is the identifier `s`.
    pub fn ident(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    /// Convenience: token `i` is the punctuation `c`.
    pub fn punct(&self, i: usize, c: char) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
    }
}

/// Mark every token inside a `#[test]`- or `#[cfg(test)]`-attributed item
/// (including `#[cfg(test)] mod tests { … }` bodies). The scan is
/// attribute-driven: on a `#[...]` group containing the ident `test`, the
/// following item — up to its matching closing brace, or to `;` for
/// brace-less items — is flagged.
fn test_flags(toks: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let punct = |i: usize, c: char| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text.starts_with(c))
    };
    let mut i = 0usize;
    while i < toks.len() {
        if !(punct(i, '#') && punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        // Find the matching `]` of the attribute.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut mentions_test = false;
        while j < toks.len() && depth > 0 {
            if punct(j, '[') {
                depth += 1;
            } else if punct(j, ']') {
                depth -= 1;
            } else if toks[j].kind == TokKind::Ident && toks[j].text == "test" {
                mentions_test = true;
            }
            j += 1;
        }
        if !mentions_test {
            i = j;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = j;
        while punct(k, '#') && punct(k + 1, '[') {
            let mut d = 1i32;
            k += 2;
            while k < toks.len() && d > 0 {
                if punct(k, '[') {
                    d += 1;
                } else if punct(k, ']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        // Flag up to the item's end: matching `}` of its first brace, or
        // `;` if one appears first (e.g. `#[cfg(test)] use …;`).
        let start = i;
        let mut d = 0i32;
        let mut end = k;
        while end < toks.len() {
            if punct(end, '{') {
                d += 1;
            } else if punct(end, '}') {
                d -= 1;
                if d == 0 {
                    break;
                }
            } else if d == 0 && punct(end, ';') {
                break;
            }
            end += 1;
        }
        let end = end.min(toks.len().saturating_sub(1));
        for f in flags.iter_mut().take(end + 1).skip(start) {
            *f = true;
        }
        i = end + 1;
    }
    flags
}

/// Walk `root/crates/**` collecting `src/**/*.rs` files, sorted for
/// deterministic reports. Integration tests, benches, examples, and
/// `vendor/` are out of scope by construction: the rules guard *engine*
/// source, and the vendored shims deliberately mirror external crates'
/// APIs rather than workspace conventions.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, p));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mod_tokens_are_flagged() {
        let f = SourceFile::parse(
            "crates/x/src/a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() { v.unwrap(); }\n}\nfn tail() {}\n",
        );
        let unwrap_idx = f
            .toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("token present");
        assert!(f.in_test[unwrap_idx]);
        let tail_idx = f.toks.iter().position(|t| t.text == "tail").unwrap();
        assert!(!f.in_test[tail_idx]);
        let live_idx = f.toks.iter().position(|t| t.text == "live").unwrap();
        assert!(!f.in_test[live_idx]);
    }

    #[test]
    fn test_attribute_on_fn_is_flagged() {
        let f = SourceFile::parse(
            "crates/x/src/a.rs",
            "#[test]\nfn check() { x.unwrap(); }\nfn live() {}\n",
        );
        let unwrap_idx = f.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(f.in_test[unwrap_idx]);
        let live_idx = f.toks.iter().position(|t| t.text == "live").unwrap();
        assert!(!f.in_test[live_idx]);
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let f = SourceFile::parse(
            "crates/x/src/a.rs",
            "// analyze:allow(lock-discipline): reason\nlet g = a.lock();\n",
        );
        assert!(f.allowed(2, "lock-discipline"));
        assert!(!f.allowed(2, "sim-determinism"));
    }

    #[test]
    fn hot_regions_and_unclosed_diag() {
        let f = SourceFile::parse(
            "crates/x/src/a.rs",
            "// analyze:hot-path-begin(kernel)\nfn hot() {}\n// analyze:hot-path-end\n",
        );
        assert_eq!(f.hot_label(2), Some("kernel"));
        assert!(f.pre_diags.is_empty());

        let g = SourceFile::parse("crates/x/src/a.rs", "// analyze:hot-path-begin(kernel)\n");
        assert_eq!(g.pre_diags.len(), 1);
        assert_eq!(g.pre_diags[0].rule, RD_DIRECTIVE);
    }

    #[test]
    fn crate_name_extraction() {
        assert_eq!(
            SourceFile::parse("crates/sched/src/engine.rs", "").crate_name,
            Some("sched".to_string())
        );
        assert_eq!(SourceFile::parse("tests/x.rs", "").crate_name, None);
    }
}
