//! Diagnostics: rule identifiers, the finding record, and the human /
//! machine renderings.

/// R1 — no wall-clock reads, sleeps, or `HashMap`/`HashSet` iteration in
/// engine crates (sim determinism).
pub const R1_SIM_DETERMINISM: &str = "sim-determinism";
/// R2 — no `unwrap`/`expect`/panic macros/indexing inside annotated
/// hot-path regions.
pub const R2_HOT_PATH_PANIC: &str = "hot-path-panic";
/// R3 — obs registrations use the dotted `plane.subsystem.name` convention
/// and each name is registered exactly once.
pub const R3_OBS_NAMING: &str = "obs-naming";
/// R4 — ARCHITECTURE.md audit-channel and obs-span tables match the code.
pub const R4_DOCS_SYNC: &str = "docs-sync";
/// R5 — no nested lock scopes (static approximation; the dynamic
/// `lock_order_check` cfg covers ordering across threads).
pub const R5_LOCK_DISCIPLINE: &str = "lock-discipline";
/// Hygiene for the tool's own control comments: malformed `analyze:`
/// directives and unclosed hot-path regions.
pub const RD_DIRECTIVE: &str = "directive";

/// Every rule id, in report order.
pub const ALL_RULES: &[&str] = &[
    R1_SIM_DETERMINISM,
    R2_HOT_PATH_PANIC,
    R3_OBS_NAMING,
    R4_DOCS_SYNC,
    R5_LOCK_DISCIPLINE,
    RD_DIRECTIVE,
];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of the constants above).
    pub rule: &'static str,
    /// What is wrong.
    pub msg: String,
    /// How to fix it.
    pub hint: String,
}

impl Diag {
    /// `file:line: [rule] message (hint: …)` — the CI-log form.
    pub fn human(&self) -> String {
        let mut s = format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg);
        if !self.hint.is_empty() {
            s.push_str(&format!("\n    hint: {}", self.hint));
        }
        s
    }

    fn json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"msg\":\"{}\",\"hint\":\"{}\"}}",
            esc(&self.file),
            self.line,
            self.rule,
            esc(&self.msg),
            esc(&self.hint)
        )
    }
}

/// Render all findings as a JSON array (machine-readable mode).
pub fn render_json(diags: &[Diag]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&d.json());
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_and_json_render() {
        let d = Diag {
            file: "crates/x/src/a.rs".into(),
            line: 7,
            rule: R1_SIM_DETERMINISM,
            msg: "wall-clock read".into(),
            hint: "use SimTime".into(),
        };
        assert_eq!(
            d.human(),
            "crates/x/src/a.rs:7: [sim-determinism] wall-clock read\n    hint: use SimTime"
        );
        let j = render_json(std::slice::from_ref(&d));
        assert!(j.starts_with('['));
        assert!(j.contains("\"line\":7"));
        assert!(j.contains("sim-determinism"));
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diag {
            file: "f".into(),
            line: 1,
            rule: RD_DIRECTIVE,
            msg: "quote \" backslash \\ newline \n".into(),
            hint: String::new(),
        };
        let j = render_json(&[d]);
        assert!(j.contains("quote \\\" backslash \\\\ newline \\n"));
    }
}
