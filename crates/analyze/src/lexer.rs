//! A minimal hand-rolled Rust lexer: just enough token structure for the
//! invariant rules, with zero dependencies (same offline discipline as
//! `vendor/`).
//!
//! The lexer understands comments (line, nested block, doc), string/char
//! literals (including raw strings with hash fences), lifetimes, numbers,
//! raw identifiers, and single-character punctuation. Multi-character
//! operators are left as punctuation sequences — the rules match token
//! *sequences* (`Instant` `:` `:` `now`), so `::` never needs to be a
//! single token.
//!
//! Line comments are additionally scanned for `analyze:` directives:
//!
//! - `// analyze:allow(rule-a, rule-b): justification` — suppress the named
//!   rules on this line (or, when the comment stands on its own line, on
//!   the next line of code).
//! - `// analyze:hot-path-begin(label)` … `// analyze:hot-path-end` —
//!   bracket a region checked by the `hot-path-panic` rule.

/// Token classification — deliberately coarse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `HashMap`, …).
    Ident,
    /// String literal (plain, raw, byte, or C). `text` holds the *content*
    /// (escapes left as written, quotes and fences stripped) so rules can
    /// inspect registered names.
    Str,
    /// Char or numeric literal.
    Literal,
    /// A lifetime (`'a`) or loop label.
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
    pub text: String,
}

/// An `analyze:` control comment.
#[derive(Debug, Clone)]
pub enum Directive {
    /// `analyze:allow(rule, …)`; `own_line` is true when no code precedes
    /// the comment on its line (the allowance then covers the next code
    /// line instead).
    Allow {
        line: u32,
        own_line: bool,
        rules: Vec<String>,
    },
    /// `analyze:hot-path-begin(label)`.
    HotBegin { line: u32, label: String },
    /// `analyze:hot-path-end`.
    HotEnd { line: u32 },
    /// An `analyze:` comment that matched no known form — surfaced as a
    /// diagnostic so typos cannot silently disable a rule.
    Malformed { line: u32, text: String },
}

/// Lexer output: the token stream plus any control directives found in
/// comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub directives: Vec<Directive>,
}

/// Lex `src` into tokens and directives. Never fails: unterminated
/// constructs simply end at EOF (the rules are lint heuristics, not a
/// compiler front-end).
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;
    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && cs.get(i + 1) == Some(&'/') {
            let start = i;
            while i < cs.len() && cs[i] != '\n' {
                i += 1;
            }
            let text: String = cs[start..i].iter().collect();
            parse_directive(&text, line, !line_has_code, &mut out.directives);
            continue;
        }
        // Block comment, nesting allowed.
        if c == '/' && cs.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            i += 2;
            while i < cs.len() && depth > 0 {
                if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if cs[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        line_has_code = true;
        // Raw strings: r"…", r#"…"#, br"…", br#"…"#, b"…", c"…".
        if let Some((ni, content)) = try_raw_or_prefixed_string(&cs, i, &mut line) {
            out.toks.push(Tok {
                line,
                kind: TokKind::Str,
                text: content,
            });
            i = ni;
            continue;
        }
        if c == '"' {
            let l = line;
            let (ni, content) = scan_quoted(&cs, i + 1, '"', &mut line);
            out.toks.push(Tok {
                line: l,
                kind: TokKind::Str,
                text: content,
            });
            i = ni;
            continue;
        }
        if c == '\'' {
            // Lifetime vs char literal: a lifetime is `'` followed by an
            // ident char where the char after the ident run is not `'`.
            let next = cs.get(i + 1).copied().unwrap_or('\0');
            if next != '\\' && is_ident_start(next) {
                let mut j = i + 2;
                while j < cs.len() && is_ident_continue(cs[j]) {
                    j += 1;
                }
                if cs.get(j) != Some(&'\'') {
                    let text: String = cs[i..j].iter().collect();
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Lifetime,
                        text,
                    });
                    i = j;
                    continue;
                }
            }
            let l = line;
            let (ni, content) = scan_quoted(&cs, i + 1, '\'', &mut line);
            out.toks.push(Tok {
                line: l,
                kind: TokKind::Literal,
                text: content,
            });
            i = ni;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < cs.len() && (is_ident_continue(cs[i]) || cs[i] == '.') {
                if cs[i] == '.' {
                    // Consume the dot only for a fractional part; `1..n`
                    // and `1.max(x)` keep their dots as punctuation.
                    if cs.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                        i += 2;
                    } else {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            out.toks.push(Tok {
                line,
                kind: TokKind::Literal,
                text: cs[start..i].iter().collect(),
            });
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            // Raw identifier `r#name`.
            if c == 'r'
                && cs.get(i + 1) == Some(&'#')
                && cs.get(i + 2).copied().is_some_and(is_ident_start)
            {
                i += 2;
            }
            i += 1;
            while i < cs.len() && is_ident_continue(cs[i]) {
                i += 1;
            }
            let text: String = cs[start..i].iter().collect();
            let text = text.strip_prefix("r#").unwrap_or(&text).to_string();
            out.toks.push(Tok {
                line,
                kind: TokKind::Ident,
                text,
            });
            continue;
        }
        out.toks.push(Tok {
            line,
            kind: TokKind::Punct,
            text: c.to_string(),
        });
        i += 1;
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan a `"`/`'`-delimited literal starting just past the opening quote.
/// Returns (index past closing quote, content).
fn scan_quoted(cs: &[char], mut i: usize, quote: char, line: &mut u32) -> (usize, String) {
    let mut content = String::new();
    while i < cs.len() {
        let c = cs[i];
        if c == '\\' {
            content.push(c);
            if let Some(&e) = cs.get(i + 1) {
                content.push(e);
                if e == '\n' {
                    *line += 1;
                }
            }
            i += 2;
            continue;
        }
        if c == quote {
            return (i + 1, content);
        }
        if c == '\n' {
            *line += 1;
        }
        content.push(c);
        i += 1;
    }
    (i, content)
}

/// Handle `r`/`b`/`br`/`c`-prefixed string literals (raw fences included)
/// starting at `i`. Returns the index past the literal and its content, or
/// `None` when the characters at `i` are not a prefixed string.
fn try_raw_or_prefixed_string(cs: &[char], i: usize, line: &mut u32) -> Option<(usize, String)> {
    let c = cs[i];
    let (raw, mut j) = match c {
        'r' => (true, i + 1),
        'c' => (false, i + 1),
        'b' => {
            if cs.get(i + 1) == Some(&'r') {
                (true, i + 2)
            } else {
                (false, i + 1)
            }
        }
        _ => return None,
    };
    let mut hashes = 0usize;
    if raw {
        while cs.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if cs.get(j) != Some(&'"') {
        return None;
    }
    j += 1; // past opening quote
    let mut content = String::new();
    if raw {
        while j < cs.len() {
            if cs[j] == '"' {
                // Need `"` followed by exactly `hashes` hashes to close.
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && cs.get(k) == Some(&'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some((k, content));
                }
            }
            if cs[j] == '\n' {
                *line += 1;
            }
            content.push(cs[j]);
            j += 1;
        }
        Some((j, content))
    } else {
        let (ni, content) = scan_quoted(cs, j, '"', line);
        Some((ni, content))
    }
}

/// Recognize `analyze:` directives inside a line comment. A directive must
/// *start* the comment (after the `//`/`///`/`//!` marker) — prose that
/// merely mentions `analyze:` is not a directive.
fn parse_directive(comment: &str, line: u32, own_line: bool, out: &mut Vec<Directive>) {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    let Some(rest) = body.strip_prefix("analyze:") else {
        return;
    };
    if let Some(r) = rest.strip_prefix("allow(") {
        if let Some(end) = r.find(')') {
            let rules: Vec<String> = r[..end]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if !rules.is_empty() {
                out.push(Directive::Allow {
                    line,
                    own_line,
                    rules,
                });
                return;
            }
        }
    } else if let Some(r) = rest.strip_prefix("hot-path-begin(") {
        if let Some(end) = r.find(')') {
            out.push(Directive::HotBegin {
                line,
                label: r[..end].trim().to_string(),
            });
            return;
        }
    } else if rest.trim_start().starts_with("hot-path-end") {
        out.push(Directive::HotEnd { line });
        return;
    }
    out.push(Directive::Malformed {
        line,
        text: comment.trim().to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("fn a() {\n  b::c(1);\n}\n");
        let kinds: Vec<_> = l.toks.iter().map(|t| (t.line, t.text.as_str())).collect();
        assert_eq!(kinds[0], (1, "fn"));
        assert_eq!(kinds[4], (1, "{"));
        assert!(kinds.contains(&(2, "b")));
        assert!(kinds.contains(&(3, "}")));
    }

    #[test]
    fn strings_keep_content_and_swallow_quotes() {
        assert_eq!(
            texts(r#"x("sched.cycle.select")"#),
            vec!["x", "(", "sched.cycle.select", ")"]
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"quoted \"inner\" text\"#; next";
        let t = texts(src);
        assert!(t.contains(&"quoted \"inner\" text".to_string()));
        assert!(t.contains(&"next".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = t
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits: Vec<_> = t
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["x", "\\n"]);
    }

    #[test]
    fn comments_are_skipped_but_directives_survive() {
        let src = "let a = 1; // analyze:allow(lock-discipline): justified\n/* block\n * spanning */ let b = 2;\n// analyze:hot-path-begin(kernel)\nlet c = 3;\n// analyze:hot-path-end\n";
        let l = lex(src);
        assert!(l.toks.iter().all(|t| !t.text.contains("block")));
        assert_eq!(l.directives.len(), 3);
        match &l.directives[0] {
            Directive::Allow {
                line,
                own_line,
                rules,
            } => {
                assert_eq!(*line, 1);
                assert!(!own_line);
                assert_eq!(rules, &["lock-discipline".to_string()]);
            }
            other => panic!("expected Allow, got {other:?}"),
        }
        assert!(matches!(
            l.directives[1],
            Directive::HotBegin { line: 4, .. }
        ));
        assert!(matches!(l.directives[2], Directive::HotEnd { line: 6 }));
    }

    #[test]
    fn malformed_directive_is_reported() {
        let l = lex("// analyze:alow(typo)\n");
        assert!(matches!(l.directives[0], Directive::Malformed { .. }));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        assert_eq!(texts("1..n"), vec!["1", ".", ".", "n"]);
        assert_eq!(texts("1.5f64"), vec!["1.5f64"]);
    }

    #[test]
    fn raw_idents_lose_their_prefix() {
        assert_eq!(texts("r#type"), vec!["type"]);
    }
}
