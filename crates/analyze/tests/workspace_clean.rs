//! Meta-test: the linter's own workspace must be clean — the same check CI
//! runs as `cargo run -p eus-analyze -- --deny` — and R4 must catch drift
//! seeded into the *real* ARCHITECTURE.md, not just fixture docs.

use eus_analyze::rules::{docsync, obsnames};
use eus_analyze::source::{collect_sources, SourceFile};
use eus_analyze::{analyze_workspace, diag};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn real_workspace_has_zero_findings() {
    let report = analyze_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.files_scanned > 100, "scan saw the whole workspace");
    let rendered: Vec<String> = report.diags.iter().map(|d| d.human()).collect();
    assert!(
        report.diags.is_empty(),
        "the committed workspace must lint clean (CI runs --deny):\n{}",
        rendered.join("\n")
    );
}

/// Collect the real span registrations the same way `analyze_workspace`
/// does, so the drift test cross-checks against live code.
fn real_span_regs(root: &Path) -> Vec<obsnames::Registration> {
    let mut regs = Vec::new();
    let mut sink = Vec::new();
    for (rel, path) in collect_sources(root).expect("walk workspace") {
        let text = std::fs::read_to_string(path).expect("read source");
        let f = SourceFile::parse(&rel, &text);
        regs.extend(obsnames::collect(&f, &mut sink));
    }
    regs
}

#[test]
fn seeded_architecture_drift_is_caught() {
    let root = workspace_root();
    let arch = std::fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md");
    let channels = std::fs::read_to_string(root.join("crates/core/src/audit/channels.rs"))
        .expect("channels.rs");
    let faults = std::fs::read_to_string(root.join("crates/chaos/src/fault.rs")).expect("fault.rs");
    let regs = real_span_regs(&root);

    // Sanity: untampered, the real doc is in sync.
    let mut clean = Vec::new();
    docsync::check(
        &arch,
        "ARCHITECTURE.md",
        &channels,
        "crates/core/src/audit/channels.rs",
        &faults,
        "crates/chaos/src/fault.rs",
        &regs,
        &mut clean,
    );
    let rendered: Vec<String> = clean.iter().map(|d| d.human()).collect();
    assert!(clean.is_empty(), "{}", rendered.join("\n"));

    // Seed drift: rename a documented span row and a documented fault row.
    // Both directions must fire for each — the registered span / real
    // variant loses its row, and the renamed row documents a name nobody
    // has.
    let tampered = arch
        .replace("`sched.cycle.select`", "`sched.cycle.selekt`")
        .replace("| `FeedStall` |", "| `FeedStale` |");
    assert_ne!(
        tampered, arch,
        "ARCHITECTURE.md documents sched.cycle.select and FeedStall"
    );
    let mut drift = Vec::new();
    docsync::check(
        &tampered,
        "ARCHITECTURE.md",
        &channels,
        "crates/core/src/audit/channels.rs",
        &faults,
        "crates/chaos/src/fault.rs",
        &regs,
        &mut drift,
    );
    assert!(drift.iter().all(|d| d.rule == diag::R4_DOCS_SYNC));
    assert!(
        drift
            .iter()
            .any(|d| d.msg.contains("`sched.cycle.select`") && d.msg.contains("no row")),
        "missing-row direction not caught: {drift:?}"
    );
    assert!(
        drift
            .iter()
            .any(|d| d.msg.contains("`sched.cycle.selekt`") && d.msg.contains("not registered")),
        "stale-row direction not caught: {drift:?}"
    );
    assert!(
        drift
            .iter()
            .any(|d| d.msg.contains("`FeedStall`") && d.msg.contains("no row")),
        "missing fault row not caught: {drift:?}"
    );
    assert!(
        drift
            .iter()
            .any(|d| d.msg.contains("`FeedStale`") && d.msg.contains("does not exist")),
        "stale fault row not caught: {drift:?}"
    );
}
