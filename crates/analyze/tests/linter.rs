//! Fixture tests: every rule fires on its bad fixture with the right rule
//! id, and stays quiet on the good twin.

use eus_analyze::rules::{docsync, obsnames::Registration};
use eus_analyze::{diag, lint_source};

/// Fixtures lint as if they lived in an engine crate.
const REL: &str = "crates/sched/src/fixture.rs";

fn rule_ids(text: &str) -> Vec<&'static str> {
    lint_source(REL, text).into_iter().map(|d| d.rule).collect()
}

fn assert_all(found: &[&'static str], rule: &str, at_least: usize) {
    assert!(
        found.len() >= at_least && found.iter().all(|r| *r == rule),
        "expected >= {at_least} findings of `{rule}`, got {found:?}"
    );
}

#[test]
fn r1_sim_determinism_fixture() {
    assert_all(
        &rule_ids(include_str!("fixtures/r1_bad.rs")),
        diag::R1_SIM_DETERMINISM,
        3,
    );
    let good = rule_ids(include_str!("fixtures/r1_good.rs"));
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn r2_hot_path_panic_fixture() {
    assert_all(
        &rule_ids(include_str!("fixtures/r2_bad.rs")),
        diag::R2_HOT_PATH_PANIC,
        3,
    );
    let good = rule_ids(include_str!("fixtures/r2_good.rs"));
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn r3_obs_naming_fixture() {
    assert_all(
        &rule_ids(include_str!("fixtures/r3_bad.rs")),
        diag::R3_OBS_NAMING,
        3,
    );
    let good = rule_ids(include_str!("fixtures/r3_good.rs"));
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn r5_lock_discipline_fixture() {
    assert_all(
        &rule_ids(include_str!("fixtures/r5_bad.rs")),
        diag::R5_LOCK_DISCIPLINE,
        1,
    );
    let good = rule_ids(include_str!("fixtures/r5_good.rs"));
    assert!(good.is_empty(), "{good:?}");
}

fn span_reg(name: &str) -> Registration {
    Registration {
        name: name.into(),
        kind: "span".into(),
        file: "crates/sched/src/obs.rs".into(),
        line: 1,
    }
}

#[test]
fn r4_docs_sync_fixture() {
    let channels = include_str!("fixtures/r4_channels.rs");
    let faults = include_str!("fixtures/r4_faults.rs");
    let regs = [
        span_reg("sched.cycle.select"),
        span_reg("sched.cycle.dispatch"),
    ];

    let mut clean = Vec::new();
    docsync::check(
        include_str!("fixtures/r4_arch_good.md"),
        "fixtures/r4_arch_good.md",
        channels,
        "fixtures/r4_channels.rs",
        faults,
        "fixtures/r4_faults.rs",
        &regs,
        &mut clean,
    );
    assert!(clean.is_empty(), "{clean:?}");

    let mut drift = Vec::new();
    docsync::check(
        include_str!("fixtures/r4_arch_drift.md"),
        "fixtures/r4_arch_drift.md",
        channels,
        "fixtures/r4_channels.rs",
        faults,
        "fixtures/r4_faults.rs",
        &regs,
        &mut drift,
    );
    assert!(drift.iter().all(|d| d.rule == diag::R4_DOCS_SYNC));
    // All drift directions: code channel missing a row, doc row with no
    // variant, registered span missing a row, doc span never registered,
    // code fault missing a row, doc fault with no variant.
    for needle in [
        "`NetTcp`",
        "`GhostChannel`",
        "`sched.cycle.dispatch`",
        "`sched.ghost.span`",
        "`IdpOutage`",
        "`GhostFault`",
    ] {
        assert!(
            drift.iter().any(|d| d.msg.contains(needle)),
            "no finding mentioning {needle}: {drift:?}"
        );
    }
}
