//! R2 fixture: the same kernel, panic-free (and `debug_assert!` stays
//! legal — it compiles out of release builds).

// analyze:hot-path-begin(fixture-kernel)
pub fn kernel(xs: &[u64], i: usize) -> u64 {
    debug_assert!(i <= xs.len());
    let head = xs.get(i).copied().unwrap_or(0);
    let parsed: u64 = "7".parse().unwrap_or(0);
    head.saturating_add(parsed)
}
// analyze:hot-path-end

pub fn setup(xs: &[u64]) -> u64 {
    xs[0]
}
