//! R2 fixture: the panic vocabulary inside an annotated hot region.

// analyze:hot-path-begin(fixture-kernel)
pub fn kernel(xs: &[u64], i: usize) -> u64 {
    let head = xs[i];
    let parsed: u64 = "7".parse().unwrap();
    if head == 0 {
        panic!("zero head");
    }
    head + parsed
}
// analyze:hot-path-end
