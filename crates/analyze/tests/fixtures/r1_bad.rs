//! R1 fixture: every wall-clock / ordering sin the rule must catch.

use std::collections::HashMap;
use std::time::Instant;

pub fn wall_clock() -> u128 {
    let t = Instant::now();
    t.elapsed().as_millis()
}

pub fn sleepy() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn order_leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}
