//! R5 fixture: the same data, locks taken one scope at a time.

use parking_lot::{Mutex, RwLock};

pub struct S {
    a: Mutex<u32>,
    b: RwLock<u32>,
}

impl S {
    pub fn sequential(&self) -> u32 {
        let x = *self.a.lock();
        let y = *self.b.read();
        x + y
    }

    pub fn scoped(&self) -> u32 {
        let x = {
            let ga = self.a.lock();
            *ga
        };
        x + *self.b.read()
    }
}
