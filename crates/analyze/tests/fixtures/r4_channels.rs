//! R4 fixture: the audit-channel enum the doc tables mirror.

pub enum Channel {
    ProcList,
    NetTcp,
}
