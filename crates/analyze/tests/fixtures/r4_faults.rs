//! R4 fixture: the chaos fault enum the doc taxonomy table mirrors.

pub enum Fault {
    NodeCrash { node: NodeId },
    IdpOutage { heal_after: SimDuration },
}
