//! R1 fixture: deterministic equivalents of everything `r1_bad.rs` does.

use std::collections::{BTreeMap, HashMap};

pub fn sim_clock(now: u64) -> u64 {
    now + 1
}

pub fn stable_order(sorted: &BTreeMap<u32, u32>) -> Vec<u32> {
    sorted.keys().copied().collect()
}

pub fn point_lookup(hashed: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    hashed.get(&k).copied()
}
