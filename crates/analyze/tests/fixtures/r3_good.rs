//! R3 fixture: well-formed `plane.subsystem.name` registrations, each
//! registered exactly once.

pub fn register(rec: &mut Recorder) -> (CounterId, SpanId, GaugeId) {
    (
        rec.counter("sched.fixture.hits"),
        rec.span("sched.fixture.scan"),
        rec.gauge("sched.fixture.depth"),
    )
}
