//! R5 fixture: a second lock acquired while a guard is still live.

use parking_lot::{Mutex, RwLock};

pub struct S {
    a: Mutex<u32>,
    b: RwLock<u32>,
}

impl S {
    pub fn nested(&self) -> u32 {
        let ga = self.a.lock();
        *ga + *self.b.read()
    }
}
