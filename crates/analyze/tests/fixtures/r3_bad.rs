//! R3 fixture: malformed and duplicate obs registrations.

pub fn register(rec: &mut Recorder) -> (CounterId, SpanId, CounterId, CounterId) {
    (
        rec.counter("malformed name"),
        rec.span("sched.cycle"),
        rec.counter("sched.fixture.dup"),
        rec.counter("sched.fixture.dup"),
    )
}
