//! Compute nodes as the scheduler sees them.
//!
//! Free capacity and ownership are *cached* on the node and maintained on
//! every claim/release, so the placement hot path asks O(1) questions
//! instead of summing the running-allocation map per query (the scan this
//! module did before the scheduler-scale overhaul). The same cached
//! getters feed the struct-of-arrays columns in [`crate::table::NodeTable`]
//! through its `sync` funnel — a claim or release here is invisible to
//! column scans until the engine syncs the slot, which is why every
//! mutation routes through the engine's mirror-update funnel.

use crate::job::{JobId, TaskAlloc};
use eus_simos::{NodeId, Uid};
use std::collections::{BTreeMap, BTreeSet};

/// Node availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Accepting work.
    Up,
    /// Crashed (fault injection); jobs on it have failed.
    Down,
    /// Administratively removed from scheduling.
    Drained,
}

/// One compute node's schedulable resources and current holdings.
#[derive(Debug, Clone)]
pub struct SchedNode {
    /// Identity (matches the `eus-simos` node and the fabric host).
    pub id: NodeId,
    /// Total cores.
    pub cores: u32,
    /// Total memory (MiB).
    pub mem_mib: u64,
    /// Total GPUs.
    pub gpus: u32,
    /// Availability.
    pub state: NodeState,
    /// Resources currently claimed, per job.
    pub running: BTreeMap<JobId, TaskAlloc>,
    job_users: BTreeMap<JobId, Uid>,
    /// Running-job count per distinct user — makes `owner()` O(1).
    user_jobs: BTreeMap<Uid, u32>,
    // Cached free capacity, maintained by claim/release.
    free_cores: u32,
    free_mem_mib: u64,
    free_gpus: u32,
}

impl SchedNode {
    /// A fresh, idle node.
    pub fn new(id: NodeId, cores: u32, mem_mib: u64, gpus: u32) -> Self {
        SchedNode {
            id,
            cores,
            mem_mib,
            gpus,
            state: NodeState::Up,
            running: BTreeMap::new(),
            job_users: BTreeMap::new(),
            user_jobs: BTreeMap::new(),
            free_cores: cores,
            free_mem_mib: mem_mib,
            free_gpus: gpus,
        }
    }

    /// Cores not currently claimed. O(1).
    #[inline]
    pub fn free_cores(&self) -> u32 {
        self.free_cores
    }

    /// Memory not currently claimed (MiB). O(1).
    #[inline]
    pub fn free_mem_mib(&self) -> u64 {
        self.free_mem_mib
    }

    /// GPUs not currently claimed. O(1).
    #[inline]
    pub fn free_gpus(&self) -> u32 {
        self.free_gpus
    }

    /// True when no job holds anything here.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.running.is_empty()
    }

    /// Cores currently claimed.
    #[inline]
    pub fn busy_cores(&self) -> u32 {
        self.cores - self.free_cores
    }

    /// The node's *sole* user, when exactly one distinct user is present —
    /// the quantity the whole-node user-based policy gates on. `None` when
    /// idle, and also `None` when a shared-policy run has mixed users here.
    /// O(1) via the per-user job counts.
    #[inline]
    pub fn owner(&self) -> Option<Uid> {
        if self.user_jobs.len() == 1 {
            self.user_jobs.keys().next().copied()
        } else {
            None
        }
    }

    /// Does `user` hold at least one running allocation here? O(log users).
    #[inline]
    pub fn has_user(&self, user: Uid) -> bool {
        self.user_jobs.contains_key(&user)
    }

    /// Distinct users with at least one running allocation here — the
    /// cohabitation count the separation audit reports.
    pub fn users_present(&self) -> BTreeSet<Uid> {
        self.user_jobs.keys().copied().collect()
    }

    /// Claim resources for a job. Panics if over-committed — the scheduler
    /// must only place what fits.
    pub fn claim(&mut self, job: JobId, alloc: TaskAlloc, user: Uid) {
        assert!(self.state == NodeState::Up, "claim on non-up node");
        assert!(alloc.cores <= self.free_cores, "core overcommit");
        assert!(alloc.mem_mib <= self.free_mem_mib, "memory overcommit");
        assert!(alloc.gpus <= self.free_gpus, "gpu overcommit");
        let prev = self.running.insert(job, alloc);
        assert!(prev.is_none(), "job double-claimed a node");
        self.job_users.insert(job, user);
        *self.user_jobs.entry(user).or_insert(0) += 1;
        self.free_cores -= alloc.cores;
        self.free_mem_mib -= alloc.mem_mib;
        self.free_gpus -= alloc.gpus;
    }

    /// Release a job's holdings.
    pub fn release(&mut self, job: JobId) -> Option<TaskAlloc> {
        if let Some(user) = self.job_users.remove(&job) {
            match self.user_jobs.get_mut(&user) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    self.user_jobs.remove(&user);
                }
            }
        }
        let alloc = self.running.remove(&job)?;
        self.free_cores += alloc.cores;
        self.free_mem_mib += alloc.mem_mib;
        self.free_gpus += alloc.gpus;
        Some(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(cores: u32, mem: u64, gpus: u32) -> TaskAlloc {
        TaskAlloc {
            tasks: 1,
            cores,
            mem_mib: mem,
            gpus,
        }
    }

    #[test]
    fn claim_and_release_roundtrip() {
        let mut n = SchedNode::new(NodeId(1), 16, 64_000, 2);
        n.claim(JobId(1), alloc(4, 8_000, 1), Uid(100));
        assert_eq!(n.free_cores(), 12);
        assert_eq!(n.free_mem_mib(), 56_000);
        assert_eq!(n.free_gpus(), 1);
        assert_eq!(n.owner(), Some(Uid(100)));
        assert_eq!(n.busy_cores(), 4);
        assert!(n.has_user(Uid(100)));
        assert!(!n.has_user(Uid(101)));

        n.claim(JobId(2), alloc(4, 8_000, 0), Uid(100));
        n.release(JobId(1)).unwrap();
        assert_eq!(n.owner(), Some(Uid(100)), "still owned while a job remains");
        n.release(JobId(2)).unwrap();
        assert!(n.is_idle());
        assert_eq!(n.owner(), None, "ownership clears when idle");
        assert!(!n.has_user(Uid(100)));
        assert!(n.release(JobId(2)).is_none());
        assert_eq!(n.free_cores(), 16);
        assert_eq!(n.free_mem_mib(), 64_000);
        assert_eq!(n.free_gpus(), 2);
    }

    #[test]
    fn mixed_users_allowed_under_shared_policy() {
        let mut n = SchedNode::new(NodeId(1), 16, 64_000, 0);
        n.claim(JobId(1), alloc(4, 8_000, 0), Uid(1));
        n.claim(JobId(2), alloc(4, 8_000, 0), Uid(2));
        assert_eq!(n.owner(), None, "mixed users → no sole owner");
        assert_eq!(n.users_present().len(), 2);
        n.release(JobId(2));
        assert_eq!(n.owner(), Some(Uid(1)), "sole ownership restored");
    }

    #[test]
    #[should_panic(expected = "core overcommit")]
    fn overcommit_cores_panics() {
        let mut n = SchedNode::new(NodeId(1), 4, 1_000, 0);
        n.claim(JobId(1), alloc(8, 100, 0), Uid(1));
    }

    #[test]
    #[should_panic(expected = "gpu overcommit")]
    fn overcommit_gpus_panics() {
        let mut n = SchedNode::new(NodeId(1), 4, 1_000, 1);
        n.claim(JobId(1), alloc(1, 100, 2), Uid(1));
    }

    #[test]
    #[should_panic(expected = "double-claimed")]
    fn double_claim_panics() {
        let mut n = SchedNode::new(NodeId(1), 8, 8_000, 0);
        n.claim(JobId(1), alloc(1, 100, 0), Uid(1));
        n.claim(JobId(1), alloc(1, 100, 0), Uid(1));
    }
}
