//! The scheduler engine: FCFS dispatch with EASY backfill over pluggable
//! node-sharing policies, driven by an internal discrete-event clock.
//!
//! The engine is deliberately policy-parameterized so experiment E4 can run
//! the identical workload under `shared` / `exclusive` / `whole-node` and
//! compare utilization, wait, and throughput — the trade-off Sec. IV-B
//! describes qualitatively.
//!
//! # Scheduler internals (the hot path)
//!
//! At 10k-node scale the naive cycle — collect-and-sort every node per
//! placement attempt, clone the whole node map per EASY shadow computation,
//! shift a `Vec` queue — is quadratic-ish in cluster size and queue depth.
//! This engine instead maintains **incremental indexes**, updated on every
//! claim/release, so a scheduling cycle touches only viable state:
//!
//! * **Placement index** — three id-ordered sets replace the per-attempt
//!   scan: `owned_nodes` (per-user sets of nodes the user solely owns, the
//!   packing-affinity prefix of the old sort), `idle_nodes` (no running
//!   jobs — the only admissible "other" nodes under `Exclusive`,
//!   `WholeNodeUser`, and per-job `--exclusive`), and `avail_nodes` (Up with
//!   free cores — the admissible "other" nodes under `Shared`). A placement
//!   attempt walks the user's owned nodes first and then the relevant set,
//!   reproducing the old `(owned, id)` candidate order exactly without
//!   materializing or sorting a candidate list.
//! * **Capacity-vector shadow** — the EASY shadow time replays running-job
//!   releases in end-time order over a flat `Vec` of per-node free-capacity
//!   counters (cores/mem/gpus + job count + sole owner), maintaining the
//!   total task-fit sum incrementally and early-exiting the moment the head
//!   job fits. No `SchedNode` clones; the two scratch vectors are reused
//!   across cycles.
//! * **Order-indexed queue** — the pending queue is a
//!   `BTreeMap<enqueue-seq, JobId>` (+ reverse map for `cancel`), so head
//!   dispatch and mid-queue backfill removals are O(log q) instead of
//!   `Vec::remove` shifts, while preserving FIFO order and the EASY scan
//!   order bit-for-bit.
//! * **Shared specs** — `Job::spec` is `Arc<JobSpec>`, so scheduling cycles
//!   and `squeue` views share the spec instead of deep-cloning cmdline/name
//!   strings, and partition eligible-sets are borrowed rather than cloned
//!   per cycle.
//!
//! The pre-overhaul implementation is retained verbatim in
//! [`crate::reference`]; `tests/sched_equivalence.rs` proves the two
//! observationally identical over random traces × policies, and
//! `benches/sched_throughput.rs` + `exp_sched_scale` keep the speedup
//! measured. One invariant to keep in mind: `config.policy` must not change
//! mid-run (the index assumes placement decisions were made under the same
//! policy — `SchedConfig` is documented immutable per run).

use crate::job::{Job, JobId, JobSpec, JobState, TaskAlloc};
use crate::node::{NodeState, SchedNode};
use crate::partition::{PartitionError, PartitionTable};
use crate::policy::{tasks_that_fit, NodeSharing};
use crate::privatedata::{may_view, JobView, PrivateData};
use eus_simcore::{Counter, Histogram, SimDuration, SimTime, TimeWeighted};
use eus_simos::{Credentials, NodeId, Uid};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::ops::Bound;
use std::sync::Arc;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Node-sharing policy. Must not change once jobs have run — the
    /// placement index assumes all standing allocations were admitted under
    /// this policy.
    pub policy: NodeSharing,
    /// Enable EASY backfill.
    pub backfill: bool,
    /// How many queued jobs behind the head backfill may consider.
    pub backfill_depth: usize,
    /// View filtering.
    pub private_data: PrivateData,
    /// How long a crashed node stays down before rejoining.
    pub repair_time: SimDuration,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            policy: NodeSharing::Shared,
            backfill: true,
            backfill_depth: 64,
            private_data: PrivateData::open(),
            repair_time: SimDuration::from_secs(600),
        }
    }
}

/// Internal event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Submit(JobId),
    JobEnd(JobId),
    NodeFail(NodeId),
    NodeRepair(NodeId),
}

/// Work the epilog must do after a job leaves a node; consumed by the
/// cluster layer (GPU scrub, process cleanup, device perms — Sec. IV-F).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpilogEvent {
    /// The job that ended.
    pub job: JobId,
    /// Its owner.
    pub user: Uid,
    /// The node it ran on.
    pub node: NodeId,
    /// GPUs it held on that node (each needs a scrub).
    pub gpus: u32,
    /// When it ended.
    pub at: SimTime,
    /// False once the user holds nothing else on that node — the epilog may
    /// then kill stray processes and revoke device access.
    pub user_still_active_on_node: bool,
}

/// A node-failure record for blast-radius accounting (experiment E5).
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// The node that went down.
    pub node: NodeId,
    /// When.
    pub at: SimTime,
    /// Jobs killed, with their owners.
    pub failed_jobs: Vec<(JobId, Uid)>,
}

impl FailureRecord {
    /// Distinct users whose jobs died — the paper's "blast radius".
    pub fn affected_users(&self) -> BTreeSet<Uid> {
        self.failed_jobs.iter().map(|(_, u)| *u).collect()
    }
}

/// Aggregate scheduler measurements.
#[derive(Debug, Clone)]
pub struct SchedMetrics {
    /// Cores *claimed* by allocations, integrated over time (an exclusive
    /// job claims whole nodes).
    pub busy_cores: TimeWeighted,
    /// Cores actually *used* by tasks (tasks × cpus-per-task), integrated
    /// over time — the quantity behind the paper's "poor utilization" claim
    /// for exclusive allocation.
    pub used_cores: TimeWeighted,
    /// Queue-wait times, in seconds.
    pub wait_times: Histogram,
    /// Jobs completed normally.
    pub completed: Counter,
    /// Jobs killed by failures.
    pub failed: Counter,
    /// Jobs killed at their wall-time limit.
    pub timed_out: Counter,
}

/// One node's state in the EASY shadow replay: just the capacity deltas and
/// the two bits admissibility depends on. `Copy`, so building the shadow is
/// a flat memcpy-style pass — no `SchedNode` clones, no nested maps.
#[derive(Debug, Clone, Copy)]
struct ShadowNode {
    id: NodeId,
    free_cores: u32,
    free_mem_mib: u64,
    free_gpus: u32,
    jobs: u32,
    owner: Option<Uid>,
    up: bool,
}

impl ShadowNode {
    fn from_node(n: &SchedNode) -> Self {
        ShadowNode {
            id: n.id,
            free_cores: n.free_cores(),
            free_mem_mib: n.free_mem_mib(),
            free_gpus: n.free_gpus(),
            jobs: n.running.len() as u32,
            owner: n.owner(),
            up: n.state == NodeState::Up,
        }
    }

    /// Tasks of `spec` this shadow node could host right now — the shadow
    /// counterpart of `node_admits` + `tasks_that_fit`, capped at
    /// `u32::MAX` exactly like the real fit computation.
    fn fit(&self, spec: &JobSpec, policy: NodeSharing) -> u64 {
        if !self.up {
            return 0;
        }
        if (matches!(policy, NodeSharing::Exclusive) || spec.request_exclusive) && self.jobs > 0 {
            return 0;
        }
        if matches!(policy, NodeSharing::WholeNodeUser) {
            if let Some(owner) = self.owner {
                if owner != spec.user {
                    return 0;
                }
            }
        }
        let by_cores = (self.free_cores / spec.cpus_per_task.max(1)) as u64;
        let by_mem = self
            .free_mem_mib
            .checked_div(spec.mem_per_task_mib)
            .map_or(u32::MAX as u64, |n| n.min(u32::MAX as u64));
        let by_gpus = self
            .free_gpus
            .checked_div(spec.gpus_per_task)
            .map_or(u32::MAX, |n| n) as u64;
        by_cores.min(by_mem).min(by_gpus)
    }
}

/// The scheduler.
#[derive(Debug)]
pub struct Scheduler {
    /// Configuration (immutable per run for clean experiments).
    pub config: SchedConfig,
    /// Compute nodes.
    pub nodes: BTreeMap<NodeId, SchedNode>,
    /// Every job ever submitted.
    pub jobs: BTreeMap<JobId, Job>,
    /// Pending queue in FIFO order: enqueue-sequence → job.
    queue: BTreeMap<u64, JobId>,
    /// Reverse queue index for O(log q) `cancel`.
    queue_pos: BTreeMap<JobId, u64>,
    queue_seq: u64,
    /// Running jobs keyed by scheduled end time (`started + duration`, the
    /// EASY assumption) — the shadow replay walks this in order directly
    /// instead of collecting and sorting every running job per cycle, and
    /// its size is the running-job count.
    running_ends: BTreeSet<(SimTime, JobId)>,
    // ---- placement index, maintained on every claim/release ----
    /// Up nodes with zero running jobs, id-ordered.
    idle_nodes: BTreeSet<NodeId>,
    /// Up nodes with at least one free core, id-ordered.
    avail_nodes: BTreeSet<NodeId>,
    /// Per-user sets of nodes the user *solely* owns (packing affinity).
    owned_nodes: BTreeMap<Uid, BTreeSet<NodeId>>,
    // ---- reusable shadow scratch (allocation-free steady state) ----
    shadow_scratch: Vec<ShadowNode>,
    /// Persistent per-node capacity mirror, id-ascending, maintained on
    /// every claim/release/fail/repair — the partition-free shadow build is
    /// a flat copy of this instead of an O(n) walk of the node `BTreeMap`.
    shadow_mirror: Vec<ShadowNode>,
    /// Bumped on every claim/release/fail/repair/add — anything that could
    /// change a placement or shadow answer.
    state_version: u64,
    /// Memoized EASY shadow: `(head job, state_version, shadow)`. A
    /// submission storm fires `try_schedule` per arrival while the head
    /// stays blocked and node state is untouched — the shadow is a pure
    /// function of (head spec, node state, running set), so those cycles
    /// reuse it instead of replaying identically. Absolute times, so a
    /// later `now` does not invalidate it.
    shadow_cache: Option<(JobId, u64, SimTime)>,
    /// Memoized failed head placement `(head job, state_version)`: while
    /// nothing claims or releases, a blocked head stays blocked — skip the
    /// re-attempt on pure arrival events.
    head_fail_cache: Option<(JobId, u64)>,
    /// Backfill candidates whose placement failed at `.0 == state_version`
    /// — valid until any claim/release (the set is cleared when the
    /// version moves). Saves re-walking the candidate window per arrival.
    backfill_fails: (u64, BTreeSet<JobId>),
    events: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    next_job: u64,
    next_node: u32,
    seq: u64,
    now: SimTime,
    /// Metrics.
    pub metrics: SchedMetrics,
    epilogs: Vec<EpilogEvent>,
    /// Node-failure history.
    pub failures: Vec<FailureRecord>,
    /// Partition table (empty = partitioning disabled, all nodes eligible).
    /// Private so every mutation goes through [`Scheduler::partitions_mut`],
    /// which invalidates the placement/shadow memos — eligibility is part
    /// of what they cache.
    partitions: PartitionTable,
    admins: BTreeSet<Uid>,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new(config: SchedConfig) -> Self {
        Scheduler {
            config,
            nodes: BTreeMap::new(),
            jobs: BTreeMap::new(),
            queue: BTreeMap::new(),
            queue_pos: BTreeMap::new(),
            queue_seq: 0,
            running_ends: BTreeSet::new(),
            idle_nodes: BTreeSet::new(),
            avail_nodes: BTreeSet::new(),
            owned_nodes: BTreeMap::new(),
            shadow_scratch: Vec::new(),
            shadow_mirror: Vec::new(),
            state_version: 0,
            shadow_cache: None,
            head_fail_cache: None,
            backfill_fails: (0, BTreeSet::new()),
            events: BinaryHeap::new(),
            next_job: 1,
            next_node: 1,
            seq: 0,
            now: SimTime::ZERO,
            metrics: SchedMetrics {
                busy_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                used_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                wait_times: Histogram::new(),
                completed: Counter::new(),
                failed: Counter::new(),
                timed_out: Counter::new(),
            },
            epilogs: Vec::new(),
            failures: Vec::new(),
            partitions: PartitionTable::new(),
            admins: BTreeSet::new(),
        }
    }

    /// Add a node with auto-assigned id.
    pub fn add_node(&mut self, cores: u32, mem_mib: u64, gpus: u32) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes
            .insert(id, SchedNode::new(id, cores, mem_mib, gpus));
        self.idle_nodes.insert(id);
        if cores > 0 {
            self.avail_nodes.insert(id);
        }
        self.shadow_mirror
            .push(ShadowNode::from_node(&self.nodes[&id]));
        self.state_version += 1;
        id
    }

    /// Refresh one node's entry in the persistent shadow mirror.
    fn mirror_update(&mut self, nid: NodeId) {
        let sn = ShadowNode::from_node(&self.nodes[&nid]);
        let idx = self
            .shadow_mirror
            .binary_search_by_key(&nid, |m| m.id)
            .expect("every node is mirrored");
        self.shadow_mirror[idx] = sn;
    }

    /// Register an operator/coordinator exempt from PrivateData filtering.
    pub fn add_admin(&mut self, uid: Uid) {
        self.admins.insert(uid);
    }

    /// Is this uid a registered operator?
    pub fn is_admin(&self, uid: Uid) -> bool {
        self.admins.contains(&uid)
    }

    /// The partition table.
    pub fn partitions(&self) -> &PartitionTable {
        &self.partitions
    }

    /// Mutable access to the partition table. Changing partitions changes
    /// which nodes are eligible, so the memoized placement/shadow answers
    /// are invalidated here.
    pub fn partitions_mut(&mut self) -> &mut PartitionTable {
        self.state_version += 1;
        &mut self.partitions
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sum of all Up nodes' cores.
    pub fn total_cores(&self) -> u64 {
        self.nodes.values().map(|n| n.cores as u64).sum()
    }

    /// Claimed-core utilization over `[0, now]`: allocated core-seconds /
    /// capacity. Exclusive jobs inflate this (they claim whole nodes).
    pub fn utilization(&self) -> f64 {
        let cap = self.total_cores() as f64 * self.now.since(SimTime::ZERO).as_secs_f64();
        if cap <= 0.0 {
            return 0.0;
        }
        self.metrics.busy_cores.integral(self.now) / cap
    }

    /// Effective utilization over `[0, now]`: core-seconds actually used by
    /// tasks / capacity. This is the number that collapses under per-job
    /// exclusive allocation with many small jobs (Sec. IV-B).
    pub fn effective_utilization(&self) -> f64 {
        let cap = self.total_cores() as f64 * self.now.since(SimTime::ZERO).as_secs_f64();
        if cap <= 0.0 {
            return 0.0;
        }
        self.metrics.used_cores.integral(self.now) / cap
    }

    /// Number of jobs waiting in queue.
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    /// Number of running jobs. O(1).
    pub fn running_count(&self) -> usize {
        self.running_ends.len()
    }

    fn push_event(&mut self, at: SimTime, ev: Ev) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse((at, seq, ev)));
    }

    /// Submit a job to arrive at `at` (clamped to now). Jobs naming an
    /// unknown partition are rejected at submission (state `Cancelled`),
    /// mirroring Slurm's submit-time validation.
    pub fn submit_at(&mut self, at: SimTime, spec: JobSpec) -> JobId {
        self.submit_at_shared(at, Arc::new(spec))
    }

    /// Submit an already-shared spec. Trace replay and fan-out experiments
    /// use this to hand the same `Arc<JobSpec>` to several schedulers
    /// without a deep copy per submission.
    pub fn submit_at_shared(&mut self, at: SimTime, spec: Arc<JobSpec>) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let valid_partition: Result<_, PartitionError> =
            self.partitions.eligible_nodes(spec.partition.as_deref());
        let rejected = valid_partition.is_err();
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: if rejected {
                    JobState::Cancelled
                } else {
                    JobState::Pending
                },
                submitted: at.max(self.now),
                started: None,
                ended: None,
                allocations: BTreeMap::new(),
            },
        );
        if rejected {
            self.jobs.get_mut(&id).expect("just inserted").ended = Some(at.max(self.now));
        } else {
            self.push_event(at, Ev::Submit(id));
        }
        id
    }

    /// Submit arriving now.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        self.submit_at(self.now, spec)
    }

    /// Cancel a pending job (running jobs run to completion, as `scancel`
    /// would need the full kill path we don't model).
    pub fn cancel(&mut self, id: JobId) -> bool {
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        if job.state != JobState::Pending {
            return false;
        }
        job.state = JobState::Cancelled;
        job.ended = Some(self.now);
        if let Some(key) = self.queue_pos.remove(&id) {
            self.queue.remove(&key);
        }
        true
    }

    /// Inject a node crash at `at` (the OOM-takes-down-the-node scenario of
    /// Sec. IV-B). The node repairs after `config.repair_time`.
    pub fn schedule_node_failure(&mut self, at: SimTime, node: NodeId) {
        self.push_event(at, Ev::NodeFail(node));
    }

    /// Drain accumulated epilog work (cluster layer consumes).
    pub fn drain_epilogs(&mut self) -> Vec<EpilogEvent> {
        std::mem::take(&mut self.epilogs)
    }

    /// Does `user` have a running job with an allocation on `node`? (The
    /// `pam_slurm` question.) O(log) via the node's per-user job counts.
    pub fn has_running_job_on(&self, user: Uid, node: NodeId) -> bool {
        self.nodes.get(&node).is_some_and(|n| n.has_user(user))
    }

    /// `squeue` as seen by `viewer` under the PrivateData configuration.
    /// Rows are views over the shared spec — no name/cmdline deep clones.
    pub fn squeue(&self, viewer: &Credentials) -> Vec<JobView> {
        let admin = self.is_admin(viewer.uid);
        self.jobs
            .values()
            .filter(|j| !j.state.is_terminal())
            .filter(|j| may_view(viewer, j.spec.user, self.config.private_data.jobs, admin))
            .map(|j| JobView {
                id: j.id,
                user: j.spec.user,
                spec: Arc::clone(&j.spec),
                state: j.state,
                nodes: j.allocations.keys().copied().collect(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Fire events up to and including `horizon`; the clock lands on
    /// `horizon` afterwards.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(Reverse((t, _, _))) = self.events.peek() {
            if *t > horizon {
                break;
            }
            let Reverse((t, _, ev)) = self.events.pop().expect("peeked");
            self.now = t;
            self.fire(ev);
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    /// Run until no events remain (all submitted work finished). Returns the
    /// final clock (the makespan end).
    pub fn run_to_completion(&mut self) -> SimTime {
        while let Some(Reverse((t, _, ev))) = self.events.pop() {
            self.now = t;
            self.fire(ev);
        }
        self.now
    }

    fn fire(&mut self, ev: Ev) {
        match ev {
            Ev::Submit(j) => {
                if self.jobs[&j].state == JobState::Pending {
                    let key = self.queue_seq;
                    self.queue_seq += 1;
                    self.queue.insert(key, j);
                    self.queue_pos.insert(j, key);
                    self.try_schedule();
                }
            }
            Ev::JobEnd(j) => {
                if self.jobs[&j].state == JobState::Running {
                    // Did the job end on its own, or did slurmstepd kill it
                    // at the wall-time limit?
                    let spec = &self.jobs[&j].spec;
                    let outcome = if spec.time_limit < spec.duration {
                        JobState::Timeout
                    } else {
                        JobState::Completed
                    };
                    self.finish_job(j, outcome);
                    self.try_schedule();
                }
            }
            Ev::NodeFail(n) => {
                self.fail_node(n);
                self.try_schedule();
            }
            Ev::NodeRepair(n) => {
                if let Some(node) = self.nodes.get_mut(&n) {
                    if node.state == NodeState::Down {
                        node.state = NodeState::Up;
                        self.state_version += 1;
                        // Everything on it died at failure time, so it
                        // rejoins idle.
                        if node.is_idle() {
                            self.idle_nodes.insert(n);
                        }
                        if node.free_cores() > 0 {
                            self.avail_nodes.insert(n);
                        }
                        self.mirror_update(n);
                    }
                }
                self.try_schedule();
            }
        }
    }

    fn fail_node(&mut self, n: NodeId) {
        let Some(node) = self.nodes.get_mut(&n) else {
            return;
        };
        if node.state != NodeState::Up {
            return;
        }
        node.state = NodeState::Down;
        self.state_version += 1;
        self.idle_nodes.remove(&n);
        self.avail_nodes.remove(&n);
        let victims: Vec<JobId> = self.nodes[&n].running.keys().copied().collect();
        self.mirror_update(n);
        let mut record = FailureRecord {
            node: n,
            at: self.now,
            failed_jobs: Vec::new(),
        };
        for j in victims {
            let user = self.jobs[&j].spec.user;
            record.failed_jobs.push((j, user));
            self.finish_job(j, JobState::Failed);
        }
        self.failures.push(record);
        self.push_event(self.now + self.config.repair_time, Ev::NodeRepair(n));
    }

    // ------------------------------------------------------------------
    // Index maintenance: every resource transition funnels through these.
    // ------------------------------------------------------------------

    /// Move a node between per-user owned sets when its sole owner changed.
    fn reindex_owner(&mut self, nid: NodeId, prev: Option<Uid>, new: Option<Uid>) {
        if prev == new {
            return;
        }
        if let Some(o) = prev {
            if let Some(set) = self.owned_nodes.get_mut(&o) {
                set.remove(&nid);
                if set.is_empty() {
                    self.owned_nodes.remove(&o);
                }
            }
        }
        if let Some(o) = new {
            self.owned_nodes.entry(o).or_default().insert(nid);
        }
    }

    /// Claim `alloc` on a node and keep the placement index current.
    fn claim_on(&mut self, nid: NodeId, job: JobId, alloc: TaskAlloc, user: Uid) {
        self.state_version += 1;
        let node = self.nodes.get_mut(&nid).expect("placement on known node");
        let prev_owner = node.owner();
        node.claim(job, alloc, user);
        let new_owner = node.owner();
        self.idle_nodes.remove(&nid);
        if node.free_cores() == 0 {
            self.avail_nodes.remove(&nid);
        }
        self.reindex_owner(nid, prev_owner, new_owner);
        self.mirror_update(nid);
    }

    /// Release a job's holdings on a node and keep the placement index
    /// current. A Down node's capacity returns but it rejoins no candidate
    /// set until repair.
    fn release_on(&mut self, nid: NodeId, job: JobId) -> Option<TaskAlloc> {
        self.state_version += 1;
        let node = self.nodes.get_mut(&nid)?;
        let prev_owner = node.owner();
        let alloc = node.release(job)?;
        let new_owner = node.owner();
        self.reindex_owner(nid, prev_owner, new_owner);
        let node = &self.nodes[&nid];
        if node.state == NodeState::Up {
            if node.free_cores() > 0 {
                self.avail_nodes.insert(nid);
            }
            if node.is_idle() {
                self.idle_nodes.insert(nid);
            }
        }
        self.mirror_update(nid);
        Some(alloc)
    }

    fn finish_job(&mut self, id: JobId, state: JobState) {
        let job = self.jobs.get_mut(&id).expect("known job");
        debug_assert_eq!(job.state, JobState::Running);
        job.state = state;
        job.ended = Some(self.now);
        let user = job.spec.user;
        let allocations: Vec<(NodeId, TaskAlloc)> =
            job.allocations.iter().map(|(n, a)| (*n, *a)).collect();
        let cpus_per_task = job.spec.cpus_per_task;
        self.running_ends.remove(&(
            job.started.expect("running has start") + job.spec.duration,
            id,
        ));
        let mut released_cores = 0u32;
        let mut released_used = 0u32;
        for (nid, alloc) in &allocations {
            if self.release_on(*nid, id).is_some() {
                released_cores += alloc.cores;
                released_used += alloc.tasks * cpus_per_task;
            }
        }
        self.metrics
            .busy_cores
            .add(self.now, -(released_cores as f64));
        self.metrics
            .used_cores
            .add(self.now, -(released_used as f64));
        match state {
            JobState::Completed => self.metrics.completed.incr(),
            JobState::Failed => self.metrics.failed.incr(),
            JobState::Timeout => self.metrics.timed_out.incr(),
            _ => {}
        }
        // Epilog per node, with the "is the user gone from this node" bit.
        for (nid, alloc) in &allocations {
            let still_active = self.has_running_job_on(user, *nid);
            self.epilogs.push(EpilogEvent {
                job: id,
                user,
                node: *nid,
                gpus: alloc.gpus,
                at: self.now,
                user_still_active_on_node: still_active,
            });
        }
    }

    fn start_job(&mut self, id: JobId, placement: Vec<(NodeId, TaskAlloc)>) {
        let now = self.now;
        let (user, duration, submitted, cpus_per_task) = {
            let job = &self.jobs[&id];
            (
                job.spec.user,
                job.spec.duration,
                job.submitted,
                job.spec.cpus_per_task,
            )
        };
        let mut total_cores = 0u32;
        let mut used_cores = 0u32;
        for (nid, alloc) in &placement {
            self.claim_on(*nid, id, *alloc, user);
            total_cores += alloc.cores;
            used_cores += alloc.tasks * cpus_per_task;
        }
        {
            let job = self.jobs.get_mut(&id).expect("known job");
            job.state = JobState::Running;
            job.started = Some(now);
            job.allocations = placement.into_iter().collect();
        }
        self.running_ends.insert((now + duration, id));
        self.metrics.busy_cores.add(now, total_cores as f64);
        self.metrics.used_cores.add(now, used_cores as f64);
        self.metrics
            .wait_times
            .record(now.since(submitted).as_secs_f64());
        // The step daemon enforces the requested wall-time limit.
        let runtime = duration.min(self.jobs[&id].spec.time_limit);
        self.push_event(now + runtime, Ev::JobEnd(id));
    }

    // ------------------------------------------------------------------
    // Placement over the incremental index
    // ------------------------------------------------------------------

    /// The greedy per-node allocation, identical to the reference's.
    fn alloc_for(node: &SchedNode, spec: &JobSpec, policy: NodeSharing, fit: u32) -> TaskAlloc {
        if policy.charges_whole_node(spec) {
            // Exclusive: the job takes the whole node.
            TaskAlloc {
                tasks: fit,
                cores: node.cores,
                mem_mib: node.mem_mib,
                gpus: node.gpus,
            }
        } else {
            TaskAlloc {
                tasks: fit,
                cores: fit * spec.cpus_per_task,
                mem_mib: fit as u64 * spec.mem_per_task_mib,
                gpus: fit * spec.gpus_per_task,
            }
        }
    }

    /// Try to place `spec` using the maintained candidate index instead of
    /// scanning and sorting every node. Candidate order reproduces the old
    /// sort exactly: the user's solely-owned nodes first (packing
    /// affinity), then the policy-relevant remainder, both in id order.
    fn placement_for(
        &self,
        spec: &JobSpec,
        eligible: Option<&BTreeSet<NodeId>>,
    ) -> Option<Vec<(NodeId, TaskAlloc)>> {
        let user = spec.user;
        let policy = self.config.policy;
        let mut remaining = spec.tasks;
        let mut placement = Vec::new();

        let try_node = |nid: NodeId, remaining: &mut u32, placement: &mut Vec<_>| {
            if eligible.is_some_and(|set| !set.contains(&nid)) {
                return;
            }
            let node = &self.nodes[&nid];
            if !policy.node_admits(node, user, spec) {
                return;
            }
            let fit = tasks_that_fit(node, spec).min(*remaining);
            if fit == 0 {
                return;
            }
            placement.push((nid, Self::alloc_for(node, spec, policy, fit)));
            *remaining -= fit;
        };

        // Phase 1: nodes this user solely owns (admissibility still checked
        // — under Exclusive / per-job --exclusive they are busy and refuse).
        if let Some(owned) = self.owned_nodes.get(&user) {
            for &nid in owned {
                if remaining == 0 {
                    break;
                }
                try_node(nid, &mut remaining, &mut placement);
            }
        }

        // Phase 2: the policy-relevant remainder. Under Shared (without a
        // per-job --exclusive) any Up node with free cores is admissible;
        // under every other policy only idle nodes are. Skip nodes already
        // visited in phase 1.
        if remaining > 0 {
            let shared_path = matches!(policy, NodeSharing::Shared) && !spec.request_exclusive;
            let source: &BTreeSet<NodeId> = if shared_path {
                &self.avail_nodes
            } else {
                &self.idle_nodes
            };
            // Walk the smaller of (source, eligible); both are id-ordered
            // so candidate order is preserved either way.
            match eligible {
                Some(set) if set.len() < source.len() => {
                    for &nid in set {
                        if remaining == 0 {
                            break;
                        }
                        if !source.contains(&nid) {
                            continue;
                        }
                        if shared_path && self.nodes[&nid].owner() == Some(user) {
                            continue; // phase 1 already visited
                        }
                        try_node(nid, &mut remaining, &mut placement);
                    }
                }
                _ => {
                    for &nid in source {
                        if remaining == 0 {
                            break;
                        }
                        if shared_path && self.nodes[&nid].owner() == Some(user) {
                            continue; // phase 1 already visited
                        }
                        try_node(nid, &mut remaining, &mut placement);
                    }
                }
            }
        }

        if remaining == 0 {
            Some(placement)
        } else {
            None
        }
    }

    /// Earliest time the head job could start, assuming running jobs end on
    /// schedule (the EASY shadow time).
    ///
    /// Replays running-job releases in end-time order over a flat capacity
    /// vector, maintaining the total task-fit incrementally: placement for
    /// the head exists **iff** the summed per-node fit reaches its task
    /// count (per-node fits are independent), so the first release that
    /// pushes the sum over the line is the shadow time. No node-map clone,
    /// no repeated full placements, reusable scratch.
    fn shadow_time_for(&mut self, head: &JobSpec) -> SimTime {
        let mut snodes = std::mem::take(&mut self.shadow_scratch);
        snodes.clear();
        let result = self.shadow_compute(head, &mut snodes);
        self.shadow_scratch = snodes;
        result
    }

    fn shadow_compute(&self, head: &JobSpec, snodes: &mut Vec<ShadowNode>) -> SimTime {
        let policy = self.config.policy;
        let eligible = self
            .partitions
            .eligible_nodes(head.partition.as_deref())
            .expect("validated at submit");
        // Build the capacity vector over eligible nodes, id order (so
        // per-release lookups can binary-search). Down nodes carry `up:
        // false` (fit 0). Without partitions this is a flat copy of the
        // maintained mirror — no node-map walk at all.
        match eligible {
            Some(set) => {
                for &nid in set {
                    if let Some(n) = self.nodes.get(&nid) {
                        snodes.push(ShadowNode::from_node(n));
                    }
                }
            }
            None => snodes.extend_from_slice(&self.shadow_mirror),
        }
        let needed = head.tasks as u64;
        let mut total: u64 = snodes.iter().map(|sn| sn.fit(head, policy)).sum();
        if total >= needed {
            return self.now;
        }
        // Replay running-job releases in end-time order — `running_ends` is
        // maintained in exactly that order, so no per-cycle collect + sort.
        for &(end_t, jid) in &self.running_ends {
            for (&nid, alloc) in &self.jobs[&jid].allocations {
                let Ok(idx) = snodes.binary_search_by_key(&nid, |sn| sn.id) else {
                    continue; // allocation on an ineligible node
                };
                let sn = &mut snodes[idx];
                total -= sn.fit(head, policy);
                sn.free_cores += alloc.cores;
                sn.free_mem_mib += alloc.mem_mib;
                sn.free_gpus += alloc.gpus;
                sn.jobs -= 1;
                if sn.jobs == 0 {
                    sn.owner = None;
                }
                total += sn.fit(head, policy);
            }
            if total >= needed {
                return end_t;
            }
        }
        SimTime::MAX
    }

    fn try_schedule(&mut self) {
        loop {
            let Some((&head_key, &head)) = self.queue.iter().next() else {
                return;
            };
            let head_spec = Arc::clone(&self.jobs[&head].spec);
            // While nothing claimed or released, a blocked head stays
            // blocked (placement is a pure function of spec + node state):
            // skip the re-attempt on pure arrival events.
            let known_blocked = matches!(
                self.head_fail_cache,
                Some((j, v)) if j == head && v == self.state_version
            );
            let placement = if known_blocked {
                None
            } else {
                let eligible = self
                    .partitions
                    .eligible_nodes(head_spec.partition.as_deref())
                    .expect("validated at submit");
                self.placement_for(&head_spec, eligible)
            };
            if let Some(p) = placement {
                self.queue.remove(&head_key);
                self.queue_pos.remove(&head);
                self.start_job(head, p);
                continue;
            }
            self.head_fail_cache = Some((head, self.state_version));
            if !self.config.backfill {
                return;
            }
            // EASY backfill: start later jobs only if they cannot delay the
            // head job's shadow start. The shadow is memoized per (head,
            // state-version): arrival-flood cycles that changed nothing on
            // the nodes reuse the previous answer.
            let shadow = match self.shadow_cache {
                Some((j, v, s)) if j == head && v == self.state_version => s,
                _ => {
                    let s = self.shadow_time_for(&head_spec);
                    self.shadow_cache = Some((head, self.state_version, s));
                    s
                }
            };
            let mut scanned = 0;
            let mut cursor = head_key;
            while scanned < self.config.backfill_depth {
                let Some((&key, &cand)) = self
                    .queue
                    .range((Bound::Excluded(cursor), Bound::Unbounded))
                    .next()
                else {
                    break;
                };
                scanned += 1;
                cursor = key;
                let spec = Arc::clone(&self.jobs[&cand].spec);
                let fits_before_shadow =
                    shadow == SimTime::MAX || self.now + spec.time_limit <= shadow;
                if fits_before_shadow {
                    // Failed attempts are memoized per state version: while
                    // nothing claimed or released, the same candidate fails
                    // the same way (starting a candidate bumps the version
                    // and invalidates the set).
                    if self.backfill_fails.0 != self.state_version {
                        self.backfill_fails = (self.state_version, BTreeSet::new());
                    }
                    if self.backfill_fails.1.contains(&cand) {
                        continue;
                    }
                    let placement = {
                        let eligible = self
                            .partitions
                            .eligible_nodes(spec.partition.as_deref())
                            .expect("validated at submit");
                        self.placement_for(&spec, eligible)
                    };
                    if let Some(p) = placement {
                        self.queue.remove(&key);
                        self.queue_pos.remove(&cand);
                        self.start_job(cand, p);
                    } else {
                        self.backfill_fails.1.insert(cand);
                    }
                }
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(policy: NodeSharing, nodes: u32, cores: u32) -> Scheduler {
        let mut s = Scheduler::new(SchedConfig {
            policy,
            ..SchedConfig::default()
        });
        for _ in 0..nodes {
            s.add_node(cores, 64_000, 0);
        }
        s
    }

    fn job(user: u32, tasks: u32, secs: u64) -> JobSpec {
        JobSpec::new(
            Uid(user),
            format!("u{user}-job"),
            SimDuration::from_secs(secs),
        )
        .with_tasks(tasks)
        .with_mem_per_task(100)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        let id = s.submit_at(SimTime::from_secs(1), job(1, 4, 10));
        let end = s.run_to_completion();
        assert_eq!(end, SimTime::from_secs(11));
        let j = &s.jobs[&id];
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.started, Some(SimTime::from_secs(1)));
        assert_eq!(s.metrics.completed.get(), 1);
        assert!(s.nodes.values().all(|n| n.is_idle()));
    }

    #[test]
    fn shared_packs_two_users_on_one_node() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 2, "both fit simultaneously");
    }

    #[test]
    fn whole_node_serializes_different_users_on_one_node() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 4, 10));
        let b = s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 1, "second user must wait");
        let end = s.run_to_completion();
        assert_eq!(end, SimTime::from_secs(20));
        assert_eq!(s.jobs[&a].state, JobState::Completed);
        assert_eq!(s.jobs[&b].started, Some(SimTime::from_secs(10)));
    }

    #[test]
    fn whole_node_packs_same_user() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 2, "same user's jobs co-schedule");
    }

    #[test]
    fn exclusive_charges_whole_node() {
        let mut s = sched(NodeSharing::Exclusive, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.run_until(SimTime::from_secs(1));
        // Two nodes → two exclusive jobs; the third waits even though cores
        // are plentiful.
        assert_eq!(s.running_count(), 2);
        assert_eq!(s.pending_count(), 1);
        // Utilization is charged for the whole node.
        assert_eq!(s.metrics.busy_cores.current(), 16.0);
    }

    #[test]
    fn multi_node_job_spreads() {
        let mut s = sched(NodeSharing::Shared, 3, 4);
        let id = s.submit_at(SimTime::ZERO, job(1, 10, 5));
        s.run_until(SimTime::from_secs(1));
        let j = &s.jobs[&id];
        assert_eq!(j.state, JobState::Running);
        assert_eq!(j.allocations.len(), 3);
        let tasks: u32 = j.allocations.values().map(|a| a.tasks).sum();
        assert_eq!(tasks, 10);
    }

    #[test]
    fn job_too_big_never_starts() {
        let mut s = sched(NodeSharing::Shared, 1, 4);
        let id = s.submit_at(SimTime::ZERO, job(1, 100, 5));
        s.run_until(SimTime::from_secs(100));
        assert_eq!(s.jobs[&id].state, JobState::Pending);
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn backfill_fills_hole_without_delaying_head() {
        // 8-core node, fully busy 100s; head (8 cores) must wait to t=100; a
        // tiny 2-core job cannot start either (node full) and, once the head
        // takes the whole node at t=100, waits for the head too.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 8, 100)); // fills the node
        let head = s.submit_at(SimTime::from_secs(1), job(2, 8, 50)); // must wait to t=100
        let small = s.submit_at(SimTime::from_secs(2), job(3, 8, 99).with_cpus_per_task(0));
        s.cancel(small);
        let tiny = s.submit_at(SimTime::from_secs(2), job(3, 2, 10));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.running_count(), 1);
        s.run_to_completion();
        assert_eq!(s.jobs[&head].started, Some(SimTime::from_secs(100)));
        assert_eq!(s.jobs[&tiny].started, Some(SimTime::from_secs(150)));
    }

    #[test]
    fn backfill_true_hole_filling() {
        // Node of 8 cores: job A (6 cores, 100s) leaves a 2-core hole.
        // Head job B needs 8 cores → shadow = 100. Candidate C (2 cores,
        // 50s) fits the hole and ends at ~52 < 100 → backfills.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 6, 100));
        let b = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        let c = s.submit_at(SimTime::from_secs(2), job(3, 2, 50));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.jobs[&a].state, JobState::Running);
        assert_eq!(s.jobs[&b].state, JobState::Pending, "head waits");
        assert_eq!(s.jobs[&c].state, JobState::Running, "C backfilled");
        s.run_to_completion();
        assert_eq!(
            s.jobs[&b].started,
            Some(SimTime::from_secs(100)),
            "head not delayed by backfill"
        );
    }

    #[test]
    fn backfill_refuses_delaying_candidates() {
        // Same setup but C runs 200s > shadow → must NOT backfill.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 6, 100));
        let b = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        let c = s.submit_at(SimTime::from_secs(2), job(3, 2, 200));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.jobs[&c].state, JobState::Pending, "would delay head");
        s.run_to_completion();
        assert_eq!(s.jobs[&b].started, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn node_failure_kills_jobs_and_repairs() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        let bjob = s.submit_at(SimTime::ZERO, job(2, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        // Both jobs were packed onto node 1 (first fit) in shared mode.
        assert_eq!(s.jobs[&a].state, JobState::Failed);
        assert_eq!(s.jobs[&bjob].state, JobState::Failed);
        assert_eq!(s.failures.len(), 1);
        assert_eq!(s.failures[0].affected_users().len(), 2, "blast radius 2");
        assert_eq!(s.metrics.failed.get(), 2);
        // Node repairs after repair_time (600s default).
        s.run_until(SimTime::from_secs(700));
        assert_eq!(s.nodes[&NodeId(1)].state, NodeState::Up);
    }

    #[test]
    fn whole_node_failure_blast_radius_is_one_user() {
        let mut s = sched(NodeSharing::WholeNodeUser, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        s.submit_at(SimTime::ZERO, job(2, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        assert_eq!(
            s.failures[0].affected_users().len(),
            1,
            "only node 1's owner"
        );
    }

    #[test]
    fn failed_node_rejoins_scheduling_after_repair() {
        // Regression for the placement index: a repaired node must re-enter
        // the idle/avail candidate sets and accept work again.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        let late = s.submit_at(SimTime::from_secs(20), job(2, 4, 10));
        s.run_until(SimTime::from_secs(21));
        assert_eq!(s.jobs[&late].state, JobState::Pending, "node still down");
        s.run_to_completion();
        assert_eq!(
            s.jobs[&late].started,
            Some(SimTime::from_secs(610)),
            "starts at repair (10s failure + 600s repair_time)"
        );
    }

    #[test]
    fn epilogs_emitted_with_user_departure_flag() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 2, 10));
        s.submit_at(SimTime::ZERO, job(1, 2, 20));
        s.run_to_completion();
        let epilogs = s.drain_epilogs();
        assert_eq!(epilogs.len(), 2);
        // First job ends at t=10 while the second still runs.
        assert!(epilogs[0].user_still_active_on_node);
        // Second ending leaves the node empty of that user.
        assert!(!epilogs[1].user_still_active_on_node);
        assert!(s.drain_epilogs().is_empty(), "drain empties");
    }

    #[test]
    fn squeue_respects_private_data() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.config.private_data = PrivateData::llsc();
        s.add_admin(Uid(50));
        s.submit_at(SimTime::ZERO, job(1, 1, 100));
        s.submit_at(SimTime::ZERO, job(2, 1, 100));
        s.run_until(SimTime::from_secs(1));

        let u1 = Credentials::new(Uid(1), eus_simos::Gid(1));
        let views = s.squeue(&u1);
        assert_eq!(views.len(), 1, "only own jobs");
        assert_eq!(views[0].user, Uid(1));
        assert_eq!(views[0].name(), "u1-job");

        let admin = Credentials::new(Uid(50), eus_simos::Gid(50));
        assert_eq!(s.squeue(&admin).len(), 2, "admins see all");
        assert_eq!(s.squeue(&Credentials::root()).len(), 2);

        s.config.private_data = PrivateData::open();
        assert_eq!(s.squeue(&u1).len(), 2, "open config shows all");
    }

    #[test]
    fn cancel_only_pending() {
        let mut s = sched(NodeSharing::Shared, 1, 2);
        let a = s.submit_at(SimTime::ZERO, job(1, 2, 100));
        let b = s.submit_at(SimTime::ZERO, job(2, 2, 100));
        s.run_until(SimTime::from_secs(1));
        assert!(!s.cancel(a), "running job not cancellable here");
        assert!(s.cancel(b));
        assert_eq!(s.jobs[&b].state, JobState::Cancelled);
        assert!(!s.cancel(b), "idempotent");
    }

    #[test]
    fn utilization_math() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 8, 50));
        s.run_until(SimTime::from_secs(100));
        // 8 cores × 50 s busy out of 8 × 100 capacity = 0.5.
        assert!((s.utilization() - 0.5).abs() < 1e-9, "{}", s.utilization());
    }

    #[test]
    fn wall_time_limit_enforced() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        // Actual runtime 100s, requested limit 30s: killed at 30.
        let j = s.submit_at(
            SimTime::ZERO,
            job(1, 2, 100).with_time_limit(SimDuration::from_secs(30)),
        );
        // A well-behaved job for contrast.
        let ok = s.submit_at(SimTime::ZERO, job(2, 2, 20));
        s.run_to_completion();
        assert_eq!(s.jobs[&j].state, JobState::Timeout);
        assert_eq!(s.jobs[&j].ended, Some(SimTime::from_secs(30)));
        assert_eq!(s.jobs[&ok].state, JobState::Completed);
        assert_eq!(s.metrics.timed_out.get(), 1);
        assert_eq!(s.metrics.completed.get(), 1);
        // Resources released at the limit, not the would-be duration.
        assert!(s.nodes.values().all(|n| n.is_idle()));
    }

    #[test]
    fn partition_confines_placement() {
        let mut s = sched(NodeSharing::Shared, 4, 8);
        s.partitions_mut()
            .add("batch", [NodeId(1), NodeId(2)], true)
            .unwrap();
        s.partitions_mut().add("debug", [NodeId(3)], false).unwrap();
        // Default-partition job lands on nodes 1-2 only, even when 3-4 idle.
        let a = s.submit_at(SimTime::ZERO, job(1, 16, 10)); // needs 2 nodes
                                                            // Debug job lands on node 3.
        let d = s.submit_at(SimTime::ZERO, job(2, 2, 10).with_partition("debug"));
        s.run_until(SimTime::from_secs(1));
        let a_nodes: Vec<NodeId> = s.jobs[&a].allocations.keys().copied().collect();
        assert_eq!(a_nodes, vec![NodeId(1), NodeId(2)]);
        let d_nodes: Vec<NodeId> = s.jobs[&d].allocations.keys().copied().collect();
        assert_eq!(d_nodes, vec![NodeId(3)]);
        // Node 4 belongs to no partition: never used.
        assert!(s.nodes[&NodeId(4)].is_idle());
    }

    #[test]
    fn partition_queues_when_full_despite_free_foreign_nodes() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.partitions_mut().add("small", [NodeId(1)], true).unwrap();
        s.submit_at(SimTime::ZERO, job(1, 8, 100));
        let waiting = s.submit_at(SimTime::ZERO, job(2, 8, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(
            s.jobs[&waiting].state,
            JobState::Pending,
            "node 2 is off-limits"
        );
        s.run_to_completion();
        assert_eq!(s.jobs[&waiting].started, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn unknown_partition_rejected_at_submit() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.partitions_mut().add("batch", [NodeId(1)], true).unwrap();
        let id = s.submit_at(SimTime::ZERO, job(1, 1, 10).with_partition("nope"));
        assert_eq!(s.jobs[&id].state, JobState::Cancelled);
        s.run_to_completion();
        assert_eq!(s.jobs[&id].state, JobState::Cancelled);
        assert_eq!(s.metrics.completed.get(), 0);
    }

    #[test]
    fn pam_slurm_query_surface() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 1, 100));
        s.run_until(SimTime::from_secs(1));
        assert!(s.has_running_job_on(Uid(1), NodeId(1)));
        assert!(!s.has_running_job_on(Uid(1), NodeId(2)));
        assert!(!s.has_running_job_on(Uid(2), NodeId(1)));
    }
}
