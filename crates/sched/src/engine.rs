//! The scheduler engine: FCFS dispatch with EASY backfill over pluggable
//! node-sharing policies, driven by an internal discrete-event clock.
//!
//! The engine is deliberately policy-parameterized so experiment E4 can run
//! the identical workload under `shared` / `exclusive` / `whole-node` and
//! compare utilization, wait, and throughput — the trade-off Sec. IV-B
//! describes qualitatively.
//!
//! # Scheduler internals (the hot path)
//!
//! At 10k-node scale the naive cycle — collect-and-sort every node per
//! placement attempt, clone the whole node map per EASY shadow computation,
//! shift a `Vec` queue — is quadratic-ish in cluster size and queue depth.
//! This engine instead runs on a **cache-native, shardable core**: dense
//! struct-of-arrays node storage, bitmap candidate sets, epoch-stamped
//! overlay scratch, and memoized scan state, all updated incrementally on
//! every claim/release so a scheduling cycle touches only viable state:
//!
//! * **SoA node table** — nodes live in a dense [`crate::table::NodeTable`]
//!   (`slot = id − 1`) whose placement-relevant fields (free cores/mem/gpus,
//!   job count, sole owner, up bit) are mirrored into flat columns. A
//!   placement walk reads 4–16 bytes per rejected candidate instead of
//!   chasing a `BTreeMap` pointer into a ~200-byte struct; the columns are
//!   refreshed from the same `mirror_update` funnel that maintains the
//!   shadow mirror, so they can never drift between decisions.
//! * **Placement index** — bitmap [`crate::table::NodeSet`]s replace the
//!   old id-ordered tree sets: `idle_nodes` (no running jobs — the only
//!   admissible "other" nodes under `Exclusive`, `WholeNodeUser`, and
//!   per-job `--exclusive`) and `avail_nodes` (Up with free cores — the
//!   admissible "other" nodes under `Shared`), plus per-user `owned_nodes`
//!   (packing affinity). Iteration is still ascending-id, so the candidate
//!   order — owned first, then the policy's source set — is bit-identical
//!   to the map-based engine.
//! * **Head-fit gate** — every failed head walk records the *uncapped*
//!   `Σ fit` it observed (exact: any node with positive fit is in the
//!   walked sets), priming the incrementally-maintained [`HeadFit`] total.
//!   While that total stays below the head's task count the placement
//!   re-attempt is provably futile and is skipped in O(1) — arrival storms
//!   against a blocked head cost one counter bump, not an O(nodes) walk.
//! * **Overlay shadow** — the EASY shadow replays running-job releases in
//!   end-time order through an epoch-stamped overlay: each touched node is
//!   first-touch copied from the persistent capacity mirror, so a replay
//!   costs O(touched releases), not an O(nodes) mirror memcpy. The total
//!   task-fit sum is maintained incrementally with early exit the moment
//!   the head fits.
//! * **Backfill scan memo** — the FCFS backfill window scan memoizes its
//!   outcome per `(head, state_version, queue_shrink_epoch)`: an arrival
//!   flood against an unchanged window skips the scan outright, and an
//!   exhausted scan resumes from its cursor so only *new* arrivals are
//!   examined. (Sound because shadow-bound rejects are monotone in `now`
//!   and placement failures are version-memoized; the policy path keeps
//!   full scans — conservative-backfill refusals are not monotone.)
//! * **Order-indexed queue** — the pending queue is a
//!   `BTreeMap<enqueue-seq, JobId>` (+ reverse map for `cancel`), so head
//!   dispatch and mid-queue backfill removals are O(log q) instead of
//!   `Vec::remove` shifts, while preserving FIFO order and the EASY scan
//!   order bit-for-bit.
//! * **Shared specs** — `Job::spec` is `Arc<JobSpec>`, so scheduling cycles
//!   and `squeue` views share the spec instead of deep-cloning cmdline/name
//!   strings, and partition eligible-sets are borrowed rather than cloned
//!   per cycle.
//!
//! # Sharded dispatch
//!
//! With `fair_share` on, the per-partition classes are independent up to
//! the moment a start mutates node state — so [`Scheduler::plan_shards`]
//! fans the per-class head *planning* (candidate walk over that class's
//! capacity mirror) out over the rayon shim at a caller-chosen width
//! ([`Scheduler::set_shard_threads`]). Shards only **precompute**: each
//! returns a pure plan `(node, tasks)` + fit total against the cycle's
//! frozen `state_version`, and the sequential merge consumes seeds in the
//! same `(partition, enqueue-seq)` order the single-threaded loop uses,
//! re-validating `(head, version)` and falling back to the inline walk on
//! any staleness. **Shard-merge determinism rule:** a seed may only be
//! consumed at the exact `(head, state_version)` it was planned for, and
//! consumption order is the sequential class order — so parallel runs are
//! bit-identical to `shard_threads = 1` at any width. Only the
//! `sched.shard.*` counters vary with thread count (see
//! [`crate::obs`] for the full thread-invariance table).
//!
//! The pre-overhaul implementation is retained verbatim in
//! [`crate::reference`]; `tests/sched_equivalence.rs` proves the two
//! observationally identical over random traces × policies,
//! `tests/sched_parallel_equivalence.rs` proves the sharded core
//! bit-identical across thread counts 1/2/4/8, and
//! `benches/sched_throughput.rs` + `exp_sched_scale` keep the speedup
//! measured. One invariant to keep in mind: `config.policy` must not change
//! mid-run (the index assumes placement decisions were made under the same
//! policy — `SchedConfig` is documented immutable per run).
//!
//! # The policy plane
//!
//! Three opt-in knobs layer scheduling *policy* over the hot path above.
//! All default **off**; with every knob off the engine takes the exact
//! pre-policy code path and stays observationally identical to
//! [`crate::reference::ReferenceScheduler`] (still property-checked by
//! `tests/sched_equivalence.rs`).
//!
//! * **`fair_share`** — the queue splits into per-partition queues (keyed
//!   by [`crate::partition::PartitionTable::resolve`]d name), each
//!   selecting its head by the owner's *decayed usage* in that partition
//!   ([`crate::accounting::FairShareLedger`], charged on every completion
//!   and preemption) with FIFO tie-break. Every partition gets its own
//!   head + shadow + backfill pass per cycle, so one partition's backlog
//!   no longer head-of-line-blocks another partition's dispatch or
//!   backfill budget.
//! * **`preemption`** — jobs carry a [`crate::job::QosClass`]; when a
//!   latency-sensitive head cannot place, the engine kills-and-requeues
//!   the cheapest set of strictly-lower-class victims (cost = remaining
//!   core-seconds) whose release provably frees enough capacity (the same
//!   per-node fit-sum argument the shadow uses). Victims leave through the
//!   **full separation epilog** — the scrub/cleanup events fire before the
//!   preemptor's allocation, so the paper's guarantees survive urgency —
//!   and re-enter the queue with a bumped run epoch (stale end events are
//!   ignored).
//! * **`reservations = K`** — the EASY shadow generalizes into a
//!   [`crate::calendar::ReservationCalendar`]: the top-K queued jobs get
//!   planned starts with concrete capacity holds, `earliest_start`
//!   becomes answerable for them, and backfill turns *conservative* (a
//!   candidate must not collide with any held reservation, not just the
//!   head's shadow).
//!
//! The policy plane honors the PR-4 machinery: placement attempts walk the
//! same incremental candidate index, shadows and calendars build from the
//! same capacity mirrors (including the per-partition mirrors that give
//! partitioned builds the flat-copy path), and per-class head/shadow memos
//! skip recomputation on arrival floods. Like `policy`, the plane's knobs
//! and the partition table are immutable once jobs are queued.

use crate::accounting::FairShareLedger;
use crate::calendar::{CapDelta, Reservation, ReservationCalendar};
use crate::job::{Job, JobId, JobSpec, JobState, TaskAlloc};
use crate::node::{NodeState, SchedNode};
use crate::obs::SchedObs;
use crate::partition::{PartitionError, PartitionTable};
use crate::policy::NodeSharing;
use crate::privatedata::{may_view, JobView, PrivateData};
use crate::table::{slot_of, NodeCols, NodeSet, NodeTable};
use eus_obs::TraceCtx;
use eus_simcore::{Counter, Histogram, SimDuration, SimTime, TimeWeighted};
use eus_simos::{Credentials, NodeId, Uid};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::ops::Bound;
use std::sync::Arc;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Node-sharing policy. Must not change once jobs have run — the
    /// placement index assumes all standing allocations were admitted under
    /// this policy.
    pub policy: NodeSharing,
    /// Enable EASY backfill.
    pub backfill: bool,
    /// How many queued jobs behind the head backfill may consider.
    pub backfill_depth: usize,
    /// View filtering.
    pub private_data: PrivateData,
    /// How long a crashed node stays down before rejoining.
    pub repair_time: SimDuration,
    /// Policy plane: multi-partition fair-share head selection over the
    /// decayed usage ledger. Off = strict FIFO order (the reference
    /// behavior).
    pub fair_share: bool,
    /// Half-life of the fair-share usage decay (ignored unless
    /// `fair_share`).
    pub fair_share_half_life: SimDuration,
    /// Policy plane: QoS preemption — latency-sensitive heads may
    /// kill-and-requeue strictly-lower-class running jobs. Off = QoS
    /// classes carried but ignored.
    pub preemption: bool,
    /// Policy plane: conservative-backfill reservation depth. `K > 0`
    /// plans starts for the top-K queued jobs per class and forbids
    /// backfill from colliding with any of them; `0` = plain EASY (head
    /// shadow only).
    pub reservations: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            policy: NodeSharing::Shared,
            backfill: true,
            backfill_depth: 64,
            private_data: PrivateData::open(),
            repair_time: SimDuration::from_secs(600),
            fair_share: false,
            fair_share_half_life: crate::accounting::FAIR_SHARE_HALF_LIFE,
            preemption: false,
            reservations: 0,
        }
    }
}

impl SchedConfig {
    /// Is any policy-plane knob on? Off ⇒ the engine runs the exact
    /// pre-policy code path (reference-identical).
    pub fn policy_plane_active(&self) -> bool {
        self.fair_share || self.preemption || self.reservations > 0
    }
}

/// Internal event kinds. `JobEnd` carries the run epoch it was scheduled
/// for: a preempted-and-requeued job bumps its epoch, so the stale end
/// event from the killed run is ignored when it eventually fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Submit(JobId),
    JobEnd(JobId, u32),
    NodeFail(NodeId),
    NodeRepair(NodeId),
}

/// Work the epilog must do after a job leaves a node; consumed by the
/// cluster layer (GPU scrub, process cleanup, device perms — Sec. IV-F).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpilogEvent {
    /// The job that ended.
    pub job: JobId,
    /// Its owner.
    pub user: Uid,
    /// The node it ran on.
    pub node: NodeId,
    /// GPUs it held on that node (each needs a scrub).
    pub gpus: u32,
    /// When it ended.
    pub at: SimTime,
    /// False once the user holds nothing else on that node — the epilog may
    /// then kill stray processes and revoke device access.
    pub user_still_active_on_node: bool,
}

/// One preemption: who was displaced, by whom, when, and where. The
/// victim's separation epilogs (node scrub, process cleanup) are emitted at
/// `at`, *before* the preemptor's allocation lands on the same nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreemptionRecord {
    /// The displaced (killed-and-requeued) job.
    pub victim: JobId,
    /// Its owner.
    pub victim_user: Uid,
    /// The latency-sensitive job that displaced it.
    pub preempted_by: JobId,
    /// When.
    pub at: SimTime,
    /// Nodes the victim held (each received an epilog).
    pub nodes: Vec<NodeId>,
}

/// A node-failure record for blast-radius accounting (experiment E5).
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// The node that went down.
    pub node: NodeId,
    /// When.
    pub at: SimTime,
    /// Jobs killed, with their owners.
    pub failed_jobs: Vec<(JobId, Uid)>,
}

impl FailureRecord {
    /// Distinct users whose jobs died — the paper's "blast radius".
    pub fn affected_users(&self) -> BTreeSet<Uid> {
        self.failed_jobs.iter().map(|(_, u)| *u).collect()
    }
}

/// Aggregate scheduler measurements.
#[derive(Debug, Clone)]
pub struct SchedMetrics {
    /// Cores *claimed* by allocations, integrated over time (an exclusive
    /// job claims whole nodes).
    pub busy_cores: TimeWeighted,
    /// Cores actually *used* by tasks (tasks × cpus-per-task), integrated
    /// over time — the quantity behind the paper's "poor utilization" claim
    /// for exclusive allocation.
    pub used_cores: TimeWeighted,
    /// Queue-wait times, in seconds.
    pub wait_times: Histogram,
    /// Jobs completed normally.
    pub completed: Counter,
    /// Jobs killed by failures.
    pub failed: Counter,
    /// Jobs killed at their wall-time limit.
    pub timed_out: Counter,
}

/// One node's state in the EASY shadow replay: just the capacity deltas and
/// the two bits admissibility depends on. `Copy`, so building the shadow is
/// a flat memcpy-style pass — no `SchedNode` clones, no nested maps.
#[derive(Debug, Clone, Copy)]
struct ShadowNode {
    id: NodeId,
    free_cores: u32,
    free_mem_mib: u64,
    free_gpus: u32,
    jobs: u32,
    owner: Option<Uid>,
    up: bool,
}

impl ShadowNode {
    fn from_node(n: &SchedNode) -> Self {
        ShadowNode {
            id: n.id,
            free_cores: n.free_cores(),
            free_mem_mib: n.free_mem_mib(),
            free_gpus: n.free_gpus(),
            jobs: n.running.len() as u32,
            owner: n.owner(),
            up: n.state == NodeState::Up,
        }
    }

    // analyze:hot-path-begin(sched-shadow-fit)
    /// Tasks of `spec` this shadow node could host right now — the shadow
    /// counterpart of `node_admits` + `tasks_that_fit`, capped at
    /// `u32::MAX` exactly like the real fit computation.
    fn fit(&self, spec: &JobSpec, policy: NodeSharing) -> u64 {
        if !self.up {
            return 0;
        }
        if (matches!(policy, NodeSharing::Exclusive) || spec.request_exclusive) && self.jobs > 0 {
            return 0;
        }
        if matches!(policy, NodeSharing::WholeNodeUser) {
            if let Some(owner) = self.owner {
                if owner != spec.user {
                    return 0;
                }
            }
        }
        let by_cores = (self.free_cores / spec.cpus_per_task.max(1)) as u64;
        let by_mem = self
            .free_mem_mib
            .checked_div(spec.mem_per_task_mib)
            .map_or(u32::MAX as u64, |n| n.min(u32::MAX as u64));
        let by_gpus = self
            .free_gpus
            .checked_div(spec.gpus_per_task)
            .map_or(u32::MAX, |n| n) as u64;
        by_cores.min(by_mem).min(by_gpus)
    }

    /// Fold one allocation's release into this shadow entry, keeping the
    /// caller's running total-fit exact. This is the single primitive the
    /// EASY shadow replay and the preemption feasibility proof both build
    /// on — the "placement exists ⟺ Σ per-node fit ≥ tasks" invariant
    /// lives here and nowhere else.
    fn fold_release(
        &mut self,
        alloc: &TaskAlloc,
        spec: &JobSpec,
        policy: NodeSharing,
        total: &mut u64,
    ) {
        *total -= self.fit(spec, policy);
        self.free_cores += alloc.cores;
        self.free_mem_mib += alloc.mem_mib;
        self.free_gpus += alloc.gpus;
        self.jobs -= 1;
        if self.jobs == 0 {
            self.owner = None;
        }
        *total += self.fit(spec, policy);
    }
    // analyze:hot-path-end
}

/// The scheduler.
#[derive(Debug)]
pub struct Scheduler {
    /// Configuration (immutable per run for clean experiments).
    pub config: SchedConfig,
    /// Compute nodes: dense SoA storage, placement columns kept in sync by
    /// the `mirror_update` funnel.
    pub nodes: NodeTable,
    /// Every job ever submitted.
    pub jobs: BTreeMap<JobId, Job>,
    /// Pending queue in FIFO order: enqueue-sequence → job, as a flat
    /// tombstone ring ([`FifoRing`]) so the head query and enqueue/dequeue
    /// are O(1) at storm scale.
    queue: FifoRing,
    /// Reverse queue index: job → queue key, `u64::MAX` = not queued.
    /// Job ids are dense (assigned sequentially at submit), so this is a
    /// flat slab indexed by `JobId.0` — O(1) instead of a 100k-entry tree
    /// probe on every enqueue/dequeue at storm scale.
    queue_pos: Vec<u64>,
    queue_seq: u64,
    /// Running jobs keyed by scheduled end time (`started + duration`, the
    /// EASY assumption), carrying a compact snapshot of each job's
    /// allocations (immutable while the job runs) — the shadow replay
    /// walks this in order and reads the allocations inline, with no
    /// per-release `jobs` map lookup and no per-cycle collect + sort.
    running_ends: BTreeMap<(SimTime, JobId), Box<[(NodeId, TaskAlloc)]>>,
    // ---- placement index, maintained on every claim/release ----
    /// Up nodes with zero running jobs (bitmap, ascending-id iteration).
    idle_nodes: NodeSet,
    /// Up nodes with at least one free core (bitmap, ascending-id
    /// iteration).
    avail_nodes: NodeSet,
    /// Per-user sets of nodes the user *solely* owns (packing affinity).
    owned_nodes: BTreeMap<Uid, BTreeSet<NodeId>>,
    // ---- reusable scan scratch (allocation-free steady state) ----
    /// Victim-scan scratch for `try_preempt_for` (reused across calls).
    scan_scratch: Vec<ShadowNode>,
    /// Persistent per-node capacity mirror, id-ascending, maintained on
    /// every claim/release/fail/repair — the partition-free shadow build is
    /// a flat copy of this instead of an O(n) walk of the node `BTreeMap`.
    shadow_mirror: Vec<ShadowNode>,
    /// Epoch-stamped shadow overlay (dense, `slot = id − 1`): a replay
    /// first-touch copies each node it releases on from `shadow_mirror`
    /// into `shadow_overlay` (stamping `shadow_stamp` with the replay's
    /// epoch), so a replay costs O(touched releases) instead of an
    /// O(nodes) mirror copy. Entries with a stale stamp are dead.
    shadow_overlay: Vec<ShadowNode>,
    /// Per-slot epoch of the last replay that touched it.
    shadow_stamp: Vec<u64>,
    /// Monotonic replay counter for the overlay stamps.
    shadow_epoch: u64,
    /// Bumped on every claim/release/fail/repair/add — anything that could
    /// change a placement or shadow answer.
    state_version: u64,
    /// Memoized EASY shadow: `(head job, state_version, shadow)`. A
    /// submission storm fires `try_schedule` per arrival while the head
    /// stays blocked and node state is untouched — the shadow is a pure
    /// function of (head spec, node state, running set), so those cycles
    /// reuse it instead of replaying identically. Absolute times, so a
    /// later `now` does not invalidate it.
    shadow_cache: Option<(JobId, u64, SimTime)>,
    /// Memoized failed head placement `(head job, state_version)`: while
    /// nothing claims or releases, a blocked head stays blocked — skip the
    /// re-attempt on pure arrival events.
    head_fail_cache: Option<(JobId, u64)>,
    /// Backfill candidates whose placement failed at `.0 == state_version`
    /// — valid until any claim/release (the set is cleared when the
    /// version moves). Saves re-walking the candidate window per arrival.
    backfill_fails: (u64, BTreeSet<JobId>),
    /// Bumped whenever a job *leaves* the pending queue (start, backfill,
    /// cancel). `cancel` removes without touching `state_version`, so the
    /// backfill scan memo keys on this too.
    queue_shrink_epoch: u64,
    /// Memoized FCFS backfill window scan (see `BfScan`). Invalid the
    /// moment `(head, state_version, queue_shrink_epoch)` moves.
    bf_scan: Option<BfScan>,
    // ---- policy plane (all empty / unused while the knobs are off) ----
    /// Decayed per-(partition, user) usage: the fair-share input.
    ledger: FairShareLedger,
    /// Per-class FIFO queues (class = resolved partition name, "" for the
    /// unpartitioned cluster): enqueue-seq → job. Mirror of `queue`,
    /// maintained only when `fair_share` is on.
    part_fifo: BTreeMap<String, BTreeMap<u64, JobId>>,
    /// Per-class, per-(QoS band, user) queued enqueue-seqs (fair-share
    /// head selection picks the lowest-usage user's earliest job inside
    /// the top band). The band component is 0 when preemption is off, so
    /// this degrades to a plain per-user index.
    part_user: BTreeMap<String, BTreeMap<(u8, Uid), BTreeSet<u64>>>,
    /// Per-class QoS band index (maintained when `preemption` is on):
    /// `(255 − qos rank, seq) → job`, so iteration order is
    /// highest-class-first with FIFO inside a band. With preemption
    /// enabled, dispatch is band-major — an urgent arrival becomes its
    /// class's head immediately instead of aging behind the backlog.
    part_qos: BTreeMap<String, BTreeMap<(u8, u64), JobId>>,
    /// Queued job → its class key (for O(log) removal).
    job_part: BTreeMap<JobId, String>,
    /// Run epoch per job; bumped on preemption so stale `JobEnd` events
    /// from the killed run are ignored. Absent = epoch 0 (never preempted).
    run_epochs: BTreeMap<JobId, u32>,
    /// Preemption history (who displaced whom, when, where).
    pub preemptions: Vec<PreemptionRecord>,
    /// Per-class reservation calendars (`reservations > 0`), rebuilt
    /// whenever the state version moves.
    calendars: BTreeMap<String, ReservationCalendar>,
    /// Per-class failed-head memo `(head, state_version)`: while nothing
    /// claimed or released *and the selected head is unchanged*, a blocked
    /// class head stays blocked.
    policy_head_cache: BTreeMap<String, (JobId, u64)>,
    /// Per-class shadow memo `(head, state_version, shadow)`.
    policy_shadow_cache: BTreeMap<String, (JobId, u64, SimTime)>,
    // ---- per-partition capacity mirrors + incremental head fit ----
    /// Flat per-partition capacity mirrors (id-ascending), lazily built and
    /// then maintained on every claim/release — partitioned shadow and
    /// calendar builds are flat copies instead of node-map walks.
    part_mirrors: BTreeMap<String, Vec<ShadowNode>>,
    /// Node → partitions whose mirror contains it (mirror maintenance).
    node_parts: BTreeMap<NodeId, Vec<String>>,
    /// Bumped on every partition-table mutation; mirrors rebuilt lazily
    /// when they trail this.
    partitions_version: u64,
    /// `partitions_version` the current mirrors were built against.
    part_mirror_version: u64,
    /// Incrementally-maintained total task-fit for the current head
    /// (`Σ fit` over its eligible nodes), updated on every claim/release/
    /// fail/repair delta — drops the remaining O(nodes) initial sum from
    /// each shadow compute.
    head_fit: Option<HeadFit>,
    // ---- sharded dispatch (fair-share classes fan out over rayon) ----
    /// Worker width for per-class head planning. `1` (the default) plans
    /// inline; any width produces bit-identical schedules (see the module
    /// docs' shard-merge determinism rule).
    shard_threads: usize,
    /// Per-class head plans precomputed by [`Scheduler::plan_shards`],
    /// consumed (and re-validated against `(head, state_version)`) by the
    /// sequential class merge.
    shard_seeds: BTreeMap<String, ShardSeed>,
    events: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    next_job: u64,
    next_node: u32,
    seq: u64,
    now: SimTime,
    /// Metrics.
    pub metrics: SchedMetrics,
    epilogs: Vec<EpilogEvent>,
    /// Node-failure history.
    pub failures: Vec<FailureRecord>,
    /// Partition table (empty = partitioning disabled, all nodes eligible).
    /// Private so every mutation goes through [`Scheduler::partitions_mut`],
    /// which invalidates the placement/shadow memos — eligibility is part
    /// of what they cache.
    partitions: PartitionTable,
    admins: BTreeSet<Uid>,
    /// Observability: phase spans, memo/backfill/preemption counters, and
    /// the flight recorder. Disabled by default (every record call is one
    /// never-taken branch); [`Scheduler::enable_obs`] turns it on. Pure
    /// measurement — never consulted by a scheduling decision.
    pub obs: SchedObs,
    /// Submission trace contexts awaiting dispatch, recorded by
    /// [`Scheduler::note_submit_trace`]. Empty unless tracing is on —
    /// start-site lookup is then one `is_empty` branch — and never
    /// consulted by a scheduling decision.
    submit_traces: BTreeMap<JobId, TraceCtx>,
}

/// Tombstone marker for [`FifoRing`] slots — real job ids start at 1.
const FIFO_TOMB: JobId = JobId(0);

/// The global pending queue as a flat ring. Enqueue keys are handed out
/// consecutively, so the live window `[base, base + slots.len())` maps a
/// key to a `VecDeque` index by plain subtraction: tail insert is O(1),
/// removal tombstones the slot in place, and the front is kept
/// tombstone-free so the head query — asked on every scheduling cycle —
/// is O(1) instead of a descent through a 100k-entry tree. Forward scans
/// (backfill) skip tombstones, which amortizes against the dequeues that
/// created them.
#[derive(Debug, Default)]
struct FifoRing {
    /// Slot per handed-out key from `base` up; `FIFO_TOMB` = dequeued.
    slots: VecDeque<JobId>,
    /// Queue key of `slots[0]`.
    base: u64,
    /// Live (non-tombstone) entries.
    live: usize,
}

impl FifoRing {
    fn len(&self) -> usize {
        self.live
    }

    /// The head: first live entry. O(1) — the front slot is never a
    /// tombstone.
    fn first(&self) -> Option<(u64, JobId)> {
        self.slots.front().map(|&id| (self.base, id))
    }

    /// Insert at the tail. Keys must arrive consecutively (the engine's
    /// `queue_seq` guarantees it).
    fn insert(&mut self, key: u64, id: JobId) {
        if self.slots.is_empty() {
            self.base = key;
        }
        debug_assert_eq!(
            key,
            self.base + self.slots.len() as u64,
            "queue keys are handed out consecutively"
        );
        self.slots.push_back(id);
        self.live += 1;
    }

    /// Remove by key, returning the job if it was live.
    fn remove(&mut self, key: u64) -> Option<JobId> {
        let idx = usize::try_from(key.checked_sub(self.base)?).ok()?;
        let slot = self.slots.get_mut(idx)?;
        if *slot == FIFO_TOMB {
            return None;
        }
        let id = std::mem::replace(slot, FIFO_TOMB);
        self.live -= 1;
        while self.slots.front() == Some(&FIFO_TOMB) {
            self.slots.pop_front();
            self.base += 1;
        }
        Some(id)
    }

    /// Live entries in queue order.
    fn iter(&self) -> impl Iterator<Item = (u64, JobId)> + '_ {
        let base = self.base;
        self.slots
            .iter()
            .enumerate()
            .filter(|&(_, &id)| id != FIFO_TOMB)
            .map(move |(i, &id)| (base + i as u64, id))
    }

    /// First live entry with a key strictly after `cursor` (`None` = scan
    /// from the front).
    fn next_after(&self, cursor: Option<u64>) -> Option<(u64, JobId)> {
        let mut idx = match cursor {
            Some(c) if c >= self.base => (c - self.base) as usize + 1,
            _ => 0,
        };
        while let Some(&id) = self.slots.get(idx) {
            if id != FIFO_TOMB {
                return Some((self.base + idx as u64, id));
            }
            idx += 1;
        }
        None
    }
}

/// First entry of a class FIFO with a key strictly after `cursor`
/// (`None` = from the front) — the tree-backed counterpart of
/// [`FifoRing::next_after`] for the per-partition queues.
fn next_in_fifo(fifo: &BTreeMap<u64, JobId>, cursor: Option<u64>) -> Option<(u64, JobId)> {
    let range = match cursor {
        None => fifo.range(..),
        Some(c) => fifo.range((Bound::Excluded(c), Bound::Unbounded)),
    };
    range.map(|(&k, &j)| (k, j)).next()
}

/// The head whose total task-fit is being maintained incrementally.
#[derive(Debug)]
struct HeadFit {
    job: JobId,
    spec: Arc<JobSpec>,
    /// Resolved partition name (`None` = whole cluster).
    part: Option<String>,
    /// `Σ fit(spec)` over the head's eligible nodes, kept exact by
    /// [`Scheduler::mirror_update`].
    total: u64,
}

/// Memoized FCFS backfill window scan. Stored only by a scan during which
/// nothing started (a mid-scan start frees a depth-budget slot, so the
/// window a fresh scan would cover extends past `cursor` into entries this
/// scan never examined). While the key triple is unchanged the recorded
/// window's outcome cannot change (shadow-bound rejects are monotone in
/// `now`, placement failures are version-memoized), so the cycle either
/// skips the scan outright (`!exhausted`: the depth-limited window is
/// identical) or resumes from `cursor` and examines only arrivals newer
/// than the last scan.
#[derive(Debug, Clone, Copy)]
struct BfScan {
    head: JobId,
    version: u64,
    shrink: u64,
    /// Last queue key consumed (resume point, exclusive).
    cursor: u64,
    /// Candidates examined so far (counts against `backfill_depth`).
    scanned: usize,
    /// True when the scan ran out of queue before hitting the depth limit.
    exhausted: bool,
}

/// One class's precomputed head plan from [`Scheduler::plan_shards`]: the
/// candidate walk's result against that class's capacity mirror at a frozen
/// `state_version`. `plan` holds `(node, tasks)` pairs (mirrors carry no
/// capacity-total columns, so the merge materializes real `TaskAlloc`s from
/// the live nodes); `fit_total` is the walk's uncapped Σ fit, used to prime
/// [`HeadFit`] on failure exactly like the inline walk would.
#[derive(Debug, Clone)]
struct ShardSeed {
    head: JobId,
    version: u64,
    fit_total: u64,
    plan: Option<Vec<(NodeId, u32)>>,
}

/// The pure, thread-safe half of the placement walk: reproduce
/// [`Scheduler::placement_walk`]'s candidate order and fit arithmetic
/// against a capacity mirror alone, with no access to the scheduler. Two
/// ascending-id passes — the user's solely-owned nodes (mirror `owner ==
/// user`, exactly the `owned_nodes` membership), then the policy source
/// set (free cores on the shared path, idle otherwise, skipping the
/// owned nodes) — produce the identical `(node, tasks)` pairs and the
/// identical uncapped Σ fit the inline walk would, which is what makes a
/// consumed [`ShardSeed`] bit-equivalent to not sharding at all.
fn plan_from_mirror(
    mirror: &[ShadowNode],
    spec: &JobSpec,
    policy: NodeSharing,
) -> (Option<Vec<(NodeId, u32)>>, u64) {
    let user = spec.user;
    let shared_path = matches!(policy, NodeSharing::Shared) && !spec.request_exclusive;
    let mut remaining = spec.tasks;
    let mut fit_total = 0u64;
    let mut plan = Vec::new();
    // Phase 1: solely-owned nodes (packing affinity), id order.
    for sn in mirror {
        if sn.owner != Some(user) {
            continue;
        }
        let full = sn.fit(spec, policy);
        fit_total += full;
        let fit = (full.min(u32::MAX as u64) as u32).min(remaining);
        if fit > 0 {
            plan.push((sn.id, fit));
            remaining -= fit;
        }
    }
    // Phase 2: the policy source set, id order, skipping phase-1 nodes.
    for sn in mirror {
        if sn.owner == Some(user) {
            continue; // phase 1 (idle nodes are never owned)
        }
        let in_source = if shared_path {
            sn.up && sn.free_cores > 0
        } else {
            sn.up && sn.jobs == 0
        };
        if !in_source {
            continue;
        }
        let full = sn.fit(spec, policy);
        fit_total += full;
        let fit = (full.min(u32::MAX as u64) as u32).min(remaining);
        if fit > 0 {
            plan.push((sn.id, fit));
            remaining -= fit;
        }
    }
    if remaining == 0 {
        (Some(plan), fit_total)
    } else {
        (None, fit_total)
    }
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new(config: SchedConfig) -> Self {
        let ledger = FairShareLedger::new(config.fair_share_half_life);
        Scheduler {
            config,
            nodes: NodeTable::new(),
            jobs: BTreeMap::new(),
            queue: FifoRing::default(),
            queue_pos: Vec::new(),
            queue_seq: 0,
            running_ends: BTreeMap::new(),
            idle_nodes: NodeSet::new(),
            avail_nodes: NodeSet::new(),
            owned_nodes: BTreeMap::new(),
            scan_scratch: Vec::new(),
            shadow_mirror: Vec::new(),
            shadow_overlay: Vec::new(),
            shadow_stamp: Vec::new(),
            shadow_epoch: 0,
            state_version: 0,
            shadow_cache: None,
            head_fail_cache: None,
            backfill_fails: (0, BTreeSet::new()),
            queue_shrink_epoch: 0,
            bf_scan: None,
            ledger,
            part_fifo: BTreeMap::new(),
            part_user: BTreeMap::new(),
            part_qos: BTreeMap::new(),
            job_part: BTreeMap::new(),
            run_epochs: BTreeMap::new(),
            preemptions: Vec::new(),
            calendars: BTreeMap::new(),
            policy_head_cache: BTreeMap::new(),
            policy_shadow_cache: BTreeMap::new(),
            part_mirrors: BTreeMap::new(),
            node_parts: BTreeMap::new(),
            partitions_version: 0,
            part_mirror_version: 0,
            head_fit: None,
            shard_threads: 1,
            shard_seeds: BTreeMap::new(),
            events: BinaryHeap::new(),
            next_job: 1,
            next_node: 1,
            seq: 0,
            now: SimTime::ZERO,
            metrics: SchedMetrics {
                busy_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                used_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                wait_times: Histogram::new(),
                completed: Counter::new(),
                failed: Counter::new(),
                timed_out: Counter::new(),
            },
            epilogs: Vec::new(),
            failures: Vec::new(),
            partitions: PartitionTable::new(),
            admins: BTreeSet::new(),
            obs: SchedObs::disabled(),
            submit_traces: BTreeMap::new(),
        }
    }

    /// Turn on (or reconfigure) observability. Replaces the standing
    /// recorder, so counters restart from zero. Recording never influences
    /// scheduling decisions — `tests/sched_equivalence.rs` pins the engine
    /// against the reference with instrumentation compiled in.
    pub fn enable_obs(&mut self, cfg: eus_obs::ObsConfig) {
        self.obs = SchedObs::new(&cfg);
    }

    /// Fan per-partition head planning out over `n` OS threads (the rayon
    /// shim's explicit-width entry). `1` (the default) plans inline. Any
    /// width yields bit-identical schedules: shards only *precompute*
    /// plans against the cycle's frozen state, and consumption keeps the
    /// sequential `(partition, enqueue-seq)` merge order —
    /// `tests/sched_parallel_equivalence.rs` proves the sweep.
    pub fn set_shard_threads(&mut self, n: usize) {
        self.shard_threads = n.max(1);
    }

    /// Current shard planning width.
    pub fn shard_threads(&self) -> usize {
        self.shard_threads
    }

    /// Attach the causal context a traced submission arrived with; the
    /// dispatch that eventually starts the job records a
    /// `sched.job.dispatch` span under it. No-op for quiet contexts or a
    /// disabled trace ring, so untraced submissions stay free.
    pub fn note_submit_trace(&mut self, id: JobId, ctx: TraceCtx) {
        if !ctx.is_none() && self.obs.trace.enabled() {
            self.submit_traces.insert(id, ctx);
        }
    }

    /// Add a node with auto-assigned id.
    pub fn add_node(&mut self, cores: u32, mem_mib: u64, gpus: u32) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes.push(SchedNode::new(id, cores, mem_mib, gpus));
        self.idle_nodes.insert(id);
        if cores > 0 {
            self.avail_nodes.insert(id);
        }
        let sn = ShadowNode::from_node(&self.nodes[&id]);
        self.shadow_mirror.push(sn);
        // Overlay scratch grows in lockstep with the mirror (stale stamp ⇒
        // the placeholder entry is never read).
        self.shadow_overlay.push(sn);
        self.shadow_stamp.push(0);
        if let Some(hf) = &mut self.head_fit {
            // A new node is in no partition yet, so it only widens a
            // whole-cluster head scope.
            if hf.part.is_none() {
                hf.total += sn.fit(&hf.spec, self.config.policy);
            }
        }
        self.state_version += 1;
        id
    }

    /// Refresh one node's entry in the persistent shadow mirror, the
    /// per-partition mirrors that contain it, and the maintained head
    /// total-fit. Every capacity transition (claim/release/fail/repair)
    /// funnels through here, which is what lets shadow builds start from a
    /// flat copy and a ready-made sum instead of an O(nodes) walk.
    fn mirror_update(&mut self, nid: NodeId) {
        self.nodes.sync(nid);
        let sn = ShadowNode::from_node(&self.nodes[&nid]);
        let idx = slot_of(nid);
        let old = self.shadow_mirror[idx];
        self.shadow_mirror[idx] = sn;
        if let Some(hf) = &mut self.head_fit {
            let in_scope = match &hf.part {
                None => true,
                Some(p) => self
                    .partitions
                    .get(p)
                    .is_some_and(|part| part.nodes.contains(&nid)),
            };
            if in_scope {
                let policy = self.config.policy;
                hf.total = hf.total + sn.fit(&hf.spec, policy) - old.fit(&hf.spec, policy);
            }
        }
        if let Some(parts) = self.node_parts.get(&nid) {
            for p in parts {
                if let Some(m) = self.part_mirrors.get_mut(p) {
                    if let Ok(i) = m.binary_search_by_key(&nid, |e| e.id) {
                        m[i] = sn;
                    }
                }
            }
        }
    }

    /// Make sure the per-partition mirrors match the current partition
    /// table generation, then build (once) and return the mirror for
    /// partition `name`: its member nodes' capacity entries, id-ascending.
    fn part_mirror(&mut self, name: &str) -> &[ShadowNode] {
        if self.part_mirror_version != self.partitions_version {
            self.part_mirrors.clear();
            self.node_parts.clear();
            self.part_mirror_version = self.partitions_version;
        }
        if !self.part_mirrors.contains_key(name) {
            let members: Vec<NodeId> = self
                .partitions
                .get(name)
                .map(|p| p.nodes.iter().copied().collect())
                .unwrap_or_default();
            let mut mirror = Vec::with_capacity(members.len());
            for nid in &members {
                if let Some(sn) = self.shadow_mirror.get(slot_of(*nid)) {
                    mirror.push(*sn);
                    self.node_parts
                        .entry(*nid)
                        .or_default()
                        .push(name.to_string());
                }
            }
            self.part_mirrors.insert(name.to_string(), mirror);
        }
        &self.part_mirrors[name]
    }

    /// Register an operator/coordinator exempt from PrivateData filtering.
    pub fn add_admin(&mut self, uid: Uid) {
        self.admins.insert(uid);
    }

    /// Is this uid a registered operator?
    pub fn is_admin(&self, uid: Uid) -> bool {
        self.admins.contains(&uid)
    }

    /// The partition table.
    pub fn partitions(&self) -> &PartitionTable {
        &self.partitions
    }

    /// Mutable access to the partition table. Changing partitions changes
    /// which nodes are eligible, so the memoized placement/shadow answers,
    /// the per-partition capacity mirrors, and the maintained head fit are
    /// all invalidated here. Configure partitions *before* jobs queue —
    /// the policy plane's per-partition queues key jobs by the partition
    /// resolution in force at submit time.
    pub fn partitions_mut(&mut self) -> &mut PartitionTable {
        self.state_version += 1;
        self.partitions_version += 1;
        self.head_fit = None;
        &mut self.partitions
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sum of all Up nodes' cores.
    pub fn total_cores(&self) -> u64 {
        self.nodes.values().map(|n| n.cores as u64).sum()
    }

    /// Claimed-core utilization over `[0, now]`: allocated core-seconds /
    /// capacity. Exclusive jobs inflate this (they claim whole nodes).
    pub fn utilization(&self) -> f64 {
        let cap = self.total_cores() as f64 * self.now.since(SimTime::ZERO).as_secs_f64();
        if cap <= 0.0 {
            return 0.0;
        }
        self.metrics.busy_cores.integral(self.now) / cap
    }

    /// Effective utilization over `[0, now]`: core-seconds actually used by
    /// tasks / capacity. This is the number that collapses under per-job
    /// exclusive allocation with many small jobs (Sec. IV-B).
    pub fn effective_utilization(&self) -> f64 {
        let cap = self.total_cores() as f64 * self.now.since(SimTime::ZERO).as_secs_f64();
        if cap <= 0.0 {
            return 0.0;
        }
        self.metrics.used_cores.integral(self.now) / cap
    }

    /// Number of jobs waiting in queue.
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    /// Number of running jobs. O(1).
    pub fn running_count(&self) -> usize {
        self.running_ends.len()
    }

    /// The fair-share usage ledger (read-only; populated only while
    /// `config.fair_share` is on).
    pub fn fair_share_ledger(&self) -> &FairShareLedger {
        &self.ledger
    }

    /// Every reservation currently held by the calendar(s), valid for the
    /// present engine state. Empty unless `config.reservations > 0` and a
    /// scheduling cycle has planned since the last state change.
    pub fn held_reservations(&self) -> Vec<Reservation> {
        self.calendars
            .values()
            .filter(|c| c.built_version == Some((self.state_version, self.queue_seq)))
            .flat_map(|c| c.reservations.iter().cloned())
            .collect()
    }

    /// Answer "when will this job start?" — the question EASY alone cannot
    /// answer for anything but the head.
    ///
    /// * running / finished jobs → their actual start;
    /// * queued jobs inside the reservation calendar's top-K → the planned
    ///   (queue-aware) reserved start;
    /// * queued jobs beyond the top-K (reservations on) → a one-off probe
    ///   reservation planned against the standing calendar profile — still
    ///   queue-aware (every hold ahead of the job is charged), visible as
    ///   `sched.calendar.probes` under the `sched.calendar.plan` span;
    /// * other queued jobs (reservations off) → the optimistic bound from
    ///   a generalized shadow replay of this spec alone (ignores queued
    ///   work ahead);
    /// * cancelled jobs → `None`.
    pub fn earliest_start(&mut self, job: JobId) -> Option<SimTime> {
        let j = self.jobs.get(&job)?;
        if j.state != JobState::Pending {
            return j.started;
        }
        let spec = Arc::clone(&j.spec);
        let class: Option<String> = if self.config.fair_share {
            self.job_part.get(&job).cloned()
        } else {
            None
        };
        if self.config.reservations > 0 {
            if let Some(head) = self.select_head(class.as_deref()) {
                self.rebuild_calendar(class.as_deref(), head);
                let ckey = class.clone().unwrap_or_default();
                if let Some(r) = self.calendars.get(&ckey).and_then(|c| c.get(job)) {
                    return Some(r.start);
                }
                // Beyond the top-K: plan a one-off probe reservation on
                // top of the finished profile (all held starts charged),
                // instead of the optimistic single-job shadow bound. The
                // probe is read-only — nothing is held for the job.
                if let Some(p) = &class {
                    self.part_mirror(p);
                }
                let base: Vec<ShadowNode> = match &class {
                    Some(p) => self.part_mirrors[p].clone(),
                    None => self.shadow_mirror.clone(),
                };
                let profile = self
                    .calendars
                    .get(&ckey)
                    .map(|c| c.profile.clone())
                    .unwrap_or_default();
                let tok = self.obs.rec.span_start();
                let planned = self.plan_reservation(job, &base, &profile);
                self.obs.rec.incr(self.obs.c_cal_probes);
                self.obs.rec.span_end(self.obs.sp_calendar, tok);
                if let Some(r) = planned {
                    return Some(r.start);
                }
                // Fits at no anchor (too big to ever start): fall through
                // — the shadow probe reports the same `MAX` answer.
            }
        }
        Some(self.shadow_probe(job, &spec))
    }

    fn push_event(&mut self, at: SimTime, ev: Ev) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse((at, seq, ev)));
    }

    /// Submit a job to arrive at `at` (clamped to now). Jobs naming an
    /// unknown partition are rejected at submission (state `Cancelled`),
    /// mirroring Slurm's submit-time validation.
    pub fn submit_at(&mut self, at: SimTime, spec: JobSpec) -> JobId {
        self.submit_at_shared(at, Arc::new(spec))
    }

    /// Submit an already-shared spec. Trace replay and fan-out experiments
    /// use this to hand the same `Arc<JobSpec>` to several schedulers
    /// without a deep copy per submission.
    pub fn submit_at_shared(&mut self, at: SimTime, spec: Arc<JobSpec>) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let valid_partition: Result<_, PartitionError> =
            self.partitions.eligible_nodes(spec.partition.as_deref());
        let rejected = valid_partition.is_err();
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: if rejected {
                    JobState::Cancelled
                } else {
                    JobState::Pending
                },
                submitted: at.max(self.now),
                started: None,
                ended: None,
                allocations: BTreeMap::new(),
            },
        );
        if rejected {
            self.jobs.get_mut(&id).expect("just inserted").ended = Some(at.max(self.now));
        } else {
            self.push_event(at, Ev::Submit(id));
        }
        id
    }

    /// Submit arriving now.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        self.submit_at(self.now, spec)
    }

    /// Cancel a pending job (running jobs run to completion, as `scancel`
    /// would need the full kill path we don't model).
    pub fn cancel(&mut self, id: JobId) -> bool {
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        if job.state != JobState::Pending {
            return false;
        }
        job.state = JobState::Cancelled;
        job.ended = Some(self.now);
        self.dequeue(id);
        true
    }

    /// The QoS band key: highest class iterates first, FIFO inside a band.
    fn qos_band(spec: &JobSpec) -> u8 {
        255 - spec.qos.rank()
    }

    /// The band component of the per-user index key: collapsed to one band
    /// when preemption (band-major dispatch) is off.
    fn user_band(&self, spec: &JobSpec) -> u8 {
        if self.config.preemption {
            Self::qos_band(spec)
        } else {
            0
        }
    }

    /// Append a pending job to the queue tail and to whichever policy
    /// structures are active (fair-share per-partition queues, QoS band
    /// index).
    fn enqueue(&mut self, id: JobId) {
        let key = self.queue_seq;
        self.queue_seq += 1;
        self.queue.insert(key, id);
        let idx = id.0 as usize;
        if self.queue_pos.len() <= idx {
            self.queue_pos.resize(idx + 1, u64::MAX);
        }
        self.queue_pos[idx] = key;
        if !self.config.fair_share && !self.config.preemption {
            return;
        }
        let spec = Arc::clone(&self.jobs[&id].spec);
        // Class key: resolved partition under fair-share, one global class
        // otherwise.
        let part = if self.config.fair_share {
            self.partitions
                .resolve(spec.partition.as_deref())
                .expect("validated at submit")
                .unwrap_or("")
                .to_string()
        } else {
            String::new()
        };
        if self.config.fair_share {
            let ukey = (self.user_band(&spec), spec.user);
            self.part_fifo
                .entry(part.clone())
                .or_default()
                .insert(key, id);
            self.part_user
                .entry(part.clone())
                .or_default()
                .entry(ukey)
                .or_default()
                .insert(key);
        }
        if self.config.preemption {
            self.part_qos
                .entry(part.clone())
                .or_default()
                .insert((Self::qos_band(&spec), key), id);
        }
        self.job_part.insert(id, part);
    }

    /// Remove a job from the queue (start, cancel) and from the policy
    /// structures if present.
    fn dequeue(&mut self, id: JobId) {
        let Some(key) = self
            .queue_pos
            .get_mut(id.0 as usize)
            .filter(|k| **k != u64::MAX)
            .map(|k| std::mem::replace(k, u64::MAX))
        else {
            return;
        };
        // Any departure shrinks the backfill window; `cancel` reaches here
        // without a `state_version` bump, so the scan memo keys on this.
        self.queue_shrink_epoch += 1;
        self.queue.remove(key);
        if let Some(part) = self.job_part.remove(&id) {
            if let Some(fifo) = self.part_fifo.get_mut(&part) {
                fifo.remove(&key);
                if fifo.is_empty() {
                    self.part_fifo.remove(&part);
                }
            }
            let ukey = (
                self.user_band(&self.jobs[&id].spec),
                self.jobs[&id].spec.user,
            );
            if let Some(users) = self.part_user.get_mut(&part) {
                if let Some(seqs) = users.get_mut(&ukey) {
                    seqs.remove(&key);
                    if seqs.is_empty() {
                        users.remove(&ukey);
                    }
                }
                if users.is_empty() {
                    self.part_user.remove(&part);
                }
            }
            if let Some(bands) = self.part_qos.get_mut(&part) {
                bands.remove(&(Self::qos_band(&self.jobs[&id].spec), key));
                if bands.is_empty() {
                    self.part_qos.remove(&part);
                }
            }
        }
    }

    /// This job's current run epoch (0 = never preempted).
    fn run_epoch(&self, id: JobId) -> u32 {
        self.run_epochs.get(&id).copied().unwrap_or(0)
    }

    /// Inject a node crash at `at` (the OOM-takes-down-the-node scenario of
    /// Sec. IV-B). The node repairs after `config.repair_time`.
    pub fn schedule_node_failure(&mut self, at: SimTime, node: NodeId) {
        self.push_event(at, Ev::NodeFail(node));
    }

    /// Drain accumulated epilog work (cluster layer consumes).
    pub fn drain_epilogs(&mut self) -> Vec<EpilogEvent> {
        std::mem::take(&mut self.epilogs)
    }

    /// Does `user` have a running job with an allocation on `node`? (The
    /// `pam_slurm` question.) O(log) via the node's per-user job counts.
    pub fn has_running_job_on(&self, user: Uid, node: NodeId) -> bool {
        self.nodes.get(&node).is_some_and(|n| n.has_user(user))
    }

    /// `squeue` as seen by `viewer` under the PrivateData configuration.
    /// Rows are views over the shared spec — no name/cmdline deep clones.
    pub fn squeue(&self, viewer: &Credentials) -> Vec<JobView> {
        let admin = self.is_admin(viewer.uid);
        self.jobs
            .values()
            .filter(|j| !j.state.is_terminal())
            .filter(|j| may_view(viewer, j.spec.user, self.config.private_data.jobs, admin))
            .map(|j| JobView {
                id: j.id,
                user: j.spec.user,
                spec: Arc::clone(&j.spec),
                state: j.state,
                nodes: j.allocations.keys().copied().collect(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Fire events up to and including `horizon`; the clock lands on
    /// `horizon` afterwards.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(Reverse((t, _, _))) = self.events.peek() {
            if *t > horizon {
                break;
            }
            let Reverse((t, _, ev)) = self.events.pop().expect("peeked");
            self.now = t;
            self.fire(ev);
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    /// Run until no events remain (all submitted work finished). Returns the
    /// final clock (the makespan end).
    pub fn run_to_completion(&mut self) -> SimTime {
        while let Some(Reverse((t, _, ev))) = self.events.pop() {
            self.now = t;
            self.fire(ev);
        }
        self.now
    }

    fn fire(&mut self, ev: Ev) {
        match ev {
            Ev::Submit(j) => {
                // One jobs-map probe per event: at storm scale the map holds
                // every submission and each lookup walks a deep tree.
                let job = &self.jobs[&j];
                if job.state == JobState::Pending {
                    self.obs
                        .rec
                        .event(self.now, "job.submit", j.0, job.spec.tasks as u64, 0);
                    self.enqueue(j);
                    self.try_schedule();
                }
            }
            Ev::JobEnd(j, epoch) => {
                // A stale end event from a preempted (killed) run carries
                // the old epoch and is ignored; the requeued run pushed its
                // own end event.
                let job = &self.jobs[&j];
                if job.state == JobState::Running && self.run_epoch(j) == epoch {
                    // Did the job end on its own, or did slurmstepd kill it
                    // at the wall-time limit?
                    let outcome = if job.spec.time_limit < job.spec.duration {
                        JobState::Timeout
                    } else {
                        JobState::Completed
                    };
                    self.finish_job(j, outcome);
                    self.try_schedule();
                }
            }
            Ev::NodeFail(n) => {
                self.fail_node(n);
                self.try_schedule();
            }
            Ev::NodeRepair(n) => {
                if let Some(node) = self.nodes.get_mut(&n) {
                    if node.state == NodeState::Down {
                        node.state = NodeState::Up;
                        self.obs
                            .rec
                            .event(self.now, "node.repair", n.0 as u64, 0, 0);
                        self.state_version += 1;
                        // Everything on it died at failure time, so it
                        // rejoins idle.
                        if node.is_idle() {
                            self.idle_nodes.insert(n);
                        }
                        if node.free_cores() > 0 {
                            self.avail_nodes.insert(n);
                        }
                        self.mirror_update(n);
                    }
                }
                self.try_schedule();
            }
        }
    }

    fn fail_node(&mut self, n: NodeId) {
        let Some(node) = self.nodes.get_mut(&n) else {
            return;
        };
        if node.state != NodeState::Up {
            return;
        }
        node.state = NodeState::Down;
        self.state_version += 1;
        self.idle_nodes.remove(&n);
        self.avail_nodes.remove(&n);
        let victims: Vec<JobId> = self.nodes[&n].running.keys().copied().collect();
        self.mirror_update(n);
        let mut record = FailureRecord {
            node: n,
            at: self.now,
            failed_jobs: Vec::new(),
        };
        self.obs
            .rec
            .event(self.now, "node.fail", n.0 as u64, victims.len() as u64, 0);
        for j in victims {
            let user = self.jobs[&j].spec.user;
            record.failed_jobs.push((j, user));
            self.finish_job(j, JobState::Failed);
        }
        self.failures.push(record);
        self.push_event(self.now + self.config.repair_time, Ev::NodeRepair(n));
    }

    // ------------------------------------------------------------------
    // Index maintenance: every resource transition funnels through these.
    // ------------------------------------------------------------------

    /// Move a node between per-user owned sets when its sole owner changed.
    fn reindex_owner(&mut self, nid: NodeId, prev: Option<Uid>, new: Option<Uid>) {
        if prev == new {
            return;
        }
        if let Some(o) = prev {
            if let Some(set) = self.owned_nodes.get_mut(&o) {
                set.remove(&nid);
                if set.is_empty() {
                    self.owned_nodes.remove(&o);
                }
            }
        }
        if let Some(o) = new {
            self.owned_nodes.entry(o).or_default().insert(nid);
        }
    }

    /// Claim `alloc` on a node and keep the placement index current.
    fn claim_on(&mut self, nid: NodeId, job: JobId, alloc: TaskAlloc, user: Uid) {
        self.state_version += 1;
        let node = self.nodes.get_mut(&nid).expect("placement on known node");
        let prev_owner = node.owner();
        node.claim(job, alloc, user);
        let new_owner = node.owner();
        self.idle_nodes.remove(&nid);
        if node.free_cores() == 0 {
            self.avail_nodes.remove(&nid);
        }
        self.reindex_owner(nid, prev_owner, new_owner);
        self.mirror_update(nid);
    }

    /// Release a job's holdings on a node and keep the placement index
    /// current. A Down node's capacity returns but it rejoins no candidate
    /// set until repair.
    fn release_on(&mut self, nid: NodeId, job: JobId) -> Option<TaskAlloc> {
        self.state_version += 1;
        let node = self.nodes.get_mut(&nid)?;
        let prev_owner = node.owner();
        let alloc = node.release(job)?;
        let new_owner = node.owner();
        self.reindex_owner(nid, prev_owner, new_owner);
        let node = &self.nodes[&nid];
        if node.state == NodeState::Up {
            if node.free_cores() > 0 {
                self.avail_nodes.insert(nid);
            }
            if node.is_idle() {
                self.idle_nodes.insert(nid);
            }
        }
        self.mirror_update(nid);
        Some(alloc)
    }

    fn finish_job(&mut self, id: JobId, state: JobState) {
        let job = self.jobs.get_mut(&id).expect("known job");
        debug_assert_eq!(job.state, JobState::Running);
        job.state = state;
        job.ended = Some(self.now);
        let user = job.spec.user;
        let started = job.started.expect("running has start");
        let cpus_per_task = job.spec.cpus_per_task;
        let end_key = (started + job.spec.duration, id);
        // The running_ends snapshot is this job's allocations, taken at
        // dispatch and immutable since — reuse it instead of re-collecting
        // the map. Every terminal path arrives here with the entry present
        // (preemption removes it but requeues instead of finishing); the
        // fallback is defensive only.
        let allocations: Vec<(NodeId, TaskAlloc)> = match self.running_ends.remove(&end_key) {
            Some(snap) => snap.into_vec(),
            None => job.allocations.iter().map(|(n, a)| (*n, *a)).collect(),
        };
        let mut released_cores = 0u32;
        let mut released_used = 0u32;
        for (nid, alloc) in &allocations {
            if self.release_on(*nid, id).is_some() {
                released_cores += alloc.cores;
                released_used += alloc.tasks * cpus_per_task;
            }
        }
        self.metrics
            .busy_cores
            .add(self.now, -(released_cores as f64));
        self.metrics
            .used_cores
            .add(self.now, -(released_used as f64));
        match state {
            JobState::Completed => self.metrics.completed.incr(),
            JobState::Failed => self.metrics.failed.incr(),
            JobState::Timeout => self.metrics.timed_out.incr(),
            _ => {}
        }
        self.obs.rec.incr(self.obs.c_finishes);
        let outcome = match state {
            JobState::Completed => 0,
            JobState::Failed => 1,
            JobState::Timeout => 2,
            _ => 3,
        };
        self.obs
            .rec
            .event(self.now, "job.end", id.0, outcome, released_cores as u64);
        self.charge_fair_share(id, released_cores, started);
        // Epilog per node, with the "is the user gone from this node" bit.
        for (nid, alloc) in &allocations {
            let still_active = self.has_running_job_on(user, *nid);
            self.epilogs.push(EpilogEvent {
                job: id,
                user,
                node: *nid,
                gpus: alloc.gpus,
                at: self.now,
                user_still_active_on_node: still_active,
            });
        }
    }

    /// Charge a run's consumed core-seconds to the fair-share ledger
    /// (no-op unless `fair_share` is on).
    fn charge_fair_share(&mut self, id: JobId, cores: u32, started: SimTime) {
        if !self.config.fair_share {
            return;
        }
        let spec = &self.jobs[&id].spec;
        let user = spec.user;
        let part = self
            .partitions
            .resolve(spec.partition.as_deref())
            .expect("validated at submit")
            .unwrap_or("")
            .to_string();
        let consumed = cores as f64 * self.now.since(started).as_secs_f64();
        self.ledger.charge(&part, user, consumed, self.now);
    }

    fn start_job(&mut self, id: JobId, placement: Vec<(NodeId, TaskAlloc)>) {
        let now = self.now;
        let (user, duration, submitted, cpus_per_task, qos) = {
            let job = &self.jobs[&id];
            (
                job.spec.user,
                job.spec.duration,
                job.submitted,
                job.spec.cpus_per_task,
                job.spec.qos,
            )
        };
        let mut total_cores = 0u32;
        let mut used_cores = 0u32;
        for (nid, alloc) in &placement {
            self.claim_on(*nid, id, *alloc, user);
            total_cores += alloc.cores;
            used_cores += alloc.tasks * cpus_per_task;
        }
        // Snapshot in NodeId order — the same order the allocations map
        // iterates in — so every consumer (shadow replay, calendar profile,
        // finish-time epilogs) sees exactly what the map walk saw.
        let mut run_allocs: Box<[(NodeId, TaskAlloc)]> = placement.iter().copied().collect();
        run_allocs.sort_unstable_by_key(|&(n, _)| n);
        {
            let job = self.jobs.get_mut(&id).expect("known job");
            job.state = JobState::Running;
            job.started = Some(now);
            job.allocations = placement.into_iter().collect();
        }
        self.running_ends.insert((now + duration, id), run_allocs);
        self.obs.rec.incr(self.obs.c_starts);
        if !self.submit_traces.is_empty() {
            if let Some(ctx) = self.submit_traces.remove(&id) {
                let _ = self.obs.trace.hit(ctx, "sched.job.dispatch", now, id.0);
            }
        }
        self.obs.rec.event(
            now,
            "job.start",
            id.0,
            self.jobs[&id].allocations.len() as u64,
            total_cores as u64,
        );
        self.metrics.busy_cores.add(now, total_cores as f64);
        self.metrics.used_cores.add(now, used_cores as f64);
        let epoch = self.run_epoch(id);
        if epoch == 0 {
            // A preempted job's wait was recorded at its first dispatch;
            // requeue delay is preemption cost, not queue wait.
            self.metrics
                .wait_times
                .record(now.since(submitted).as_secs_f64());
            if qos == crate::job::QosClass::Interactive {
                self.obs.rec.add(
                    self.obs.c_interactive_wait_us,
                    now.since(submitted).as_micros(),
                );
                self.obs.rec.incr(self.obs.c_interactive_waits);
            }
        }
        // The step daemon enforces the requested wall-time limit.
        let runtime = duration.min(self.jobs[&id].spec.time_limit);
        self.push_event(now + runtime, Ev::JobEnd(id, epoch));
    }

    // ------------------------------------------------------------------
    // Placement over the incremental index
    // ------------------------------------------------------------------

    // analyze:hot-path-begin(sched-placement)
    /// The greedy per-node allocation, identical to the reference's.
    fn alloc_for(node: &SchedNode, spec: &JobSpec, policy: NodeSharing, fit: u32) -> TaskAlloc {
        if policy.charges_whole_node(spec) {
            // Exclusive: the job takes the whole node.
            TaskAlloc {
                tasks: fit,
                cores: node.cores,
                mem_mib: node.mem_mib,
                gpus: node.gpus,
            }
        } else {
            TaskAlloc {
                tasks: fit,
                cores: fit * spec.cpus_per_task,
                mem_mib: fit as u64 * spec.mem_per_task_mib,
                gpus: fit * spec.gpus_per_task,
            }
        }
    }

    /// Column-based admissibility + capacity fit: exactly
    /// `node_admits` + `tasks_that_fit` (and therefore `ShadowNode::fit`)
    /// evaluated over the SoA columns, so a rejected candidate touches a
    /// few flat-array bytes instead of a full `SchedNode`.
    #[inline]
    fn col_fit(cols: &NodeCols<'_>, i: usize, spec: &JobSpec, policy: NodeSharing) -> u64 {
        if !cols.up.get(i).copied().unwrap_or(false) {
            return 0;
        }
        let jobs = cols.jobs.get(i).copied().unwrap_or(0);
        if (matches!(policy, NodeSharing::Exclusive) || spec.request_exclusive) && jobs > 0 {
            return 0;
        }
        if matches!(policy, NodeSharing::WholeNodeUser) {
            if let Some(owner) = cols.owner.get(i).copied().flatten() {
                if owner != spec.user {
                    return 0;
                }
            }
        }
        let free_cores = cols.free_cores.get(i).copied().unwrap_or(0);
        let by_cores = (free_cores / spec.cpus_per_task.max(1)) as u64;
        if by_cores == 0 {
            return 0; // common reject: no mem/gpu column touch needed
        }
        let by_mem = cols
            .free_mem
            .get(i)
            .copied()
            .unwrap_or(0)
            .checked_div(spec.mem_per_task_mib)
            .map_or(u32::MAX as u64, |n| n.min(u32::MAX as u64));
        let by_gpus = cols
            .free_gpus
            .get(i)
            .copied()
            .unwrap_or(0)
            .checked_div(spec.gpus_per_task)
            .map_or(u32::MAX, |n| n) as u64;
        by_cores.min(by_mem).min(by_gpus)
    }

    /// Try to place `spec` using the maintained candidate index instead of
    /// scanning and sorting every node. Candidate order reproduces the old
    /// sort exactly: the user's solely-owned nodes first (packing
    /// affinity), then the policy-relevant remainder, both in id order.
    fn placement_for(
        &self,
        spec: &JobSpec,
        eligible: Option<&BTreeSet<NodeId>>,
    ) -> Option<Vec<(NodeId, TaskAlloc)>> {
        self.placement_walk(spec, eligible).0
    }

    /// The placement walk, also returning the *uncapped* `Σ fit` over every
    /// candidate it visited. On a failed walk that sum is exact over ALL
    /// eligible nodes — any node with positive fit is in the walked sets
    /// (owned ∪ source: `fit > 0` ⇒ free cores ⇒ avail on the shared path,
    /// idle otherwise — running jobs zero the fit under `Exclusive` /
    /// `--exclusive`, and a foreign owner zeroes it under `WholeNodeUser`)
    /// — so the caller can prime [`HeadFit`] without an O(nodes) sum.
    fn placement_walk(
        &self,
        spec: &JobSpec,
        eligible: Option<&BTreeSet<NodeId>>,
    ) -> (Option<Vec<(NodeId, TaskAlloc)>>, u64) {
        let user = spec.user;
        let policy = self.config.policy;
        let cols = self.nodes.cols();
        let mut remaining = spec.tasks;
        let mut fit_sum = 0u64;
        let mut placement = Vec::new();

        let mut try_node = |nid: NodeId, remaining: &mut u32, placement: &mut Vec<_>| {
            if eligible.is_some_and(|set| !set.contains(&nid)) {
                return;
            }
            let full = Self::col_fit(&cols, slot_of(nid), spec, policy);
            fit_sum += full;
            let fit = (full.min(u32::MAX as u64) as u32).min(*remaining);
            if fit == 0 {
                return;
            }
            let Some(node) = self.nodes.get(&nid) else {
                return; // stale index entry: node was removed this cycle
            };
            placement.push((nid, Self::alloc_for(node, spec, policy, fit)));
            *remaining -= fit;
        };

        // Phase 1: nodes this user solely owns (admissibility still checked
        // — under Exclusive / per-job --exclusive they are busy and refuse).
        if let Some(owned) = self.owned_nodes.get(&user) {
            for &nid in owned {
                if remaining == 0 {
                    break;
                }
                try_node(nid, &mut remaining, &mut placement);
            }
        }

        // Phase 2: the policy-relevant remainder. Under Shared (without a
        // per-job --exclusive) any Up node with free cores is admissible;
        // under every other policy only idle nodes are. Skip nodes already
        // visited in phase 1.
        if remaining > 0 {
            let shared_path = matches!(policy, NodeSharing::Shared) && !spec.request_exclusive;
            let source: &NodeSet = if shared_path {
                &self.avail_nodes
            } else {
                &self.idle_nodes
            };
            // Walk the smaller of (source, eligible); both are id-ordered
            // so candidate order is preserved either way.
            match eligible {
                Some(set) if set.len() < source.len() => {
                    for &nid in set {
                        if remaining == 0 {
                            break;
                        }
                        if !source.contains(&nid) {
                            continue;
                        }
                        if shared_path
                            && cols.owner.get(slot_of(nid)).copied().flatten() == Some(user)
                        {
                            continue; // phase 1 already visited
                        }
                        try_node(nid, &mut remaining, &mut placement);
                    }
                }
                _ => {
                    for nid in source.iter() {
                        if remaining == 0 {
                            break;
                        }
                        if shared_path
                            && cols.owner.get(slot_of(nid)).copied().flatten() == Some(user)
                        {
                            continue; // phase 1 already visited
                        }
                        try_node(nid, &mut remaining, &mut placement);
                    }
                }
            }
        }

        if remaining == 0 {
            (Some(placement), fit_sum)
        } else {
            (None, fit_sum)
        }
    }
    // analyze:hot-path-end

    /// Earliest time the head job could start, assuming running jobs end on
    /// schedule (the EASY shadow time).
    ///
    /// Replays running-job releases in end-time order over a flat capacity
    /// vector, maintaining the total task-fit incrementally: placement for
    /// the head exists **iff** the summed per-node fit reaches its task
    /// count (per-node fits are independent), so the first release that
    /// pushes the sum over the line is the shadow time. No node-map clone,
    /// no repeated full placements, reusable scratch. The capacity vector
    /// is a flat copy of the maintained mirror — the whole-cluster one or
    /// the per-partition one — and the initial total-fit sum comes from
    /// the incrementally-maintained [`HeadFit`] when this head was already
    /// being tracked, so a shadow recompute after a claim/release delta
    /// costs O(releases) rather than O(nodes).
    fn shadow_time_for(&mut self, head: JobId, spec: &Arc<JobSpec>) -> SimTime {
        self.shadow_time_inner(head, spec, true)
    }

    /// Like [`shadow_time_for`](Self::shadow_time_for) but without
    /// installing the incremental head-fit tracker — for ad-hoc probes
    /// ([`earliest_start`](Self::earliest_start)) that must not evict the
    /// real head's maintained sum between scheduling cycles.
    fn shadow_probe(&mut self, job: JobId, spec: &Arc<JobSpec>) -> SimTime {
        self.shadow_time_inner(job, spec, false)
    }

    fn shadow_time_inner(&mut self, head: JobId, spec: &Arc<JobSpec>, track: bool) -> SimTime {
        let part = self
            .partitions
            .resolve(spec.partition.as_deref())
            .expect("validated at submit")
            .map(str::to_string);
        let total = self.head_total_fit(head, spec, &part, track);
        self.shadow_replay(spec, &part, total)
    }

    /// `Σ fit(spec)` over one partition's members, read straight off the
    /// dense whole-cluster mirror (a part mirror need not be built).
    fn part_fit_sum(&self, part: &str, spec: &JobSpec) -> u64 {
        let policy = self.config.policy;
        match self.partitions.get(part) {
            Some(p) => p
                .nodes
                .iter()
                .filter_map(|nid| self.shadow_mirror.get(slot_of(*nid)))
                .map(|sn| sn.fit(spec, policy))
                .sum(),
            None => 0,
        }
    }

    // analyze:hot-path-begin(sched-shadow-replay)
    /// The maintained `Σ fit` for `head` over its eligible nodes,
    /// establishing the incremental tracker on first sight of this head
    /// (unless `track` is off — ad-hoc probes read, never evict).
    fn head_total_fit(
        &mut self,
        head: JobId,
        spec: &Arc<JobSpec>,
        part: &Option<String>,
        track: bool,
    ) -> u64 {
        let policy = self.config.policy;
        let hit = matches!(&self.head_fit, Some(hf) if hf.job == head && hf.part == *part);
        if hit {
            let total = self.head_fit.as_ref().map_or(0, |hf| hf.total);
            debug_assert_eq!(
                total,
                match part {
                    Some(p) => self.part_fit_sum(p, spec),
                    None => self
                        .shadow_mirror
                        .iter()
                        .map(|sn| sn.fit(spec, policy))
                        .sum::<u64>(),
                },
                "incremental head fit drifted from the mirror"
            );
            return total;
        }
        let total = match part {
            Some(p) => self.part_fit_sum(p, spec),
            None => self.shadow_mirror.iter().map(|sn| sn.fit(spec, policy)).sum(),
        };
        if track {
            self.head_fit = Some(HeadFit {
                job: head,
                spec: Arc::clone(spec),
                part: part.clone(),
                total,
            });
        }
        total
    }

    /// Replay running-job releases in end-time order through the
    /// epoch-stamped overlay: each touched node is first-touch copied from
    /// the persistent mirror, so a replay costs O(touched releases) — no
    /// O(nodes) mirror copy, partitioned or not. `running_ends` is
    /// maintained in end-time order, so no per-cycle collect + sort either.
    fn shadow_replay(&mut self, spec: &Arc<JobSpec>, part: &Option<String>, mut total: u64) -> SimTime {
        let policy = self.config.policy;
        let needed = spec.tasks as u64;
        if total >= needed {
            self.obs.rec.incr(self.obs.c_shadow_early_exit);
            return self.now;
        }
        self.obs.rec.incr(self.obs.c_shadow_replays);
        self.shadow_epoch += 1;
        let epoch = self.shadow_epoch;
        let mut overlay = std::mem::take(&mut self.shadow_overlay);
        let mut stamp = std::mem::take(&mut self.shadow_stamp);
        let members: Option<&BTreeSet<NodeId>> = part
            .as_deref()
            .and_then(|p| self.partitions.get(p))
            .map(|p| &p.nodes);
        let mut result = SimTime::MAX;
        'replay: for (&(end_t, _jid), allocs) in &self.running_ends {
            for &(nid, ref alloc) in allocs.iter() {
                if members.is_some_and(|set| !set.contains(&nid)) {
                    continue; // allocation on an ineligible node
                }
                let i = slot_of(nid);
                let (Some(st), Some(sn)) = (stamp.get_mut(i), overlay.get_mut(i)) else {
                    continue;
                };
                if *st != epoch {
                    let Some(base) = self.shadow_mirror.get(i) else {
                        continue;
                    };
                    *sn = *base;
                    *st = epoch;
                }
                sn.fold_release(alloc, spec, policy, &mut total);
            }
            if total >= needed {
                result = end_t;
                break 'replay;
            }
        }
        self.shadow_overlay = overlay;
        self.shadow_stamp = stamp;
        result
    }
    // analyze:hot-path-end

    fn try_schedule(&mut self) {
        if self.config.policy_plane_active() {
            self.try_schedule_policy();
        } else {
            self.try_schedule_fcfs();
        }
    }

    /// The pre-policy cycle: global FCFS head + EASY backfill. This is the
    /// path the equivalence suite pins against the reference scheduler.
    fn try_schedule_fcfs(&mut self) {
        loop {
            let Some((head_key, head)) = self.queue.first() else {
                return;
            };
            // While nothing claimed or released, a blocked head stays
            // blocked (placement is a pure function of spec + node state):
            // skip the re-attempt on pure arrival events.
            let known_blocked = matches!(
                self.head_fail_cache,
                Some((j, v)) if j == head && v == self.state_version
            );
            if known_blocked && !self.config.backfill {
                // Arrival-flood fast path: nothing below reads the spec, so
                // don't pay the jobs-map lookup at 100k entries.
                self.obs.rec.incr(self.obs.c_head_memo_hit);
                return;
            }
            let head_spec = Arc::clone(&self.jobs[&head].spec);
            let placement = if known_blocked {
                self.obs.rec.incr(self.obs.c_head_memo_hit);
                None
            } else {
                self.obs.rec.incr(self.obs.c_head_memo_miss);
                let part: Option<String> = self
                    .partitions
                    .resolve(head_spec.partition.as_deref())
                    .expect("validated at submit")
                    .map(str::to_string);
                // O(1) certain-fail gate: the maintained Σ fit for this
                // head is exact (see `placement_walk`), so a total below
                // the task count proves the walk would fail.
                let gated = matches!(
                    &self.head_fit,
                    Some(hf) if hf.job == head && hf.part == part
                        && hf.total < head_spec.tasks as u64
                );
                if gated {
                    self.obs.rec.incr(self.obs.c_fit_gate);
                    None
                } else {
                    let tok = self.obs.rec.span_start();
                    let (p, fit_sum) = {
                        let eligible = self
                            .partitions
                            .eligible_nodes(head_spec.partition.as_deref())
                            .expect("validated at submit");
                        self.placement_walk(&head_spec, eligible)
                    };
                    self.obs.rec.span_end(self.obs.sp_dispatch, tok);
                    if p.is_none() {
                        // Prime the incremental tracker from the failed
                        // walk's exact sum — later cycles gate in O(1).
                        self.head_fit = Some(HeadFit {
                            job: head,
                            spec: Arc::clone(&head_spec),
                            part,
                            total: fit_sum,
                        });
                    }
                    p
                }
            };
            if let Some(p) = placement {
                self.dequeue(head);
                self.start_job(head, p);
                continue;
            }
            self.head_fail_cache = Some((head, self.state_version));
            if !self.config.backfill {
                return;
            }
            // EASY backfill: start later jobs only if they cannot delay the
            // head job's shadow start. The shadow is memoized per (head,
            // state-version): arrival-flood cycles that changed nothing on
            // the nodes reuse the previous answer.
            let shadow = match self.shadow_cache {
                Some((j, v, s)) if j == head && v == self.state_version => {
                    self.obs.rec.incr(self.obs.c_shadow_memo_hit);
                    s
                }
                _ => {
                    self.obs.rec.incr(self.obs.c_shadow_memo_miss);
                    let tok = self.obs.rec.span_start();
                    let s = self.shadow_time_for(head, &head_spec);
                    self.obs.rec.span_end(self.obs.sp_shadow, tok);
                    self.shadow_cache = Some((head, self.state_version, s));
                    s
                }
            };
            // Scan memo: while `(head, version, shrink-epoch)` is unchanged
            // the window's outcome cannot change (shadow-bound rejects are
            // monotone in `now`, placement failures are version-memoized,
            // started candidates left the queue) — a depth-limited scan is
            // skipped outright, an exhausted one resumes at its cursor so
            // only new arrivals are examined. FCFS-path only: the policy
            // path's conservative-backfill refusals are not monotone.
            let memo = self.bf_scan.filter(|m| {
                m.head == head
                    && m.version == self.state_version
                    && m.shrink == self.queue_shrink_epoch
            });
            if let Some(m) = memo {
                if !m.exhausted {
                    self.obs.rec.incr(self.obs.c_bf_scan_skips);
                    return;
                }
            }
            let bf_tok = self.obs.rec.span_start();
            let (mut scanned, mut cursor) = match memo {
                Some(m) => {
                    self.obs.rec.incr(self.obs.c_bf_scan_resumes);
                    (m.scanned, m.cursor)
                }
                None => (0, head_key),
            };
            let scan_version = self.state_version;
            let scan_shrink = self.queue_shrink_epoch;
            let mut exhausted = false;
            while scanned < self.config.backfill_depth {
                let Some((key, cand)) = self.queue.next_after(Some(cursor)) else {
                    exhausted = true;
                    break;
                };
                scanned += 1;
                cursor = key;
                let spec = Arc::clone(&self.jobs[&cand].spec);
                let fits_before_shadow =
                    shadow == SimTime::MAX || self.now + spec.time_limit <= shadow;
                if fits_before_shadow {
                    // Failed attempts are memoized per state version: while
                    // nothing claimed or released, the same candidate fails
                    // the same way (starting a candidate bumps the version
                    // and invalidates the set).
                    if self.backfill_fails.0 != self.state_version {
                        self.backfill_fails = (self.state_version, BTreeSet::new());
                    }
                    if self.backfill_fails.1.contains(&cand) {
                        self.obs.rec.incr(self.obs.c_bf_memo_rejects);
                        continue;
                    }
                    self.obs.rec.incr(self.obs.c_bf_attempts);
                    let placement = {
                        let eligible = self
                            .partitions
                            .eligible_nodes(spec.partition.as_deref())
                            .expect("validated at submit");
                        self.placement_for(&spec, eligible)
                    };
                    if let Some(p) = placement {
                        self.obs.rec.incr(self.obs.c_bf_accepts);
                        self.dequeue(cand);
                        self.start_job(cand, p);
                    } else {
                        self.backfill_fails.1.insert(cand);
                    }
                } else {
                    self.obs.rec.incr(self.obs.c_bf_shadow_rejects);
                }
            }
            // The memo is only stored when no candidate started during the
            // scan. A mid-scan start dequeues the candidate, freeing a
            // depth-budget slot: the window a fresh scan would cover then
            // extends *past* `cursor`, and entries beyond it were never
            // examined — `(scanned, cursor)` no longer describe the window.
            self.bf_scan = if self.state_version == scan_version
                && self.queue_shrink_epoch == scan_shrink
            {
                Some(BfScan {
                    head,
                    version: scan_version,
                    shrink: scan_shrink,
                    cursor,
                    scanned,
                    exhausted,
                })
            } else {
                None
            };
            self.obs.rec.span_end(self.obs.sp_backfill, bf_tok);
            return;
        }
    }

    // ------------------------------------------------------------------
    // Policy plane: fair-share classes, preemption, reservations
    // ------------------------------------------------------------------

    /// The policy-plane cycle. Under fair-share every partition is its own
    /// scheduling class with its own head, shadow, and backfill budget —
    /// one backlogged partition cannot head-of-line-block the others.
    /// Without fair-share the whole queue is one class (global FCFS order,
    /// as before) but preemption and reservations still apply.
    fn try_schedule_policy(&mut self) {
        if self.config.fair_share {
            let classes: Vec<String> = self.part_fifo.keys().cloned().collect();
            if self.shard_threads > 1 && classes.len() > 1 {
                self.plan_shards(&classes);
            }
            for class in classes {
                self.schedule_class(Some(class));
            }
        } else {
            self.schedule_class(None);
        }
    }

    /// Fan the per-class head *planning* out over the rayon shim: for each
    /// class whose head is neither memo-blocked nor fit-gated, run the
    /// candidate walk against that class's capacity mirror on a worker
    /// thread and stash the result as a [`ShardSeed`]. Pure precomputation
    /// against the frozen `state_version` — consumption happens in the
    /// sequential class merge ([`Scheduler::schedule_class`]), which
    /// re-validates `(head, version)` and falls back to the inline walk on
    /// any staleness, so schedules are bit-identical at every width. Only
    /// the `sched.shard.*` counters record here (they are the counters
    /// allowed to vary with thread count — see [`crate::obs`]).
    fn plan_shards(&mut self, classes: &[String]) {
        self.shard_seeds.clear();
        let version = self.state_version;
        let policy = self.config.policy;
        // Sequential, cheap phase: select each class's head, apply the
        // same memo/gate skips the merge will apply, and pin its mirror.
        let mut picked: Vec<(String, JobId, Arc<JobSpec>)> = Vec::new();
        for class in classes {
            let Some(head) = self.select_head(Some(class)) else {
                continue;
            };
            let known_blocked = self
                .policy_head_cache
                .get(class)
                .is_some_and(|&(j, v)| j == head && v == version);
            if known_blocked {
                continue;
            }
            let spec = Arc::clone(&self.jobs[&head].spec);
            let part = (!class.is_empty()).then(|| class.clone());
            let gated = matches!(
                &self.head_fit,
                Some(hf) if hf.job == head && hf.part == part
                    && hf.total < spec.tasks as u64
            );
            if gated {
                continue; // the merge will gate it in O(1) too
            }
            if !class.is_empty() {
                self.part_mirror(class); // build before borrowing below
            }
            picked.push((class.clone(), head, spec));
        }
        if picked.is_empty() {
            return;
        }
        // analyze:hot-path-begin(sched-shard-plan)
        let planned = picked.len() as u64;
        let work: Vec<(String, JobId, Arc<JobSpec>, &[ShadowNode])> = picked
            .into_iter()
            .map(|(class, head, spec)| {
                let mirror: &[ShadowNode] = if class.is_empty() {
                    &self.shadow_mirror
                } else {
                    self.part_mirrors
                        .get(&class)
                        .map(|m| m.as_slice())
                        .unwrap_or(&[])
                };
                (class, head, spec, mirror)
            })
            .collect();
        let seeds = rayon::with_threads(self.shard_threads, work, |(class, head, spec, mirror)| {
            let (plan, fit_total) = plan_from_mirror(mirror, &spec, policy);
            (
                class,
                ShardSeed {
                    head,
                    version,
                    fit_total,
                    plan,
                },
            )
        });
        for (class, seed) in seeds {
            self.shard_seeds.insert(class, seed);
        }
        self.obs.rec.add(self.obs.c_shard_plans, planned);
        // analyze:hot-path-end
    }

    /// Materialize a shard plan's `(node, tasks)` pairs into real
    /// allocations from the live node table (mirrors carry no capacity
    /// totals, which `alloc_for` needs for whole-node charging).
    fn materialize_plan(&self, spec: &JobSpec, pairs: Vec<(NodeId, u32)>) -> Vec<(NodeId, TaskAlloc)> {
        // analyze:hot-path-begin(sched-shard-merge)
        let policy = self.config.policy;
        pairs
            .into_iter()
            .filter_map(|(nid, fit)| {
                self.nodes
                    .get(&nid)
                    .map(|n| (nid, Self::alloc_for(n, spec, policy, fit)))
            })
            .collect()
        // analyze:hot-path-end
    }

    /// The head of a scheduling class.
    ///
    /// * preemption on → dispatch is **QoS-band-major**: the head comes
    ///   from the highest class present (an urgent arrival surfaces
    ///   immediately instead of aging behind the backlog); inside that
    ///   band, fair-share score (if on) then FIFO;
    /// * fair-share on (preemption off) → the queued job of the user with
    ///   the lowest decayed usage in the partition, FIFO tie-break;
    /// * neither → plain FIFO (the global class).
    fn select_head(&self, class: Option<&str>) -> Option<JobId> {
        let ckey = class.unwrap_or("");
        if self.config.preemption && !self.config.fair_share {
            // Band-major FIFO over the QoS index.
            return self.part_qos.get(ckey)?.values().next().copied();
        }
        match class {
            None => self.queue.first().map(|(_, id)| id),
            Some(part) => {
                // Fair-share: lowest-usage user's earliest job — restricted
                // to the top QoS band when preemption is also on (the
                // per-user index is band-major, so the top band is a
                // prefix).
                let users = self.part_user.get(part)?;
                let top_band = users.keys().next()?.0;
                let mut best: Option<(f64, u64, JobId)> = None;
                for (&(band, user), seqs) in users {
                    if band != top_band {
                        break;
                    }
                    let Some(&seq) = seqs.iter().next() else {
                        continue; // empty sets are removed eagerly
                    };
                    let score = self.ledger.score(part, user);
                    let better = match &best {
                        None => true,
                        Some((bs, bq, _)) => match score.total_cmp(bs) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => seq < *bq,
                        },
                    };
                    if better {
                        best = Some((score, seq, self.part_fifo[part][&seq]));
                    }
                }
                best.map(|(_, _, id)| id)
            }
        }
    }

    /// Run one class's dispatch loop: place heads while they fit, preempt
    /// for latency-sensitive blocked heads, then backfill behind the
    /// blocked head under the shadow bound (and, with reservations on, the
    /// full conservative calendar).
    fn schedule_class(&mut self, class: Option<String>) {
        let ckey = class.clone().unwrap_or_default();
        let head = loop {
            let sel_tok = self.obs.rec.span_start();
            let selected = self.select_head(class.as_deref());
            self.obs.rec.span_end(self.obs.sp_select, sel_tok);
            let Some(head) = selected else {
                return;
            };
            let head_spec = Arc::clone(&self.jobs[&head].spec);
            let known_blocked = self
                .policy_head_cache
                .get(&ckey)
                .is_some_and(|&(j, v)| j == head && v == self.state_version);
            if !known_blocked {
                self.obs.rec.incr(self.obs.c_head_memo_miss);
                let part: Option<String> = self
                    .partitions
                    .resolve(head_spec.partition.as_deref())
                    .expect("validated at submit")
                    .map(str::to_string);
                // O(1) certain-fail gate (same proof as the FCFS path).
                let gated = matches!(
                    &self.head_fit,
                    Some(hf) if hf.job == head && hf.part == part
                        && hf.total < head_spec.tasks as u64
                );
                let placed = if gated {
                    self.obs.rec.incr(self.obs.c_fit_gate);
                    None
                } else {
                    let tok = self.obs.rec.span_start();
                    // A shard seed planned for exactly this (head, version)
                    // replaces the inline walk; anything stale falls back.
                    // analyze:hot-path-begin(sched-shard-merge)
                    let seed = self
                        .shard_seeds
                        .remove(&ckey)
                        .filter(|s| {
                            let fresh = s.head == head && s.version == self.state_version;
                            if !fresh {
                                self.obs.rec.incr(self.obs.c_shard_seed_stale);
                            }
                            fresh
                        });
                    // analyze:hot-path-end
                    let (p, fit_sum) = match seed {
                        Some(s) => {
                            self.obs.rec.incr(self.obs.c_shard_seed_hits);
                            let p = s.plan.map(|pairs| self.materialize_plan(&head_spec, pairs));
                            #[cfg(debug_assertions)]
                            {
                                // Differential guard: a consumed seed must
                                // be indistinguishable from the inline walk.
                                let eligible = self
                                    .partitions
                                    .eligible_nodes(head_spec.partition.as_deref())
                                    .expect("validated at submit");
                                let (q, qsum) = self.placement_walk(&head_spec, eligible);
                                debug_assert_eq!(p, q, "shard plan diverged from inline walk");
                                if q.is_none() {
                                    debug_assert_eq!(
                                        s.fit_total, qsum,
                                        "shard fit sum diverged from inline walk"
                                    );
                                }
                            }
                            (p, s.fit_total)
                        }
                        None => {
                            let eligible = self
                                .partitions
                                .eligible_nodes(head_spec.partition.as_deref())
                                .expect("validated at submit");
                            self.placement_walk(&head_spec, eligible)
                        }
                    };
                    self.obs.rec.span_end(self.obs.sp_dispatch, tok);
                    if p.is_none() {
                        self.head_fit = Some(HeadFit {
                            job: head,
                            spec: Arc::clone(&head_spec),
                            part,
                            total: fit_sum,
                        });
                    }
                    p
                };
                if let Some(p) = placed {
                    self.dequeue(head);
                    self.start_job(head, p);
                    continue;
                }
                // The head would wait: a latency-sensitive class may
                // displace the cheapest lower-QoS victim set instead.
                if self.config.preemption {
                    self.obs.rec.incr(self.obs.c_preempt_searches);
                    let pre_tok = self.obs.rec.span_start();
                    let preempted = self.try_preempt_for(head, &head_spec);
                    self.obs.rec.span_end(self.obs.sp_preempt, pre_tok);
                    if let Some(p) = preempted {
                        self.dequeue(head);
                        self.start_job(head, p);
                        continue;
                    }
                }
                self.policy_head_cache
                    .insert(ckey.clone(), (head, self.state_version));
            } else {
                self.obs.rec.incr(self.obs.c_head_memo_hit);
            }
            break head;
        };
        if !self.config.backfill {
            return;
        }
        let head_spec = Arc::clone(&self.jobs[&head].spec);
        let shadow = match self.policy_shadow_cache.get(&ckey) {
            Some(&(j, v, s)) if j == head && v == self.state_version => {
                self.obs.rec.incr(self.obs.c_shadow_memo_hit);
                s
            }
            _ => {
                self.obs.rec.incr(self.obs.c_shadow_memo_miss);
                let tok = self.obs.rec.span_start();
                let s = self.shadow_time_for(head, &head_spec);
                self.obs.rec.span_end(self.obs.sp_shadow, tok);
                self.policy_shadow_cache
                    .insert(ckey.clone(), (head, self.state_version, s));
                s
            }
        };
        if self.config.reservations > 0 {
            self.rebuild_calendar(class.as_deref(), head);
        }
        let bf_tok = self.obs.rec.span_start();
        self.backfill_class(class.as_deref(), head, shadow);
        self.obs.rec.span_end(self.obs.sp_backfill, bf_tok);
    }

    /// Backfill scan for one class: candidates in enqueue order (skipping
    /// the head, which under fair-share need not be the earliest seq), the
    /// EASY shadow bound, the per-version failure memo, and — with
    /// reservations on — the conservative no-collision test against every
    /// held reservation.
    fn backfill_class(&mut self, class: Option<&str>, head: JobId, shadow: SimTime) {
        // Snapshot the holds once for the whole scan, across EVERY class's
        // calendar (overlapping partitions share nodes): starting a
        // candidate bumps the state version, which must not silently drop
        // the collision test for the rest of the scan. The snapshot stays
        // conservative — our own starts within this scan only consume
        // capacity the plan already assumed free-later, and holds whose
        // job has meanwhile started are filtered out.
        let holds: Vec<Reservation> = if self.config.reservations > 0 {
            self.calendars
                .values()
                .flat_map(|c| c.reservations.iter())
                .filter(|r| {
                    self.jobs
                        .get(&r.job)
                        .is_some_and(|j| j.state == JobState::Pending)
                })
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        let head_seq = self.queue_pos[head.0 as usize];
        let mut scanned = 0;
        let mut cursor: Option<u64> = None;
        while scanned < self.config.backfill_depth {
            // First queued entry after the cursor that isn't the head
            // itself (the head's key is a single point, so at most one
            // extra step skips it).
            let mut next = match class {
                None => self.queue.next_after(cursor),
                Some(part) => match self.part_fifo.get(part) {
                    Some(f) => next_in_fifo(f, cursor),
                    None => return, // class drained entirely
                },
            };
            if next.is_some_and(|(k, _)| k == head_seq) {
                next = match class {
                    None => self.queue.next_after(Some(head_seq)),
                    Some(part) => match self.part_fifo.get(part) {
                        Some(f) => next_in_fifo(f, Some(head_seq)),
                        None => return,
                    },
                };
            }
            let Some((key, cand)) = next else {
                return;
            };
            scanned += 1;
            cursor = Some(key);
            let spec = Arc::clone(&self.jobs[&cand].spec);
            let cand_end = self.now + spec.time_limit;
            let fits_before_shadow = shadow == SimTime::MAX || cand_end <= shadow;
            if !fits_before_shadow {
                self.obs.rec.incr(self.obs.c_bf_shadow_rejects);
                continue;
            }
            if self.backfill_fails.0 != self.state_version {
                self.backfill_fails = (self.state_version, BTreeSet::new());
            }
            if self.backfill_fails.1.contains(&cand) {
                self.obs.rec.incr(self.obs.c_bf_memo_rejects);
                continue;
            }
            self.obs.rec.incr(self.obs.c_bf_attempts);
            let placement = {
                let eligible = self
                    .partitions
                    .eligible_nodes(spec.partition.as_deref())
                    .expect("validated at submit");
                self.placement_for(&spec, eligible)
            };
            match placement {
                Some(p) => {
                    if crate::calendar::blocks_any(&holds, cand, &p, cand_end) {
                        // Placement exists but collides with a held
                        // reservation: conservative backfill refuses. Not
                        // memoized — the memo records placement failures,
                        // and this isn't one.
                        self.obs.rec.incr(self.obs.c_bf_rsv_refusals);
                        continue;
                    }
                    self.obs.rec.incr(self.obs.c_bf_accepts);
                    self.dequeue(cand);
                    self.start_job(cand, p);
                }
                None => {
                    self.backfill_fails.1.insert(cand);
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Preemption and the reservation calendar
// ----------------------------------------------------------------------
impl Scheduler {
    /// Try to free enough capacity for a blocked latency-sensitive head by
    /// killing-and-requeuing strictly-lower-QoS running jobs, cheapest
    /// first (cost = remaining core-seconds of lost work). Feasibility is
    /// judged by the same per-node fit-sum the shadow uses — victims are
    /// only actually killed once the sum proves the head will fit. Returns
    /// the head's placement on the freed capacity.
    fn try_preempt_for(
        &mut self,
        head: JobId,
        spec: &Arc<JobSpec>,
    ) -> Option<Vec<(NodeId, TaskAlloc)>> {
        let policy = self.config.policy;
        let qos = spec.qos;
        if !qos.may_preempt(crate::job::QosClass::Bulk) {
            return None; // not a preemptor class at all
        }
        let part = self
            .partitions
            .resolve(spec.partition.as_deref())
            .expect("validated at submit")
            .map(str::to_string);
        let eligible: Option<BTreeSet<NodeId>> = self
            .partitions
            .eligible_nodes(spec.partition.as_deref())
            .expect("validated at submit")
            .cloned();
        // Candidate victims: running, strictly lower class, holding at
        // least one eligible node. Cost-sorted ascending.
        let mut victims: Vec<(u64, JobId)> = Vec::new();
        for (&(end_t, jid), _) in &self.running_ends {
            let vj = &self.jobs[&jid];
            if !qos.may_preempt(vj.spec.qos) {
                continue;
            }
            if let Some(set) = &eligible {
                if !vj.allocations.keys().any(|n| set.contains(n)) {
                    continue;
                }
            }
            let cores: u64 = vj.allocations.values().map(|a| a.cores as u64).sum();
            let remaining = end_t.since(self.now).as_secs_f64();
            victims.push(((cores as f64 * remaining) as u64, jid));
        }
        if victims.is_empty() {
            return None;
        }
        victims.sort_unstable();
        // Simulate releases over the reusable scratch capacity copy until
        // the head's fit-sum clears its task count (allocation-free in
        // steady state — the buffer persists across calls).
        if let Some(p) = &part {
            self.part_mirror(p);
        }
        let mut snodes = std::mem::take(&mut self.scan_scratch);
        snodes.clear();
        match &part {
            Some(p) => snodes.extend_from_slice(&self.part_mirrors[p]),
            None => snodes.extend_from_slice(&self.shadow_mirror),
        }
        let needed = spec.tasks as u64;
        let mut total: u64 = snodes.iter().map(|sn| sn.fit(spec, policy)).sum();
        let mut chosen: Vec<JobId> = Vec::new();
        for (_, v) in victims {
            if total >= needed {
                break;
            }
            for (&nid, alloc) in &self.jobs[&v].allocations {
                let Ok(i) = snodes.binary_search_by_key(&nid, |sn| sn.id) else {
                    continue;
                };
                if let Some(sn) = snodes.get_mut(i) {
                    sn.fold_release(alloc, spec, policy, &mut total);
                }
            }
            chosen.push(v);
        }
        let feasible = total >= needed;
        self.scan_scratch = snodes;
        if !feasible {
            return None; // even killing every eligible victim won't fit it
        }
        for v in &chosen {
            self.preempt_job(*v, head);
        }
        let eligible = self
            .partitions
            .eligible_nodes(spec.partition.as_deref())
            .expect("validated at submit");
        let placement = self.placement_for(spec, eligible);
        debug_assert!(
            placement.is_some(),
            "fit-sum proved the freed capacity admits the head"
        );
        placement
    }

    /// Kill-and-requeue one victim: release its holdings (placement index,
    /// mirrors, and head fit stay current), emit the full separation
    /// epilog per node — the scrub/cleanup the cluster layer runs *before*
    /// any new tenant's prolog — charge its consumed work to the
    /// fair-share ledger, bump its run epoch (stale end events die), and
    /// put it back in the queue.
    fn preempt_job(&mut self, id: JobId, by: JobId) {
        let (user, started, duration, cpus_per_task) = {
            let job = &self.jobs[&id];
            debug_assert_eq!(job.state, JobState::Running);
            (
                job.spec.user,
                job.started.expect("running has start"),
                job.spec.duration,
                job.spec.cpus_per_task,
            )
        };
        self.running_ends.remove(&(started + duration, id));
        *self.run_epochs.entry(id).or_insert(0) += 1;
        let allocations: Vec<(NodeId, TaskAlloc)> = self.jobs[&id]
            .allocations
            .iter()
            .map(|(n, a)| (*n, *a))
            .collect();
        let mut released_cores = 0u32;
        let mut released_used = 0u32;
        for (nid, alloc) in &allocations {
            if self.release_on(*nid, id).is_some() {
                released_cores += alloc.cores;
                released_used += alloc.tasks * cpus_per_task;
            }
        }
        self.metrics
            .busy_cores
            .add(self.now, -(released_cores as f64));
        self.metrics
            .used_cores
            .add(self.now, -(released_used as f64));
        self.charge_fair_share(id, released_cores, started);
        {
            let job = self.jobs.get_mut(&id).expect("known job");
            job.state = JobState::Pending;
            job.started = None;
            job.allocations.clear();
        }
        for (nid, alloc) in &allocations {
            let still_active = self.has_running_job_on(user, *nid);
            self.epilogs.push(EpilogEvent {
                job: id,
                user,
                node: *nid,
                gpus: alloc.gpus,
                at: self.now,
                user_still_active_on_node: still_active,
            });
        }
        self.enqueue(id);
        self.obs.rec.incr(self.obs.c_preempt_kills);
        self.obs.rec.event(
            self.now,
            "preempt.kill",
            id.0,
            by.0,
            allocations.len() as u64,
        );
        self.preemptions.push(PreemptionRecord {
            victim: id,
            victim_user: user,
            preempted_by: by,
            at: self.now,
            nodes: allocations.iter().map(|(n, _)| *n).collect(),
        });
    }

    /// The top-K queued jobs of a class in dispatch order (head first).
    /// With preemption on the order follows the QoS band index (band-major
    /// FIFO — the fair-share within-band refinement is approximated by
    /// band order, which is what dispatch converges to as scores equalize).
    fn class_top_k(&self, class: Option<&str>, head: JobId, k: usize) -> Vec<JobId> {
        let mut order = vec![head];
        if self.config.preemption {
            if let Some(bands) = self.part_qos.get(class.unwrap_or("")) {
                order.extend(
                    bands
                        .values()
                        .filter(|&&j| j != head)
                        .take(k.saturating_sub(1))
                        .copied(),
                );
            }
            return order;
        }
        match class {
            Some(part) => {
                // Fair-share order: (user score, seq), derived by a K-way
                // merge over the per-user seq sets — O(U + K log U), never
                // a whole-queue sort. (Preemption is off on this branch,
                // so every per-user index key has band 0.)
                let (Some(fifo), Some(users)) =
                    (self.part_fifo.get(part), self.part_user.get(part))
                else {
                    return order;
                };
                #[derive(PartialEq)]
                struct Cand(f64, u64, Uid);
                impl Eq for Cand {}
                impl PartialOrd for Cand {
                    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                        Some(self.cmp(other))
                    }
                }
                impl Ord for Cand {
                    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                        // Reversed: BinaryHeap is a max-heap, we pop min.
                        other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
                    }
                }
                let mut heap: BinaryHeap<Cand> = users
                    .iter()
                    .filter_map(|(&(_, user), seqs)| {
                        seqs.iter()
                            .next()
                            .map(|&seq| Cand(self.ledger.score(part, user), seq, user))
                    })
                    .collect();
                while order.len() < k {
                    let Some(Cand(score, seq, user)) = heap.pop() else {
                        break;
                    };
                    let job = fifo[&seq];
                    if job != head {
                        order.push(job);
                    }
                    // Advance this user's cursor to their next queued seq.
                    if let Some(seqs) = users.get(&(0, user)) {
                        if let Some(&next) =
                            seqs.range((Bound::Excluded(seq), Bound::Unbounded)).next()
                        {
                            heap.push(Cand(score, next, user));
                        }
                    }
                }
            }
            None => {
                order.extend(
                    self.queue
                        .iter()
                        .map(|(_, j)| j)
                        .filter(|&j| j != head)
                        .take(k.saturating_sub(1)),
                );
            }
        }
        order
    }

    /// Rebuild a class's reservation calendar for the current state
    /// version: plan starts for the top-K queued jobs sequentially against
    /// a capacity profile containing running-job releases and every
    /// earlier reservation's claim/release. Anchor feasibility uses each
    /// node's *minimum* free capacity over the candidate window (future
    /// claims subtracted, releases ignored) — the conservative rule that
    /// makes double-booking impossible.
    fn rebuild_calendar(&mut self, class: Option<&str>, head: JobId) {
        let ckey = class.unwrap_or("").to_string();
        if self
            .calendars
            .get(&ckey)
            .is_some_and(|c| c.built_version == Some((self.state_version, self.queue_seq)))
        {
            self.obs.rec.incr(self.obs.c_cal_memo_hits);
            return;
        }
        let order = self.class_top_k(class, head, self.config.reservations);
        // Arrival floods: if nothing claimed or released and the top-K is
        // the same job list the standing plan was built from, the plan is
        // still exact — re-tag it instead of re-deriving the profile.
        if let Some(c) = self.calendars.get_mut(&ckey) {
            if c.built_version
                .is_some_and(|(v, _)| v == self.state_version)
                && c.planned_for == order
            {
                c.built_version = Some((self.state_version, self.queue_seq));
                self.obs.rec.incr(self.obs.c_cal_retags);
                return;
            }
        }
        if let Some(p) = class {
            self.part_mirror(p);
        }
        let base: Vec<ShadowNode> = match class {
            Some(p) => self.part_mirrors[p].clone(),
            None => self.shadow_mirror.clone(),
        };
        let tok = self.obs.rec.span_start();
        // Capacity deltas over time: running releases (+), reservation
        // claims (−) and releases (+). Kept time-sorted.
        let mut deltas: Vec<CapDelta> = Vec::new();
        for (&(end_t, _jid), allocs) in &self.running_ends {
            for &(nid, alloc) in allocs.iter() {
                deltas.push(CapDelta {
                    at: end_t,
                    node: nid,
                    cores: alloc.cores as i64,
                    mem: alloc.mem_mib as i64,
                    gpus: alloc.gpus as i64,
                });
            }
        }
        // Sorted once; later reservation claims/releases are inserted at
        // their binary-searched position, so the per-job replay never
        // re-sorts the whole profile.
        deltas.sort_by_key(|d| d.at);
        let mut cal = ReservationCalendar::new();
        for &job in &order {
            let planned = self.plan_reservation(job, &base, &deltas);
            if let Some(r) = planned {
                let mut insert_sorted = |d: CapDelta| {
                    let at = deltas.partition_point(|e| e.at <= d.at);
                    deltas.insert(at, d);
                };
                for (nid, a) in &r.allocs {
                    insert_sorted(CapDelta {
                        at: r.start,
                        node: *nid,
                        cores: -(a.cores as i64),
                        mem: -(a.mem_mib as i64),
                        gpus: -(a.gpus as i64),
                    });
                    insert_sorted(CapDelta {
                        at: r.end,
                        node: *nid,
                        cores: a.cores as i64,
                        mem: a.mem_mib as i64,
                        gpus: a.gpus as i64,
                    });
                }
                cal.reservations.push(r);
            }
        }
        cal.planned_for = order;
        cal.profile = deltas;
        cal.built_version = Some((self.state_version, self.queue_seq));
        self.calendars.insert(ckey, cal);
        self.obs.rec.incr(self.obs.c_cal_plans);
        self.obs.rec.span_end(self.obs.sp_calendar, tok);
    }

    /// Plan the earliest conservative reservation for one job against a
    /// base capacity snapshot plus a time-sorted delta profile. Pure with
    /// respect to scheduler state — [`rebuild_calendar`](Self::rebuild_calendar)
    /// calls it per top-K job (folding each plan back into the profile),
    /// and [`earliest_start`](Self::earliest_start) calls it once against
    /// a finished profile to answer beyond-top-K jobs. `None` = the job
    /// fits at no anchor (it would never start even after every release).
    fn plan_reservation(
        &self,
        job: JobId,
        base: &[ShadowNode],
        deltas: &[CapDelta],
    ) -> Option<Reservation> {
        let policy = self.config.policy;
        let spec = Arc::clone(&self.jobs[&job].spec);
        let needed = spec.tasks as u64;
        let eligible = self
            .partitions
            .eligible_nodes(spec.partition.as_deref())
            .expect("validated at submit");
        // Anchors: now, then every future delta instant.
        let mut anchors: Vec<SimTime> = vec![self.now];
        anchors.extend(deltas.iter().map(|d| d.at).filter(|&t| t > self.now));
        anchors.dedup();
        let mut snodes = base.to_vec();
        // Two-pointer sweep: `applied` deltas are folded into `snodes`
        // (at ≤ anchor); claims with index in [applied, win_end) sit in
        // the `win` overlay (the future claims inside the current
        // window, subtracted for the conservative minimum). Each delta
        // enters and leaves each structure exactly once, and per-node
        // fits update incrementally — O(deltas log n) per job instead
        // of an O(deltas²) rescan.
        let mut win: BTreeMap<NodeId, (u64, u64, u64)> = BTreeMap::new();
        let fit_with = |sn: &ShadowNode, win: &BTreeMap<NodeId, (u64, u64, u64)>| -> u64 {
            if eligible.is_some_and(|set| !set.contains(&sn.id)) {
                return 0;
            }
            let mut s = *sn;
            if let Some(&(c, m, g)) = win.get(&sn.id) {
                s.free_cores = s.free_cores.saturating_sub(c as u32);
                s.free_mem_mib = s.free_mem_mib.saturating_sub(m);
                s.free_gpus = s.free_gpus.saturating_sub(g as u32);
                // A reserved slice makes the node non-idle for
                // exclusive-style admission.
                s.jobs += 1;
            }
            s.fit(&spec, policy)
        };
        let mut fits: Vec<u64> = Vec::new();
        let mut total = 0u64;
        let mut applied = 0usize;
        let mut win_end = 0usize;
        let mut planned: Option<Reservation> = None;
        for (ai, &t) in anchors.iter().enumerate() {
            let window_end = t + spec.time_limit;
            while applied < deltas.len() && deltas[applied].at <= t {
                let d = deltas[applied];
                if let Ok(i) = snodes.binary_search_by_key(&d.node, |sn| sn.id) {
                    // Leaving the window overlay (if it was a claim
                    // that had been counted as "future").
                    if d.cores < 0 && applied < win_end {
                        if let Some(w) = win.get_mut(&d.node) {
                            w.0 -= (-d.cores) as u64;
                            w.1 -= (-d.mem) as u64;
                            w.2 -= (-d.gpus) as u64;
                            if *w == (0, 0, 0) {
                                win.remove(&d.node);
                            }
                        }
                    }
                    let sn = &mut snodes[i];
                    sn.free_cores = (sn.free_cores as i64 + d.cores).max(0) as u32;
                    sn.free_mem_mib = (sn.free_mem_mib as i64 + d.mem).max(0) as u64;
                    sn.free_gpus = (sn.free_gpus as i64 + d.gpus).max(0) as u32;
                    if d.cores > 0 && sn.jobs > 0 {
                        sn.jobs -= 1;
                        if sn.jobs == 0 {
                            sn.owner = None;
                        }
                    } else if d.cores < 0 {
                        sn.jobs += 1;
                    }
                    if !fits.is_empty() {
                        let f = fit_with(&snodes[i], &win);
                        total = total + f - fits[i];
                        fits[i] = f;
                    }
                }
                applied += 1;
                win_end = win_end.max(applied);
            }
            // New future claims entering the window's far edge.
            while win_end < deltas.len() && deltas[win_end].at < window_end {
                let d = deltas[win_end];
                if d.cores < 0 {
                    if let Ok(i) = snodes.binary_search_by_key(&d.node, |sn| sn.id) {
                        let w = win.entry(d.node).or_insert((0, 0, 0));
                        w.0 += (-d.cores) as u64;
                        w.1 += (-d.mem) as u64;
                        w.2 += (-d.gpus) as u64;
                        if !fits.is_empty() {
                            let f = fit_with(&snodes[i], &win);
                            total = total + f - fits[i];
                            fits[i] = f;
                        }
                    }
                }
                win_end += 1;
            }
            if ai == 0 {
                // One full pass to seed the incremental fits.
                fits = snodes.iter().map(|sn| fit_with(sn, &win)).collect();
                total = fits.iter().sum();
            }
            if total < needed {
                continue;
            }
            let fit_at = |sn: &ShadowNode| -> u64 { fit_with(sn, &win) };
            // Feasible: pick the concrete allocation greedily in id
            // order against the window-minimum capacity.
            let mut remaining = spec.tasks;
            let mut allocs: Vec<(NodeId, TaskAlloc)> = Vec::new();
            for sn in &snodes {
                if remaining == 0 {
                    break;
                }
                let fit = (fit_at(sn) as u32).min(remaining);
                if fit == 0 {
                    continue;
                }
                let alloc = if policy.charges_whole_node(&spec) {
                    let node = &self.nodes[&sn.id];
                    TaskAlloc {
                        tasks: fit,
                        cores: node.cores,
                        mem_mib: node.mem_mib,
                        gpus: node.gpus,
                    }
                } else {
                    TaskAlloc {
                        tasks: fit,
                        cores: fit * spec.cpus_per_task,
                        mem_mib: fit as u64 * spec.mem_per_task_mib,
                        gpus: fit * spec.gpus_per_task,
                    }
                };
                allocs.push((sn.id, alloc));
                remaining -= fit;
            }
            debug_assert_eq!(remaining, 0, "fit-sum promised a full placement");
            planned = Some(Reservation {
                job,
                user: spec.user,
                start: t,
                end: window_end,
                allocs,
            });
            break;
        }
        planned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(policy: NodeSharing, nodes: u32, cores: u32) -> Scheduler {
        let mut s = Scheduler::new(SchedConfig {
            policy,
            ..SchedConfig::default()
        });
        for _ in 0..nodes {
            s.add_node(cores, 64_000, 0);
        }
        s
    }

    fn job(user: u32, tasks: u32, secs: u64) -> JobSpec {
        JobSpec::new(
            Uid(user),
            format!("u{user}-job"),
            SimDuration::from_secs(secs),
        )
        .with_tasks(tasks)
        .with_mem_per_task(100)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        let id = s.submit_at(SimTime::from_secs(1), job(1, 4, 10));
        let end = s.run_to_completion();
        assert_eq!(end, SimTime::from_secs(11));
        let j = &s.jobs[&id];
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.started, Some(SimTime::from_secs(1)));
        assert_eq!(s.metrics.completed.get(), 1);
        assert!(s.nodes.values().all(|n| n.is_idle()));
    }

    #[test]
    fn shared_packs_two_users_on_one_node() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 2, "both fit simultaneously");
    }

    #[test]
    fn whole_node_serializes_different_users_on_one_node() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 4, 10));
        let b = s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 1, "second user must wait");
        let end = s.run_to_completion();
        assert_eq!(end, SimTime::from_secs(20));
        assert_eq!(s.jobs[&a].state, JobState::Completed);
        assert_eq!(s.jobs[&b].started, Some(SimTime::from_secs(10)));
    }

    #[test]
    fn whole_node_packs_same_user() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 2, "same user's jobs co-schedule");
    }

    #[test]
    fn exclusive_charges_whole_node() {
        let mut s = sched(NodeSharing::Exclusive, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.run_until(SimTime::from_secs(1));
        // Two nodes → two exclusive jobs; the third waits even though cores
        // are plentiful.
        assert_eq!(s.running_count(), 2);
        assert_eq!(s.pending_count(), 1);
        // Utilization is charged for the whole node.
        assert_eq!(s.metrics.busy_cores.current(), 16.0);
    }

    #[test]
    fn multi_node_job_spreads() {
        let mut s = sched(NodeSharing::Shared, 3, 4);
        let id = s.submit_at(SimTime::ZERO, job(1, 10, 5));
        s.run_until(SimTime::from_secs(1));
        let j = &s.jobs[&id];
        assert_eq!(j.state, JobState::Running);
        assert_eq!(j.allocations.len(), 3);
        let tasks: u32 = j.allocations.values().map(|a| a.tasks).sum();
        assert_eq!(tasks, 10);
    }

    #[test]
    fn job_too_big_never_starts() {
        let mut s = sched(NodeSharing::Shared, 1, 4);
        let id = s.submit_at(SimTime::ZERO, job(1, 100, 5));
        s.run_until(SimTime::from_secs(100));
        assert_eq!(s.jobs[&id].state, JobState::Pending);
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn backfill_fills_hole_without_delaying_head() {
        // 8-core node, fully busy 100s; head (8 cores) must wait to t=100; a
        // tiny 2-core job cannot start either (node full) and, once the head
        // takes the whole node at t=100, waits for the head too.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 8, 100)); // fills the node
        let head = s.submit_at(SimTime::from_secs(1), job(2, 8, 50)); // must wait to t=100
        let small = s.submit_at(SimTime::from_secs(2), job(3, 8, 99).with_cpus_per_task(0));
        s.cancel(small);
        let tiny = s.submit_at(SimTime::from_secs(2), job(3, 2, 10));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.running_count(), 1);
        s.run_to_completion();
        assert_eq!(s.jobs[&head].started, Some(SimTime::from_secs(100)));
        assert_eq!(s.jobs[&tiny].started, Some(SimTime::from_secs(150)));
    }

    #[test]
    fn backfill_true_hole_filling() {
        // Node of 8 cores: job A (6 cores, 100s) leaves a 2-core hole.
        // Head job B needs 8 cores → shadow = 100. Candidate C (2 cores,
        // 50s) fits the hole and ends at ~52 < 100 → backfills.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 6, 100));
        let b = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        let c = s.submit_at(SimTime::from_secs(2), job(3, 2, 50));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.jobs[&a].state, JobState::Running);
        assert_eq!(s.jobs[&b].state, JobState::Pending, "head waits");
        assert_eq!(s.jobs[&c].state, JobState::Running, "C backfilled");
        s.run_to_completion();
        assert_eq!(
            s.jobs[&b].started,
            Some(SimTime::from_secs(100)),
            "head not delayed by backfill"
        );
    }

    #[test]
    fn backfill_refuses_delaying_candidates() {
        // Same setup but C runs 200s > shadow → must NOT backfill.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 6, 100));
        let b = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        let c = s.submit_at(SimTime::from_secs(2), job(3, 2, 200));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.jobs[&c].state, JobState::Pending, "would delay head");
        s.run_to_completion();
        assert_eq!(s.jobs[&b].started, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn node_failure_kills_jobs_and_repairs() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        let bjob = s.submit_at(SimTime::ZERO, job(2, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        // Both jobs were packed onto node 1 (first fit) in shared mode.
        assert_eq!(s.jobs[&a].state, JobState::Failed);
        assert_eq!(s.jobs[&bjob].state, JobState::Failed);
        assert_eq!(s.failures.len(), 1);
        assert_eq!(s.failures[0].affected_users().len(), 2, "blast radius 2");
        assert_eq!(s.metrics.failed.get(), 2);
        // Node repairs after repair_time (600s default).
        s.run_until(SimTime::from_secs(700));
        assert_eq!(s.nodes[&NodeId(1)].state, NodeState::Up);
    }

    #[test]
    fn whole_node_failure_blast_radius_is_one_user() {
        let mut s = sched(NodeSharing::WholeNodeUser, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        s.submit_at(SimTime::ZERO, job(2, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        assert_eq!(
            s.failures[0].affected_users().len(),
            1,
            "only node 1's owner"
        );
    }

    #[test]
    fn failed_node_rejoins_scheduling_after_repair() {
        // Regression for the placement index: a repaired node must re-enter
        // the idle/avail candidate sets and accept work again.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        let late = s.submit_at(SimTime::from_secs(20), job(2, 4, 10));
        s.run_until(SimTime::from_secs(21));
        assert_eq!(s.jobs[&late].state, JobState::Pending, "node still down");
        s.run_to_completion();
        assert_eq!(
            s.jobs[&late].started,
            Some(SimTime::from_secs(610)),
            "starts at repair (10s failure + 600s repair_time)"
        );
    }

    #[test]
    fn epilogs_emitted_with_user_departure_flag() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 2, 10));
        s.submit_at(SimTime::ZERO, job(1, 2, 20));
        s.run_to_completion();
        let epilogs = s.drain_epilogs();
        assert_eq!(epilogs.len(), 2);
        // First job ends at t=10 while the second still runs.
        assert!(epilogs[0].user_still_active_on_node);
        // Second ending leaves the node empty of that user.
        assert!(!epilogs[1].user_still_active_on_node);
        assert!(s.drain_epilogs().is_empty(), "drain empties");
    }

    #[test]
    fn squeue_respects_private_data() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.config.private_data = PrivateData::llsc();
        s.add_admin(Uid(50));
        s.submit_at(SimTime::ZERO, job(1, 1, 100));
        s.submit_at(SimTime::ZERO, job(2, 1, 100));
        s.run_until(SimTime::from_secs(1));

        let u1 = Credentials::new(Uid(1), eus_simos::Gid(1));
        let views = s.squeue(&u1);
        assert_eq!(views.len(), 1, "only own jobs");
        assert_eq!(views[0].user, Uid(1));
        assert_eq!(views[0].name(), "u1-job");

        let admin = Credentials::new(Uid(50), eus_simos::Gid(50));
        assert_eq!(s.squeue(&admin).len(), 2, "admins see all");
        assert_eq!(s.squeue(&Credentials::root()).len(), 2);

        s.config.private_data = PrivateData::open();
        assert_eq!(s.squeue(&u1).len(), 2, "open config shows all");
    }

    #[test]
    fn cancel_only_pending() {
        let mut s = sched(NodeSharing::Shared, 1, 2);
        let a = s.submit_at(SimTime::ZERO, job(1, 2, 100));
        let b = s.submit_at(SimTime::ZERO, job(2, 2, 100));
        s.run_until(SimTime::from_secs(1));
        assert!(!s.cancel(a), "running job not cancellable here");
        assert!(s.cancel(b));
        assert_eq!(s.jobs[&b].state, JobState::Cancelled);
        assert!(!s.cancel(b), "idempotent");
    }

    #[test]
    fn utilization_math() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 8, 50));
        s.run_until(SimTime::from_secs(100));
        // 8 cores × 50 s busy out of 8 × 100 capacity = 0.5.
        assert!((s.utilization() - 0.5).abs() < 1e-9, "{}", s.utilization());
    }

    #[test]
    fn wall_time_limit_enforced() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        // Actual runtime 100s, requested limit 30s: killed at 30.
        let j = s.submit_at(
            SimTime::ZERO,
            job(1, 2, 100).with_time_limit(SimDuration::from_secs(30)),
        );
        // A well-behaved job for contrast.
        let ok = s.submit_at(SimTime::ZERO, job(2, 2, 20));
        s.run_to_completion();
        assert_eq!(s.jobs[&j].state, JobState::Timeout);
        assert_eq!(s.jobs[&j].ended, Some(SimTime::from_secs(30)));
        assert_eq!(s.jobs[&ok].state, JobState::Completed);
        assert_eq!(s.metrics.timed_out.get(), 1);
        assert_eq!(s.metrics.completed.get(), 1);
        // Resources released at the limit, not the would-be duration.
        assert!(s.nodes.values().all(|n| n.is_idle()));
    }

    #[test]
    fn partition_confines_placement() {
        let mut s = sched(NodeSharing::Shared, 4, 8);
        s.partitions_mut()
            .add("batch", [NodeId(1), NodeId(2)], true)
            .unwrap();
        s.partitions_mut().add("debug", [NodeId(3)], false).unwrap();
        // Default-partition job lands on nodes 1-2 only, even when 3-4 idle.
        let a = s.submit_at(SimTime::ZERO, job(1, 16, 10)); // needs 2 nodes
                                                            // Debug job lands on node 3.
        let d = s.submit_at(SimTime::ZERO, job(2, 2, 10).with_partition("debug"));
        s.run_until(SimTime::from_secs(1));
        let a_nodes: Vec<NodeId> = s.jobs[&a].allocations.keys().copied().collect();
        assert_eq!(a_nodes, vec![NodeId(1), NodeId(2)]);
        let d_nodes: Vec<NodeId> = s.jobs[&d].allocations.keys().copied().collect();
        assert_eq!(d_nodes, vec![NodeId(3)]);
        // Node 4 belongs to no partition: never used.
        assert!(s.nodes[&NodeId(4)].is_idle());
    }

    #[test]
    fn partition_queues_when_full_despite_free_foreign_nodes() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.partitions_mut().add("small", [NodeId(1)], true).unwrap();
        s.submit_at(SimTime::ZERO, job(1, 8, 100));
        let waiting = s.submit_at(SimTime::ZERO, job(2, 8, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(
            s.jobs[&waiting].state,
            JobState::Pending,
            "node 2 is off-limits"
        );
        s.run_to_completion();
        assert_eq!(s.jobs[&waiting].started, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn unknown_partition_rejected_at_submit() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.partitions_mut().add("batch", [NodeId(1)], true).unwrap();
        let id = s.submit_at(SimTime::ZERO, job(1, 1, 10).with_partition("nope"));
        assert_eq!(s.jobs[&id].state, JobState::Cancelled);
        s.run_to_completion();
        assert_eq!(s.jobs[&id].state, JobState::Cancelled);
        assert_eq!(s.metrics.completed.get(), 0);
    }

    // ------------------------------------------------------------------
    // Policy plane
    // ------------------------------------------------------------------

    use crate::job::QosClass;

    #[test]
    fn policy_plane_defaults_off() {
        let c = SchedConfig::default();
        assert!(!c.policy_plane_active());
        assert!(SchedConfig {
            reservations: 4,
            ..SchedConfig::default()
        }
        .policy_plane_active());
    }

    #[test]
    fn urgent_head_preempts_bulk_and_victim_requeues() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            preemption: true,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        // Bulk fills the node for 1000 s.
        let bulk = s.submit_at(SimTime::ZERO, job(1, 8, 1000).with_qos(QosClass::Bulk));
        // Urgent 4-task job arrives at t=10.
        let urgent = s.submit_at(
            SimTime::from_secs(10),
            job(2, 4, 50).with_qos(QosClass::Urgent),
        );
        s.run_until(SimTime::from_secs(11));
        assert_eq!(s.jobs[&urgent].state, JobState::Running, "preempted in");
        assert_eq!(s.jobs[&urgent].started, Some(SimTime::from_secs(10)));
        assert_eq!(s.jobs[&bulk].state, JobState::Pending, "requeued");
        assert_eq!(s.preemptions.len(), 1);
        assert_eq!(s.preemptions[0].victim, bulk);
        assert_eq!(s.preemptions[0].preempted_by, urgent);
        // The victim's separation epilog fired at preemption time.
        let epilogs = s.drain_epilogs();
        assert!(epilogs
            .iter()
            .any(|e| e.job == bulk && e.at == SimTime::from_secs(10)));
        // The victim reruns after the urgent job and completes; its stale
        // end event (t=1000 from the killed run) must not truncate it.
        let end = s.run_to_completion();
        assert_eq!(s.jobs[&bulk].state, JobState::Completed);
        assert_eq!(s.jobs[&bulk].started, Some(SimTime::from_secs(60)));
        assert_eq!(end, SimTime::from_secs(1060), "full 1000 s rerun");
        assert_eq!(s.metrics.completed.get(), 2);
    }

    #[test]
    fn normal_class_never_preempts_and_off_knob_ignores_qos() {
        // Normal-class head: blocked, no preemption even over Bulk.
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            preemption: true,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(SimTime::ZERO, job(1, 8, 100).with_qos(QosClass::Bulk));
        let normal = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        s.run_until(SimTime::from_secs(2));
        assert_eq!(s.jobs[&normal].state, JobState::Pending);
        assert!(s.preemptions.is_empty());

        // Urgent head with the knob OFF: waits like anyone else.
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(SimTime::ZERO, job(1, 8, 100).with_qos(QosClass::Bulk));
        let urgent = s.submit_at(
            SimTime::from_secs(1),
            job(2, 8, 10).with_qos(QosClass::Urgent),
        );
        s.run_until(SimTime::from_secs(2));
        assert_eq!(s.jobs[&urgent].state, JobState::Pending, "qos ignored");
        assert!(s.preemptions.is_empty());
    }

    #[test]
    fn urgent_arrival_jumps_a_deep_backlog_and_preempts() {
        // The urgent job is nowhere near the FIFO head — with preemption
        // on, dispatch is QoS-band-major, so it surfaces immediately.
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            preemption: true,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(SimTime::ZERO, job(1, 8, 5000).with_qos(QosClass::Bulk));
        for _ in 0..40 {
            s.submit_at(SimTime::ZERO, job(1, 8, 1000).with_qos(QosClass::Bulk));
        }
        let urgent = s.submit_at(
            SimTime::from_secs(30),
            job(2, 4, 60).with_qos(QosClass::Urgent),
        );
        s.run_until(SimTime::from_secs(31));
        assert_eq!(s.jobs[&urgent].state, JobState::Running);
        assert_eq!(s.jobs[&urgent].started, Some(SimTime::from_secs(30)));
        assert_eq!(s.preemptions.len(), 1);
    }

    #[test]
    fn preemption_kills_cheapest_victims_only() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            preemption: true,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.add_node(8, 64_000, 0);
        // Expensive victim: 8 cores × long remaining. Cheap victim: 8 × short.
        let expensive = s.submit_at(SimTime::ZERO, job(1, 8, 10_000).with_qos(QosClass::Bulk));
        let cheap = s.submit_at(SimTime::ZERO, job(2, 8, 500).with_qos(QosClass::Bulk));
        // Interactive job needs one node's worth.
        let inter = s.submit_at(
            SimTime::from_secs(5),
            job(3, 8, 60).with_qos(QosClass::Interactive),
        );
        s.run_until(SimTime::from_secs(6));
        assert_eq!(s.jobs[&inter].state, JobState::Running);
        assert_eq!(s.preemptions.len(), 1, "one victim sufficed");
        assert_eq!(s.preemptions[0].victim, cheap, "cheapest remaining work");
        assert_eq!(s.jobs[&expensive].state, JobState::Running, "spared");
    }

    #[test]
    fn fair_share_unblocks_backlogged_partitions() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            fair_share: true,
            backfill_depth: 2, // tiny budget: global FCFS would starve "debug"
            ..SchedConfig::default()
        });
        for _ in 0..2 {
            s.add_node(8, 64_000, 0);
        }
        s.partitions_mut().add("batch", [NodeId(1)], true).unwrap();
        s.partitions_mut().add("debug", [NodeId(2)], false).unwrap();
        // Deep batch backlog ahead of the debug job in global order.
        for i in 0..50 {
            s.submit_at(SimTime::ZERO, job(1, 8, 1000 + i));
        }
        let debug_job = s.submit_at(SimTime::from_secs(1), job(2, 4, 10).with_partition("debug"));
        s.run_until(SimTime::from_secs(2));
        assert_eq!(
            s.jobs[&debug_job].state,
            JobState::Running,
            "debug partition schedules despite the batch backlog"
        );
    }

    #[test]
    fn fair_share_orders_by_decayed_usage() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            fair_share: true,
            backfill: false,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        // User 1 burns the node; then both users queue a full-node job,
        // user 1 first. FIFO would run u1; fair-share runs u2 first.
        s.submit_at(SimTime::ZERO, job(1, 8, 100));
        let u1_next = s.submit_at(SimTime::from_secs(1), job(1, 8, 10));
        let u2_first = s.submit_at(SimTime::from_secs(2), job(2, 8, 10));
        s.run_to_completion();
        assert_eq!(s.jobs[&u2_first].started, Some(SimTime::from_secs(100)));
        assert_eq!(s.jobs[&u1_next].started, Some(SimTime::from_secs(110)));
        let ledger = s.fair_share_ledger();
        assert!(
            ledger.score("", Uid(1)) > ledger.score("", Uid(2)),
            "heavier user carries more decayed usage"
        );
    }

    #[test]
    fn reservations_answer_earliest_start_and_stay_conservative() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            reservations: 4,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        // Running job holds the node until t=100.
        s.submit_at(SimTime::ZERO, job(1, 8, 100));
        // Two full-node jobs queue behind it.
        let second = s.submit_at(SimTime::from_secs(1), job(2, 8, 50));
        let third = s.submit_at(SimTime::from_secs(2), job(3, 8, 30));
        s.run_until(SimTime::from_secs(3));
        // The calendar plans them back to back.
        assert_eq!(s.earliest_start(second), Some(SimTime::from_secs(100)));
        assert_eq!(s.earliest_start(third), Some(SimTime::from_secs(150)));
        let held = s.held_reservations();
        assert_eq!(held.len(), 2);
        // No double-booked cores at any overlap: the two reservations are
        // disjoint in time on the single node.
        assert!(held[0].end <= held[1].start || held[1].end <= held[0].start);
        s.run_to_completion();
        assert_eq!(s.jobs[&second].started, Some(SimTime::from_secs(100)));
        assert_eq!(s.jobs[&third].started, Some(SimTime::from_secs(150)));
    }

    #[test]
    fn conservative_backfill_protects_second_reservation() {
        // EASY protects only the head; conservative backfill must also
        // protect reservation #2. Node A busy to t=100 (head wants it);
        // node B busy to t=50, reservation #2 wants node B at t=50. A
        // 2-core 500 s filler fits node B *now* and would end after t=50:
        // EASY admits it (head's shadow is node A's t=100 — no, shadow
        // would be 50 if head fits B... so head is sized to need A+B).
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            reservations: 4,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0); // A
        s.add_node(8, 64_000, 0); // B
        s.submit_at(SimTime::ZERO, job(1, 8, 100)); // fills A
        s.submit_at(SimTime::ZERO, job(2, 6, 50)); // fills 6/8 of B
                                                   // Head needs 10 cores → both nodes → shadow t=100.
        let head = s.submit_at(SimTime::from_secs(1), job(3, 10, 20));
        // Second-in-line wants a full node at t=50 (B frees first).
        let second = s.submit_at(SimTime::from_secs(2), job(4, 8, 10));
        // Filler: 2 cores, 30 s — fits B's hole now, ends t≈33 < 50: fine.
        let ok_filler = s.submit_at(SimTime::from_secs(3), job(5, 2, 30));
        // Greedy filler: 2 cores, 60 s — fits B's hole now, ends t≈64 > 50:
        // would sit on capacity reserved for `second` at t=50.
        let bad_filler = s.submit_at(SimTime::from_secs(4), job(6, 2, 60));
        s.run_until(SimTime::from_secs(5));
        assert_eq!(s.jobs[&head].state, JobState::Pending);
        assert_eq!(s.jobs[&ok_filler].state, JobState::Running, "harmless");
        assert_eq!(
            s.jobs[&bad_filler].state,
            JobState::Pending,
            "would collide with the second reservation"
        );
        s.run_to_completion();
        // `second` was not delayed past its planned start window.
        assert!(s.jobs[&second].started.unwrap() <= SimTime::from_secs(50));
    }

    #[test]
    fn pam_slurm_query_surface() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 1, 100));
        s.run_until(SimTime::from_secs(1));
        assert!(s.has_running_job_on(Uid(1), NodeId(1)));
        assert!(!s.has_running_job_on(Uid(1), NodeId(2)));
        assert!(!s.has_running_job_on(Uid(2), NodeId(1)));
    }

    #[test]
    fn obs_disabled_by_default_and_enabled_records_phases() {
        // Disabled: a full run records nothing, retains no events.
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_to_completion();
        assert!(!s.obs.rec.enabled());
        assert_eq!(s.obs.rec.counter_value(s.obs.c_starts), 0);
        assert!(s.obs.rec.flight.is_empty());

        // Enabled: the same trace leaves starts/finishes, span entries,
        // and a flight-recorder trail — and the scheduling outcome is
        // identical (observability must not perturb decisions).
        let mut e = sched(NodeSharing::Shared, 2, 8);
        e.enable_obs(eus_obs::ObsConfig::enabled());
        let a = e.submit_at(SimTime::ZERO, job(1, 4, 10));
        let b = e.submit_at(SimTime::ZERO, job(2, 4, 10));
        let end = e.run_to_completion();
        assert_eq!(end, SimTime::from_secs(10));
        assert_eq!(e.jobs[&a].state, JobState::Completed);
        assert_eq!(e.jobs[&b].state, JobState::Completed);
        assert_eq!(e.obs.rec.counter_value(e.obs.c_starts), 2);
        assert_eq!(e.obs.rec.counter_value(e.obs.c_finishes), 2);
        let kinds: Vec<&str> = e.obs.rec.flight.events().iter().map(|ev| ev.kind).collect();
        assert!(kinds.contains(&"job.submit"));
        assert!(kinds.contains(&"job.start"));
        assert!(kinds.contains(&"job.end"));
        let snap = e.obs.snapshot();
        assert!(snap.span("sched.cycle.dispatch").unwrap().count > 0);
        assert!(snap.to_json().contains("sched.jobs.starts"));
    }

    #[test]
    fn obs_counts_backfill_and_shadow_memo() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.enable_obs(eus_obs::ObsConfig::enabled());
        // Head blocks (needs more cores than are free), filler backfills
        // into the one-core hole.
        s.submit_at(SimTime::ZERO, job(1, 7, 100));
        s.submit_at(SimTime::from_secs(1), job(2, 8, 50)); // blocked head
        s.submit_at(SimTime::from_secs(2), job(3, 1, 10)); // backfill candidate
        s.run_until(SimTime::from_secs(3));
        assert!(s.obs.rec.counter_value(s.obs.c_bf_attempts) >= 1);
        assert!(s.obs.rec.counter_value(s.obs.c_bf_accepts) >= 1);
        // The arrival at t=2 re-fires the cycle with node state untouched:
        // both the head-fail and shadow memos must have hit at least once.
        assert!(s.obs.rec.counter_value(s.obs.c_head_memo_hit) >= 1);
        assert!(s.obs.rec.counter_value(s.obs.c_shadow_memo_hit) >= 1);
        assert!(s.obs.shadow_memo_ratio() > 0.0);
    }

    #[test]
    fn earliest_start_beyond_top_k_is_reservation_backed() {
        // One 8-core node; K=1 so only the head gets a standing
        // reservation. Three FIFO jobs, each filling the node for 100 s:
        // the optimistic single-job shadow would answer t=100 for BOTH
        // queued jobs, but the probe plan must charge the head's hold and
        // answer t=200 for the job behind it.
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            reservations: 1,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(SimTime::ZERO, job(1, 8, 100)); // runs now
        let second = s.submit_at(SimTime::ZERO, job(2, 8, 100)); // head (top-K)
        let third = s.submit_at(SimTime::ZERO, job(3, 8, 100)); // beyond top-K
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.earliest_start(second), Some(SimTime::from_secs(100)));
        assert_eq!(
            s.earliest_start(third),
            Some(SimTime::from_secs(200)),
            "beyond-top-K answer must account for the held reservation"
        );
        s.enable_obs(eus_obs::ObsConfig::enabled());
        let _ = s.earliest_start(third);
        assert_eq!(s.obs.rec.counter_value(s.obs.c_cal_probes), 1);
        // The probe held nothing: the calendar still covers only the head.
        assert_eq!(s.held_reservations().len(), 1);
        // And the probe answer is consistent with what actually happens.
        s.run_to_completion();
        assert_eq!(s.jobs[&third].started, Some(SimTime::from_secs(200)));
    }
}
