//! The scheduler engine: FCFS dispatch with EASY backfill over pluggable
//! node-sharing policies, driven by an internal discrete-event clock.
//!
//! The engine is deliberately policy-parameterized so experiment E4 can run
//! the identical workload under `shared` / `exclusive` / `whole-node` and
//! compare utilization, wait, and throughput — the trade-off Sec. IV-B
//! describes qualitatively.

use crate::job::{Job, JobId, JobSpec, JobState, TaskAlloc};
use crate::node::{NodeState, SchedNode};
use crate::partition::{PartitionError, PartitionTable};
use crate::policy::{tasks_that_fit, NodeSharing};
use crate::privatedata::{may_view, JobView, PrivateData};
use eus_simcore::{Counter, Histogram, SimDuration, SimTime, TimeWeighted};
use eus_simos::{Credentials, NodeId, Uid};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Node-sharing policy.
    pub policy: NodeSharing,
    /// Enable EASY backfill.
    pub backfill: bool,
    /// How many queued jobs behind the head backfill may consider.
    pub backfill_depth: usize,
    /// View filtering.
    pub private_data: PrivateData,
    /// How long a crashed node stays down before rejoining.
    pub repair_time: SimDuration,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            policy: NodeSharing::Shared,
            backfill: true,
            backfill_depth: 64,
            private_data: PrivateData::open(),
            repair_time: SimDuration::from_secs(600),
        }
    }
}

/// Internal event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Submit(JobId),
    JobEnd(JobId),
    NodeFail(NodeId),
    NodeRepair(NodeId),
}

/// Work the epilog must do after a job leaves a node; consumed by the
/// cluster layer (GPU scrub, process cleanup, device perms — Sec. IV-F).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpilogEvent {
    /// The job that ended.
    pub job: JobId,
    /// Its owner.
    pub user: Uid,
    /// The node it ran on.
    pub node: NodeId,
    /// GPUs it held on that node (each needs a scrub).
    pub gpus: u32,
    /// When it ended.
    pub at: SimTime,
    /// False once the user holds nothing else on that node — the epilog may
    /// then kill stray processes and revoke device access.
    pub user_still_active_on_node: bool,
}

/// A node-failure record for blast-radius accounting (experiment E5).
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// The node that went down.
    pub node: NodeId,
    /// When.
    pub at: SimTime,
    /// Jobs killed, with their owners.
    pub failed_jobs: Vec<(JobId, Uid)>,
}

impl FailureRecord {
    /// Distinct users whose jobs died — the paper's "blast radius".
    pub fn affected_users(&self) -> BTreeSet<Uid> {
        self.failed_jobs.iter().map(|(_, u)| *u).collect()
    }
}

/// Aggregate scheduler measurements.
#[derive(Debug, Clone)]
pub struct SchedMetrics {
    /// Cores *claimed* by allocations, integrated over time (an exclusive
    /// job claims whole nodes).
    pub busy_cores: TimeWeighted,
    /// Cores actually *used* by tasks (tasks × cpus-per-task), integrated
    /// over time — the quantity behind the paper's "poor utilization" claim
    /// for exclusive allocation.
    pub used_cores: TimeWeighted,
    /// Queue-wait times, in seconds.
    pub wait_times: Histogram,
    /// Jobs completed normally.
    pub completed: Counter,
    /// Jobs killed by failures.
    pub failed: Counter,
    /// Jobs killed at their wall-time limit.
    pub timed_out: Counter,
}

/// The scheduler.
#[derive(Debug)]
pub struct Scheduler {
    /// Configuration (immutable per run for clean experiments).
    pub config: SchedConfig,
    /// Compute nodes.
    pub nodes: BTreeMap<NodeId, SchedNode>,
    /// Every job ever submitted.
    pub jobs: BTreeMap<JobId, Job>,
    queue: Vec<JobId>,
    events: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    next_job: u64,
    next_node: u32,
    seq: u64,
    now: SimTime,
    /// Metrics.
    pub metrics: SchedMetrics,
    epilogs: Vec<EpilogEvent>,
    /// Node-failure history.
    pub failures: Vec<FailureRecord>,
    /// Partition table (empty = partitioning disabled, all nodes eligible).
    pub partitions: PartitionTable,
    admins: BTreeSet<Uid>,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new(config: SchedConfig) -> Self {
        Scheduler {
            config,
            nodes: BTreeMap::new(),
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            events: BinaryHeap::new(),
            next_job: 1,
            next_node: 1,
            seq: 0,
            now: SimTime::ZERO,
            metrics: SchedMetrics {
                busy_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                used_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                wait_times: Histogram::new(),
                completed: Counter::new(),
                failed: Counter::new(),
                timed_out: Counter::new(),
            },
            epilogs: Vec::new(),
            failures: Vec::new(),
            partitions: PartitionTable::new(),
            admins: BTreeSet::new(),
        }
    }

    /// Add a node with auto-assigned id.
    pub fn add_node(&mut self, cores: u32, mem_mib: u64, gpus: u32) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes
            .insert(id, SchedNode::new(id, cores, mem_mib, gpus));
        id
    }

    /// Register an operator/coordinator exempt from PrivateData filtering.
    pub fn add_admin(&mut self, uid: Uid) {
        self.admins.insert(uid);
    }

    /// Is this uid a registered operator?
    pub fn is_admin(&self, uid: Uid) -> bool {
        self.admins.contains(&uid)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sum of all Up nodes' cores.
    pub fn total_cores(&self) -> u64 {
        self.nodes.values().map(|n| n.cores as u64).sum()
    }

    /// Claimed-core utilization over `[0, now]`: allocated core-seconds /
    /// capacity. Exclusive jobs inflate this (they claim whole nodes).
    pub fn utilization(&self) -> f64 {
        let cap = self.total_cores() as f64 * self.now.since(SimTime::ZERO).as_secs_f64();
        if cap <= 0.0 {
            return 0.0;
        }
        self.metrics.busy_cores.integral(self.now) / cap
    }

    /// Effective utilization over `[0, now]`: core-seconds actually used by
    /// tasks / capacity. This is the number that collapses under per-job
    /// exclusive allocation with many small jobs (Sec. IV-B).
    pub fn effective_utilization(&self) -> f64 {
        let cap = self.total_cores() as f64 * self.now.since(SimTime::ZERO).as_secs_f64();
        if cap <= 0.0 {
            return 0.0;
        }
        self.metrics.used_cores.integral(self.now) / cap
    }

    /// Number of jobs waiting in queue.
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    /// Number of running jobs.
    pub fn running_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count()
    }

    fn push_event(&mut self, at: SimTime, ev: Ev) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse((at, seq, ev)));
    }

    /// Submit a job to arrive at `at` (clamped to now). Jobs naming an
    /// unknown partition are rejected at submission (state `Cancelled`),
    /// mirroring Slurm's submit-time validation.
    pub fn submit_at(&mut self, at: SimTime, spec: JobSpec) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let valid_partition: Result<_, PartitionError> =
            self.partitions.eligible_nodes(spec.partition.as_deref());
        let rejected = valid_partition.is_err();
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: if rejected {
                    JobState::Cancelled
                } else {
                    JobState::Pending
                },
                submitted: at.max(self.now),
                started: None,
                ended: None,
                allocations: BTreeMap::new(),
            },
        );
        if rejected {
            self.jobs.get_mut(&id).expect("just inserted").ended = Some(at.max(self.now));
        } else {
            self.push_event(at, Ev::Submit(id));
        }
        id
    }

    /// Submit arriving now.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        self.submit_at(self.now, spec)
    }

    /// Cancel a pending job (running jobs run to completion, as `scancel`
    /// would need the full kill path we don't model).
    pub fn cancel(&mut self, id: JobId) -> bool {
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        if job.state != JobState::Pending {
            return false;
        }
        job.state = JobState::Cancelled;
        job.ended = Some(self.now);
        self.queue.retain(|j| *j != id);
        true
    }

    /// Inject a node crash at `at` (the OOM-takes-down-the-node scenario of
    /// Sec. IV-B). The node repairs after `config.repair_time`.
    pub fn schedule_node_failure(&mut self, at: SimTime, node: NodeId) {
        self.push_event(at, Ev::NodeFail(node));
    }

    /// Drain accumulated epilog work (cluster layer consumes).
    pub fn drain_epilogs(&mut self) -> Vec<EpilogEvent> {
        std::mem::take(&mut self.epilogs)
    }

    /// Does `user` have a running job with an allocation on `node`? (The
    /// `pam_slurm` question.)
    pub fn has_running_job_on(&self, user: Uid, node: NodeId) -> bool {
        self.jobs.values().any(|j| {
            j.state == JobState::Running && j.spec.user == user && j.allocations.contains_key(&node)
        })
    }

    /// `squeue` as seen by `viewer` under the PrivateData configuration.
    pub fn squeue(&self, viewer: &Credentials) -> Vec<JobView> {
        let admin = self.is_admin(viewer.uid);
        self.jobs
            .values()
            .filter(|j| !j.state.is_terminal())
            .filter(|j| may_view(viewer, j.spec.user, self.config.private_data.jobs, admin))
            .map(|j| JobView {
                id: j.id,
                user: j.spec.user,
                name: j.spec.name.clone(),
                cmdline: j.spec.cmdline.clone(),
                state: j.state,
                nodes: j.allocations.keys().copied().collect(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Fire events up to and including `horizon`; the clock lands on
    /// `horizon` afterwards.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(Reverse((t, _, _))) = self.events.peek() {
            if *t > horizon {
                break;
            }
            let Reverse((t, _, ev)) = self.events.pop().expect("peeked");
            self.now = t;
            self.fire(ev);
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    /// Run until no events remain (all submitted work finished). Returns the
    /// final clock (the makespan end).
    pub fn run_to_completion(&mut self) -> SimTime {
        while let Some(Reverse((t, _, ev))) = self.events.pop() {
            self.now = t;
            self.fire(ev);
        }
        self.now
    }

    fn fire(&mut self, ev: Ev) {
        match ev {
            Ev::Submit(j) => {
                if self.jobs[&j].state == JobState::Pending {
                    self.queue.push(j);
                    self.try_schedule();
                }
            }
            Ev::JobEnd(j) => {
                if self.jobs[&j].state == JobState::Running {
                    // Did the job end on its own, or did slurmstepd kill it
                    // at the wall-time limit?
                    let spec = &self.jobs[&j].spec;
                    let outcome = if spec.time_limit < spec.duration {
                        JobState::Timeout
                    } else {
                        JobState::Completed
                    };
                    self.finish_job(j, outcome);
                    self.try_schedule();
                }
            }
            Ev::NodeFail(n) => {
                self.fail_node(n);
                self.try_schedule();
            }
            Ev::NodeRepair(n) => {
                if let Some(node) = self.nodes.get_mut(&n) {
                    if node.state == NodeState::Down {
                        node.state = NodeState::Up;
                    }
                }
                self.try_schedule();
            }
        }
    }

    fn fail_node(&mut self, n: NodeId) {
        let Some(node) = self.nodes.get_mut(&n) else {
            return;
        };
        if node.state != NodeState::Up {
            return;
        }
        node.state = NodeState::Down;
        let victims: Vec<JobId> = node.running.keys().copied().collect();
        let mut record = FailureRecord {
            node: n,
            at: self.now,
            failed_jobs: Vec::new(),
        };
        for j in victims {
            let user = self.jobs[&j].spec.user;
            record.failed_jobs.push((j, user));
            self.finish_job(j, JobState::Failed);
        }
        self.failures.push(record);
        self.push_event(self.now + self.config.repair_time, Ev::NodeRepair(n));
    }

    fn finish_job(&mut self, id: JobId, state: JobState) {
        let job = self.jobs.get_mut(&id).expect("known job");
        debug_assert_eq!(job.state, JobState::Running);
        job.state = state;
        job.ended = Some(self.now);
        let user = job.spec.user;
        let allocations: Vec<(NodeId, TaskAlloc)> =
            job.allocations.iter().map(|(n, a)| (*n, *a)).collect();
        let cpus_per_task = job.spec.cpus_per_task;
        let mut released_cores = 0u32;
        let mut released_used = 0u32;
        for (nid, alloc) in &allocations {
            if let Some(node) = self.nodes.get_mut(nid) {
                node.release(id);
                released_cores += alloc.cores;
                released_used += alloc.tasks * cpus_per_task;
            }
        }
        self.metrics
            .busy_cores
            .add(self.now, -(released_cores as f64));
        self.metrics
            .used_cores
            .add(self.now, -(released_used as f64));
        match state {
            JobState::Completed => self.metrics.completed.incr(),
            JobState::Failed => self.metrics.failed.incr(),
            JobState::Timeout => self.metrics.timed_out.incr(),
            _ => {}
        }
        // Epilog per node, with the "is the user gone from this node" bit.
        for (nid, alloc) in &allocations {
            let still_active = self.has_running_job_on(user, *nid);
            self.epilogs.push(EpilogEvent {
                job: id,
                user,
                node: *nid,
                gpus: alloc.gpus,
                at: self.now,
                user_still_active_on_node: still_active,
            });
        }
    }

    fn start_job(&mut self, id: JobId, placement: Vec<(NodeId, TaskAlloc)>) {
        let now = self.now;
        let (user, duration, submitted, cpus_per_task) = {
            let job = &self.jobs[&id];
            (
                job.spec.user,
                job.spec.duration,
                job.submitted,
                job.spec.cpus_per_task,
            )
        };
        let mut total_cores = 0u32;
        let mut used_cores = 0u32;
        for (nid, alloc) in &placement {
            self.nodes
                .get_mut(nid)
                .expect("placement on known node")
                .claim(id, *alloc, user);
            total_cores += alloc.cores;
            used_cores += alloc.tasks * cpus_per_task;
        }
        {
            let job = self.jobs.get_mut(&id).expect("known job");
            job.state = JobState::Running;
            job.started = Some(now);
            job.allocations = placement.into_iter().collect();
        }
        self.metrics.busy_cores.add(now, total_cores as f64);
        self.metrics.used_cores.add(now, used_cores as f64);
        self.metrics
            .wait_times
            .record(now.since(submitted).as_secs_f64());
        // The step daemon enforces the requested wall-time limit.
        let runtime = duration.min(self.jobs[&id].spec.time_limit);
        self.push_event(now + runtime, Ev::JobEnd(id));
    }

    /// Try to place `spec` on a node map (free function over a map so the
    /// backfill shadow simulation can reuse it on a cloned map).
    fn placement_on(
        nodes: &BTreeMap<NodeId, SchedNode>,
        policy: NodeSharing,
        spec: &JobSpec,
        eligible: Option<&BTreeSet<NodeId>>,
    ) -> Option<Vec<(NodeId, TaskAlloc)>> {
        let user = spec.user;
        // Preference: nodes already owned by this user first (packing), then
        // emptier nodes; id as the deterministic tiebreak.
        let mut candidates: Vec<&SchedNode> = nodes
            .values()
            .filter(|n| eligible.is_none_or(|set| set.contains(&n.id)))
            .filter(|n| policy.node_admits(n, user, spec))
            .collect();
        candidates.sort_by_key(|n| {
            let owned = match n.owner() {
                Some(o) if o == user => 0u8,
                _ => 1u8,
            };
            (owned, n.id)
        });

        let mut remaining = spec.tasks;
        let mut placement = Vec::new();
        for node in candidates {
            if remaining == 0 {
                break;
            }
            let fit = tasks_that_fit(node, spec).min(remaining);
            if fit == 0 {
                continue;
            }
            let alloc = if policy.charges_whole_node(spec) {
                // Exclusive: the job takes the whole node.
                TaskAlloc {
                    tasks: fit,
                    cores: node.cores,
                    mem_mib: node.mem_mib,
                    gpus: node.gpus,
                }
            } else {
                TaskAlloc {
                    tasks: fit,
                    cores: fit * spec.cpus_per_task,
                    mem_mib: fit as u64 * spec.mem_per_task_mib,
                    gpus: fit * spec.gpus_per_task,
                }
            };
            placement.push((node.id, alloc));
            remaining -= fit;
        }
        if remaining == 0 {
            Some(placement)
        } else {
            None
        }
    }

    /// Earliest time the head job could start, assuming running jobs end on
    /// schedule (the EASY shadow time).
    fn shadow_time_for(&self, head: &JobSpec) -> SimTime {
        let mut sim_nodes = self.nodes.clone();
        let eligible = self
            .partitions
            .eligible_nodes(head.partition.as_deref())
            .expect("validated at submit")
            .cloned();
        if Self::placement_on(&sim_nodes, self.config.policy, head, eligible.as_ref()).is_some() {
            return self.now;
        }
        // Release running jobs in end-time order.
        let mut ends: Vec<(SimTime, JobId)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| {
                (
                    j.started.expect("running has start") + j.spec.duration,
                    j.id,
                )
            })
            .collect();
        ends.sort();
        for (end_t, jid) in ends {
            let allocs: Vec<NodeId> = self.jobs[&jid].allocations.keys().copied().collect();
            for nid in allocs {
                if let Some(n) = sim_nodes.get_mut(&nid) {
                    n.release(jid);
                }
            }
            if Self::placement_on(&sim_nodes, self.config.policy, head, eligible.as_ref()).is_some()
            {
                return end_t;
            }
        }
        SimTime::MAX
    }

    fn try_schedule(&mut self) {
        loop {
            let Some(&head) = self.queue.first() else {
                return;
            };
            let head_spec = self.jobs[&head].spec.clone();
            let head_eligible = self
                .partitions
                .eligible_nodes(head_spec.partition.as_deref())
                .expect("validated at submit")
                .cloned();
            if let Some(p) = Self::placement_on(
                &self.nodes,
                self.config.policy,
                &head_spec,
                head_eligible.as_ref(),
            ) {
                self.queue.remove(0);
                self.start_job(head, p);
                continue;
            }
            if !self.config.backfill {
                return;
            }
            // EASY backfill: start later jobs only if they cannot delay the
            // head job's shadow start.
            let shadow = self.shadow_time_for(&head_spec);
            let mut idx = 1;
            let mut scanned = 0;
            while idx < self.queue.len() && scanned < self.config.backfill_depth {
                scanned += 1;
                let cand = self.queue[idx];
                let spec = self.jobs[&cand].spec.clone();
                let fits_before_shadow =
                    shadow == SimTime::MAX || self.now + spec.time_limit <= shadow;
                if fits_before_shadow {
                    let cand_eligible = self
                        .partitions
                        .eligible_nodes(spec.partition.as_deref())
                        .expect("validated at submit")
                        .cloned();
                    if let Some(p) = Self::placement_on(
                        &self.nodes,
                        self.config.policy,
                        &spec,
                        cand_eligible.as_ref(),
                    ) {
                        self.queue.remove(idx);
                        self.start_job(cand, p);
                        continue; // same idx now holds the next candidate
                    }
                }
                idx += 1;
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(policy: NodeSharing, nodes: u32, cores: u32) -> Scheduler {
        let mut s = Scheduler::new(SchedConfig {
            policy,
            ..SchedConfig::default()
        });
        for _ in 0..nodes {
            s.add_node(cores, 64_000, 0);
        }
        s
    }

    fn job(user: u32, tasks: u32, secs: u64) -> JobSpec {
        JobSpec::new(
            Uid(user),
            format!("u{user}-job"),
            SimDuration::from_secs(secs),
        )
        .with_tasks(tasks)
        .with_mem_per_task(100)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        let id = s.submit_at(SimTime::from_secs(1), job(1, 4, 10));
        let end = s.run_to_completion();
        assert_eq!(end, SimTime::from_secs(11));
        let j = &s.jobs[&id];
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.started, Some(SimTime::from_secs(1)));
        assert_eq!(s.metrics.completed.get(), 1);
        assert!(s.nodes.values().all(|n| n.is_idle()));
    }

    #[test]
    fn shared_packs_two_users_on_one_node() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 2, "both fit simultaneously");
    }

    #[test]
    fn whole_node_serializes_different_users_on_one_node() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 4, 10));
        let b = s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 1, "second user must wait");
        let end = s.run_to_completion();
        assert_eq!(end, SimTime::from_secs(20));
        assert_eq!(s.jobs[&a].state, JobState::Completed);
        assert_eq!(s.jobs[&b].started, Some(SimTime::from_secs(10)));
    }

    #[test]
    fn whole_node_packs_same_user() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 2, "same user's jobs co-schedule");
    }

    #[test]
    fn exclusive_charges_whole_node() {
        let mut s = sched(NodeSharing::Exclusive, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.run_until(SimTime::from_secs(1));
        // Two nodes → two exclusive jobs; the third waits even though cores
        // are plentiful.
        assert_eq!(s.running_count(), 2);
        assert_eq!(s.pending_count(), 1);
        // Utilization is charged for the whole node.
        assert_eq!(s.metrics.busy_cores.current(), 16.0);
    }

    #[test]
    fn multi_node_job_spreads() {
        let mut s = sched(NodeSharing::Shared, 3, 4);
        let id = s.submit_at(SimTime::ZERO, job(1, 10, 5));
        s.run_until(SimTime::from_secs(1));
        let j = &s.jobs[&id];
        assert_eq!(j.state, JobState::Running);
        assert_eq!(j.allocations.len(), 3);
        let tasks: u32 = j.allocations.values().map(|a| a.tasks).sum();
        assert_eq!(tasks, 10);
    }

    #[test]
    fn job_too_big_never_starts() {
        let mut s = sched(NodeSharing::Shared, 1, 4);
        let id = s.submit_at(SimTime::ZERO, job(1, 100, 5));
        s.run_until(SimTime::from_secs(100));
        assert_eq!(s.jobs[&id].state, JobState::Pending);
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn backfill_fills_hole_without_delaying_head() {
        // 8-core node. Long job takes 8 cores for 100s. Head job (8 cores)
        // must wait for it. A small 2-core/5s job CANNOT backfill in shared
        // mode on a full node — so use two nodes: one busy 100s, one with 4
        // free cores; head needs 8 on one node... Simplify: node A busy
        // until t=100; head wants 8 cores (only node A can ever give 8? both
        // are 8-core). Node B is free: head starts immediately on B. So to
        // force waiting: occupy B with a 50s 8-core job. Then head(8c)
        // shadow = 50 (B frees first). A 5s small job fits on... nothing.
        // Simplest deterministic check: backfill starts a short job while
        // head waits, and head still starts at its shadow time.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 8, 100)); // fills the node
        let head = s.submit_at(SimTime::from_secs(1), job(2, 8, 50)); // must wait to t=100
        let small = s.submit_at(SimTime::from_secs(2), job(3, 8, 99).with_cpus_per_task(0)); // zero? no — guard makes it 1.
                                                                                             // small: 8 tasks × 1 core … that also needs the whole node; replace:
        s.cancel(small);
        let tiny = s.submit_at(SimTime::from_secs(2), job(3, 2, 10));
        // tiny needs 2 cores; node is full, so it can't start now either.
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.running_count(), 1);
        // At t=100 the big job ends: head starts; tiny backfills... next to
        // head? head takes all 8 cores, so tiny waits for head.
        let _ = head;
        s.run_to_completion();
        assert_eq!(s.jobs[&head].started, Some(SimTime::from_secs(100)));
        assert_eq!(s.jobs[&tiny].started, Some(SimTime::from_secs(150)));
    }

    #[test]
    fn backfill_true_hole_filling() {
        // Node of 8 cores: job A (6 cores, 100s) leaves a 2-core hole.
        // Head job B needs 8 cores → shadow = 100. Candidate C (2 cores,
        // 50s) fits the hole and ends at ~52 < 100 → backfills.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 6, 100));
        let b = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        let c = s.submit_at(SimTime::from_secs(2), job(3, 2, 50));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.jobs[&a].state, JobState::Running);
        assert_eq!(s.jobs[&b].state, JobState::Pending, "head waits");
        assert_eq!(s.jobs[&c].state, JobState::Running, "C backfilled");
        s.run_to_completion();
        assert_eq!(
            s.jobs[&b].started,
            Some(SimTime::from_secs(100)),
            "head not delayed by backfill"
        );
    }

    #[test]
    fn backfill_refuses_delaying_candidates() {
        // Same setup but C runs 200s > shadow → must NOT backfill.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 6, 100));
        let b = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        let c = s.submit_at(SimTime::from_secs(2), job(3, 2, 200));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.jobs[&c].state, JobState::Pending, "would delay head");
        s.run_to_completion();
        assert_eq!(s.jobs[&b].started, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn node_failure_kills_jobs_and_repairs() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        let bjob = s.submit_at(SimTime::ZERO, job(2, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        // Both jobs were packed onto node 1 (first fit) in shared mode.
        assert_eq!(s.jobs[&a].state, JobState::Failed);
        assert_eq!(s.jobs[&bjob].state, JobState::Failed);
        assert_eq!(s.failures.len(), 1);
        assert_eq!(s.failures[0].affected_users().len(), 2, "blast radius 2");
        assert_eq!(s.metrics.failed.get(), 2);
        // Node repairs after repair_time (600s default).
        s.run_until(SimTime::from_secs(700));
        assert_eq!(s.nodes[&NodeId(1)].state, NodeState::Up);
    }

    #[test]
    fn whole_node_failure_blast_radius_is_one_user() {
        let mut s = sched(NodeSharing::WholeNodeUser, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        s.submit_at(SimTime::ZERO, job(2, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        assert_eq!(
            s.failures[0].affected_users().len(),
            1,
            "only node 1's owner"
        );
    }

    #[test]
    fn epilogs_emitted_with_user_departure_flag() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 2, 10));
        s.submit_at(SimTime::ZERO, job(1, 2, 20));
        s.run_to_completion();
        let epilogs = s.drain_epilogs();
        assert_eq!(epilogs.len(), 2);
        // First job ends at t=10 while the second still runs.
        assert!(epilogs[0].user_still_active_on_node);
        // Second ending leaves the node empty of that user.
        assert!(!epilogs[1].user_still_active_on_node);
        assert!(s.drain_epilogs().is_empty(), "drain empties");
    }

    #[test]
    fn squeue_respects_private_data() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.config.private_data = PrivateData::llsc();
        s.add_admin(Uid(50));
        s.submit_at(SimTime::ZERO, job(1, 1, 100));
        s.submit_at(SimTime::ZERO, job(2, 1, 100));
        s.run_until(SimTime::from_secs(1));

        let u1 = Credentials::new(Uid(1), eus_simos::Gid(1));
        let views = s.squeue(&u1);
        assert_eq!(views.len(), 1, "only own jobs");
        assert_eq!(views[0].user, Uid(1));

        let admin = Credentials::new(Uid(50), eus_simos::Gid(50));
        assert_eq!(s.squeue(&admin).len(), 2, "admins see all");
        assert_eq!(s.squeue(&Credentials::root()).len(), 2);

        s.config.private_data = PrivateData::open();
        assert_eq!(s.squeue(&u1).len(), 2, "open config shows all");
    }

    #[test]
    fn cancel_only_pending() {
        let mut s = sched(NodeSharing::Shared, 1, 2);
        let a = s.submit_at(SimTime::ZERO, job(1, 2, 100));
        let b = s.submit_at(SimTime::ZERO, job(2, 2, 100));
        s.run_until(SimTime::from_secs(1));
        assert!(!s.cancel(a), "running job not cancellable here");
        assert!(s.cancel(b));
        assert_eq!(s.jobs[&b].state, JobState::Cancelled);
        assert!(!s.cancel(b), "idempotent");
    }

    #[test]
    fn utilization_math() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 8, 50));
        s.run_until(SimTime::from_secs(100));
        // 8 cores × 50 s busy out of 8 × 100 capacity = 0.5.
        assert!((s.utilization() - 0.5).abs() < 1e-9, "{}", s.utilization());
    }

    #[test]
    fn wall_time_limit_enforced() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        // Actual runtime 100s, requested limit 30s: killed at 30.
        let j = s.submit_at(
            SimTime::ZERO,
            job(1, 2, 100).with_time_limit(SimDuration::from_secs(30)),
        );
        // A well-behaved job for contrast.
        let ok = s.submit_at(SimTime::ZERO, job(2, 2, 20));
        s.run_to_completion();
        assert_eq!(s.jobs[&j].state, JobState::Timeout);
        assert_eq!(s.jobs[&j].ended, Some(SimTime::from_secs(30)));
        assert_eq!(s.jobs[&ok].state, JobState::Completed);
        assert_eq!(s.metrics.timed_out.get(), 1);
        assert_eq!(s.metrics.completed.get(), 1);
        // Resources released at the limit, not the would-be duration.
        assert!(s.nodes.values().all(|n| n.is_idle()));
    }

    #[test]
    fn partition_confines_placement() {
        let mut s = sched(NodeSharing::Shared, 4, 8);
        s.partitions
            .add("batch", [NodeId(1), NodeId(2)], true)
            .unwrap();
        s.partitions.add("debug", [NodeId(3)], false).unwrap();
        // Default-partition job lands on nodes 1-2 only, even when 3-4 idle.
        let a = s.submit_at(SimTime::ZERO, job(1, 16, 10)); // needs 2 nodes
                                                            // Debug job lands on node 3.
        let d = s.submit_at(SimTime::ZERO, job(2, 2, 10).with_partition("debug"));
        s.run_until(SimTime::from_secs(1));
        let a_nodes: Vec<NodeId> = s.jobs[&a].allocations.keys().copied().collect();
        assert_eq!(a_nodes, vec![NodeId(1), NodeId(2)]);
        let d_nodes: Vec<NodeId> = s.jobs[&d].allocations.keys().copied().collect();
        assert_eq!(d_nodes, vec![NodeId(3)]);
        // Node 4 belongs to no partition: never used.
        assert!(s.nodes[&NodeId(4)].is_idle());
    }

    #[test]
    fn partition_queues_when_full_despite_free_foreign_nodes() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.partitions.add("small", [NodeId(1)], true).unwrap();
        s.submit_at(SimTime::ZERO, job(1, 8, 100));
        let waiting = s.submit_at(SimTime::ZERO, job(2, 8, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(
            s.jobs[&waiting].state,
            JobState::Pending,
            "node 2 is off-limits"
        );
        s.run_to_completion();
        assert_eq!(s.jobs[&waiting].started, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn unknown_partition_rejected_at_submit() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.partitions.add("batch", [NodeId(1)], true).unwrap();
        let id = s.submit_at(SimTime::ZERO, job(1, 1, 10).with_partition("nope"));
        assert_eq!(s.jobs[&id].state, JobState::Cancelled);
        s.run_to_completion();
        assert_eq!(s.jobs[&id].state, JobState::Cancelled);
        assert_eq!(s.metrics.completed.get(), 0);
    }

    #[test]
    fn pam_slurm_query_surface() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 1, 100));
        s.run_until(SimTime::from_secs(1));
        assert!(s.has_running_job_on(Uid(1), NodeId(1)));
        assert!(!s.has_running_job_on(Uid(1), NodeId(2)));
        assert!(!s.has_running_job_on(Uid(2), NodeId(1)));
    }
}
