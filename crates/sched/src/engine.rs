//! The scheduler engine: FCFS dispatch with EASY backfill over pluggable
//! node-sharing policies, driven by an internal discrete-event clock.
//!
//! The engine is deliberately policy-parameterized so experiment E4 can run
//! the identical workload under `shared` / `exclusive` / `whole-node` and
//! compare utilization, wait, and throughput — the trade-off Sec. IV-B
//! describes qualitatively.
//!
//! # Scheduler internals (the hot path)
//!
//! At 10k-node scale the naive cycle — collect-and-sort every node per
//! placement attempt, clone the whole node map per EASY shadow computation,
//! shift a `Vec` queue — is quadratic-ish in cluster size and queue depth.
//! This engine instead maintains **incremental indexes**, updated on every
//! claim/release, so a scheduling cycle touches only viable state:
//!
//! * **Placement index** — three id-ordered sets replace the per-attempt
//!   scan: `owned_nodes` (per-user sets of nodes the user solely owns, the
//!   packing-affinity prefix of the old sort), `idle_nodes` (no running
//!   jobs — the only admissible "other" nodes under `Exclusive`,
//!   `WholeNodeUser`, and per-job `--exclusive`), and `avail_nodes` (Up with
//!   free cores — the admissible "other" nodes under `Shared`). A placement
//!   attempt walks the user's owned nodes first and then the relevant set,
//!   reproducing the old `(owned, id)` candidate order exactly without
//!   materializing or sorting a candidate list.
//! * **Capacity-vector shadow** — the EASY shadow time replays running-job
//!   releases in end-time order over a flat `Vec` of per-node free-capacity
//!   counters (cores/mem/gpus + job count + sole owner), maintaining the
//!   total task-fit sum incrementally and early-exiting the moment the head
//!   job fits. No `SchedNode` clones; the two scratch vectors are reused
//!   across cycles.
//! * **Order-indexed queue** — the pending queue is a
//!   `BTreeMap<enqueue-seq, JobId>` (+ reverse map for `cancel`), so head
//!   dispatch and mid-queue backfill removals are O(log q) instead of
//!   `Vec::remove` shifts, while preserving FIFO order and the EASY scan
//!   order bit-for-bit.
//! * **Shared specs** — `Job::spec` is `Arc<JobSpec>`, so scheduling cycles
//!   and `squeue` views share the spec instead of deep-cloning cmdline/name
//!   strings, and partition eligible-sets are borrowed rather than cloned
//!   per cycle.
//!
//! The pre-overhaul implementation is retained verbatim in
//! [`crate::reference`]; `tests/sched_equivalence.rs` proves the two
//! observationally identical over random traces × policies, and
//! `benches/sched_throughput.rs` + `exp_sched_scale` keep the speedup
//! measured. One invariant to keep in mind: `config.policy` must not change
//! mid-run (the index assumes placement decisions were made under the same
//! policy — `SchedConfig` is documented immutable per run).
//!
//! # The policy plane
//!
//! Three opt-in knobs layer scheduling *policy* over the hot path above.
//! All default **off**; with every knob off the engine takes the exact
//! pre-policy code path and stays observationally identical to
//! [`crate::reference::ReferenceScheduler`] (still property-checked by
//! `tests/sched_equivalence.rs`).
//!
//! * **`fair_share`** — the queue splits into per-partition queues (keyed
//!   by [`crate::partition::PartitionTable::resolve`]d name), each
//!   selecting its head by the owner's *decayed usage* in that partition
//!   ([`crate::accounting::FairShareLedger`], charged on every completion
//!   and preemption) with FIFO tie-break. Every partition gets its own
//!   head + shadow + backfill pass per cycle, so one partition's backlog
//!   no longer head-of-line-blocks another partition's dispatch or
//!   backfill budget.
//! * **`preemption`** — jobs carry a [`crate::job::QosClass`]; when a
//!   latency-sensitive head cannot place, the engine kills-and-requeues
//!   the cheapest set of strictly-lower-class victims (cost = remaining
//!   core-seconds) whose release provably frees enough capacity (the same
//!   per-node fit-sum argument the shadow uses). Victims leave through the
//!   **full separation epilog** — the scrub/cleanup events fire before the
//!   preemptor's allocation, so the paper's guarantees survive urgency —
//!   and re-enter the queue with a bumped run epoch (stale end events are
//!   ignored).
//! * **`reservations = K`** — the EASY shadow generalizes into a
//!   [`crate::calendar::ReservationCalendar`]: the top-K queued jobs get
//!   planned starts with concrete capacity holds, `earliest_start`
//!   becomes answerable for them, and backfill turns *conservative* (a
//!   candidate must not collide with any held reservation, not just the
//!   head's shadow).
//!
//! The policy plane honors the PR-4 machinery: placement attempts walk the
//! same incremental candidate index, shadows and calendars build from the
//! same capacity mirrors (including the per-partition mirrors that give
//! partitioned builds the flat-copy path), and per-class head/shadow memos
//! skip recomputation on arrival floods. Like `policy`, the plane's knobs
//! and the partition table are immutable once jobs are queued.

use crate::accounting::FairShareLedger;
use crate::calendar::{CapDelta, Reservation, ReservationCalendar};
use crate::job::{Job, JobId, JobSpec, JobState, TaskAlloc};
use crate::node::{NodeState, SchedNode};
use crate::obs::SchedObs;
use crate::partition::{PartitionError, PartitionTable};
use crate::policy::{tasks_that_fit, NodeSharing};
use crate::privatedata::{may_view, JobView, PrivateData};
use eus_obs::TraceCtx;
use eus_simcore::{Counter, Histogram, SimDuration, SimTime, TimeWeighted};
use eus_simos::{Credentials, NodeId, Uid};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::ops::Bound;
use std::sync::Arc;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Node-sharing policy. Must not change once jobs have run — the
    /// placement index assumes all standing allocations were admitted under
    /// this policy.
    pub policy: NodeSharing,
    /// Enable EASY backfill.
    pub backfill: bool,
    /// How many queued jobs behind the head backfill may consider.
    pub backfill_depth: usize,
    /// View filtering.
    pub private_data: PrivateData,
    /// How long a crashed node stays down before rejoining.
    pub repair_time: SimDuration,
    /// Policy plane: multi-partition fair-share head selection over the
    /// decayed usage ledger. Off = strict FIFO order (the reference
    /// behavior).
    pub fair_share: bool,
    /// Half-life of the fair-share usage decay (ignored unless
    /// `fair_share`).
    pub fair_share_half_life: SimDuration,
    /// Policy plane: QoS preemption — latency-sensitive heads may
    /// kill-and-requeue strictly-lower-class running jobs. Off = QoS
    /// classes carried but ignored.
    pub preemption: bool,
    /// Policy plane: conservative-backfill reservation depth. `K > 0`
    /// plans starts for the top-K queued jobs per class and forbids
    /// backfill from colliding with any of them; `0` = plain EASY (head
    /// shadow only).
    pub reservations: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            policy: NodeSharing::Shared,
            backfill: true,
            backfill_depth: 64,
            private_data: PrivateData::open(),
            repair_time: SimDuration::from_secs(600),
            fair_share: false,
            fair_share_half_life: crate::accounting::FAIR_SHARE_HALF_LIFE,
            preemption: false,
            reservations: 0,
        }
    }
}

impl SchedConfig {
    /// Is any policy-plane knob on? Off ⇒ the engine runs the exact
    /// pre-policy code path (reference-identical).
    pub fn policy_plane_active(&self) -> bool {
        self.fair_share || self.preemption || self.reservations > 0
    }
}

/// Internal event kinds. `JobEnd` carries the run epoch it was scheduled
/// for: a preempted-and-requeued job bumps its epoch, so the stale end
/// event from the killed run is ignored when it eventually fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Submit(JobId),
    JobEnd(JobId, u32),
    NodeFail(NodeId),
    NodeRepair(NodeId),
}

/// Work the epilog must do after a job leaves a node; consumed by the
/// cluster layer (GPU scrub, process cleanup, device perms — Sec. IV-F).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpilogEvent {
    /// The job that ended.
    pub job: JobId,
    /// Its owner.
    pub user: Uid,
    /// The node it ran on.
    pub node: NodeId,
    /// GPUs it held on that node (each needs a scrub).
    pub gpus: u32,
    /// When it ended.
    pub at: SimTime,
    /// False once the user holds nothing else on that node — the epilog may
    /// then kill stray processes and revoke device access.
    pub user_still_active_on_node: bool,
}

/// One preemption: who was displaced, by whom, when, and where. The
/// victim's separation epilogs (node scrub, process cleanup) are emitted at
/// `at`, *before* the preemptor's allocation lands on the same nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreemptionRecord {
    /// The displaced (killed-and-requeued) job.
    pub victim: JobId,
    /// Its owner.
    pub victim_user: Uid,
    /// The latency-sensitive job that displaced it.
    pub preempted_by: JobId,
    /// When.
    pub at: SimTime,
    /// Nodes the victim held (each received an epilog).
    pub nodes: Vec<NodeId>,
}

/// A node-failure record for blast-radius accounting (experiment E5).
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// The node that went down.
    pub node: NodeId,
    /// When.
    pub at: SimTime,
    /// Jobs killed, with their owners.
    pub failed_jobs: Vec<(JobId, Uid)>,
}

impl FailureRecord {
    /// Distinct users whose jobs died — the paper's "blast radius".
    pub fn affected_users(&self) -> BTreeSet<Uid> {
        self.failed_jobs.iter().map(|(_, u)| *u).collect()
    }
}

/// Aggregate scheduler measurements.
#[derive(Debug, Clone)]
pub struct SchedMetrics {
    /// Cores *claimed* by allocations, integrated over time (an exclusive
    /// job claims whole nodes).
    pub busy_cores: TimeWeighted,
    /// Cores actually *used* by tasks (tasks × cpus-per-task), integrated
    /// over time — the quantity behind the paper's "poor utilization" claim
    /// for exclusive allocation.
    pub used_cores: TimeWeighted,
    /// Queue-wait times, in seconds.
    pub wait_times: Histogram,
    /// Jobs completed normally.
    pub completed: Counter,
    /// Jobs killed by failures.
    pub failed: Counter,
    /// Jobs killed at their wall-time limit.
    pub timed_out: Counter,
}

/// One node's state in the EASY shadow replay: just the capacity deltas and
/// the two bits admissibility depends on. `Copy`, so building the shadow is
/// a flat memcpy-style pass — no `SchedNode` clones, no nested maps.
#[derive(Debug, Clone, Copy)]
struct ShadowNode {
    id: NodeId,
    free_cores: u32,
    free_mem_mib: u64,
    free_gpus: u32,
    jobs: u32,
    owner: Option<Uid>,
    up: bool,
}

impl ShadowNode {
    fn from_node(n: &SchedNode) -> Self {
        ShadowNode {
            id: n.id,
            free_cores: n.free_cores(),
            free_mem_mib: n.free_mem_mib(),
            free_gpus: n.free_gpus(),
            jobs: n.running.len() as u32,
            owner: n.owner(),
            up: n.state == NodeState::Up,
        }
    }

    // analyze:hot-path-begin(sched-shadow-fit)
    /// Tasks of `spec` this shadow node could host right now — the shadow
    /// counterpart of `node_admits` + `tasks_that_fit`, capped at
    /// `u32::MAX` exactly like the real fit computation.
    fn fit(&self, spec: &JobSpec, policy: NodeSharing) -> u64 {
        if !self.up {
            return 0;
        }
        if (matches!(policy, NodeSharing::Exclusive) || spec.request_exclusive) && self.jobs > 0 {
            return 0;
        }
        if matches!(policy, NodeSharing::WholeNodeUser) {
            if let Some(owner) = self.owner {
                if owner != spec.user {
                    return 0;
                }
            }
        }
        let by_cores = (self.free_cores / spec.cpus_per_task.max(1)) as u64;
        let by_mem = self
            .free_mem_mib
            .checked_div(spec.mem_per_task_mib)
            .map_or(u32::MAX as u64, |n| n.min(u32::MAX as u64));
        let by_gpus = self
            .free_gpus
            .checked_div(spec.gpus_per_task)
            .map_or(u32::MAX, |n| n) as u64;
        by_cores.min(by_mem).min(by_gpus)
    }

    /// Fold one allocation's release into this shadow entry, keeping the
    /// caller's running total-fit exact. This is the single primitive the
    /// EASY shadow replay and the preemption feasibility proof both build
    /// on — the "placement exists ⟺ Σ per-node fit ≥ tasks" invariant
    /// lives here and nowhere else.
    fn fold_release(
        &mut self,
        alloc: &TaskAlloc,
        spec: &JobSpec,
        policy: NodeSharing,
        total: &mut u64,
    ) {
        *total -= self.fit(spec, policy);
        self.free_cores += alloc.cores;
        self.free_mem_mib += alloc.mem_mib;
        self.free_gpus += alloc.gpus;
        self.jobs -= 1;
        if self.jobs == 0 {
            self.owner = None;
        }
        *total += self.fit(spec, policy);
    }
    // analyze:hot-path-end
}

/// The scheduler.
#[derive(Debug)]
pub struct Scheduler {
    /// Configuration (immutable per run for clean experiments).
    pub config: SchedConfig,
    /// Compute nodes.
    pub nodes: BTreeMap<NodeId, SchedNode>,
    /// Every job ever submitted.
    pub jobs: BTreeMap<JobId, Job>,
    /// Pending queue in FIFO order: enqueue-sequence → job.
    queue: BTreeMap<u64, JobId>,
    /// Reverse queue index for O(log q) `cancel`.
    queue_pos: BTreeMap<JobId, u64>,
    queue_seq: u64,
    /// Running jobs keyed by scheduled end time (`started + duration`, the
    /// EASY assumption) — the shadow replay walks this in order directly
    /// instead of collecting and sorting every running job per cycle, and
    /// its size is the running-job count.
    running_ends: BTreeSet<(SimTime, JobId)>,
    // ---- placement index, maintained on every claim/release ----
    /// Up nodes with zero running jobs, id-ordered.
    idle_nodes: BTreeSet<NodeId>,
    /// Up nodes with at least one free core, id-ordered.
    avail_nodes: BTreeSet<NodeId>,
    /// Per-user sets of nodes the user *solely* owns (packing affinity).
    owned_nodes: BTreeMap<Uid, BTreeSet<NodeId>>,
    // ---- reusable shadow scratch (allocation-free steady state) ----
    shadow_scratch: Vec<ShadowNode>,
    /// Persistent per-node capacity mirror, id-ascending, maintained on
    /// every claim/release/fail/repair — the partition-free shadow build is
    /// a flat copy of this instead of an O(n) walk of the node `BTreeMap`.
    shadow_mirror: Vec<ShadowNode>,
    /// Bumped on every claim/release/fail/repair/add — anything that could
    /// change a placement or shadow answer.
    state_version: u64,
    /// Memoized EASY shadow: `(head job, state_version, shadow)`. A
    /// submission storm fires `try_schedule` per arrival while the head
    /// stays blocked and node state is untouched — the shadow is a pure
    /// function of (head spec, node state, running set), so those cycles
    /// reuse it instead of replaying identically. Absolute times, so a
    /// later `now` does not invalidate it.
    shadow_cache: Option<(JobId, u64, SimTime)>,
    /// Memoized failed head placement `(head job, state_version)`: while
    /// nothing claims or releases, a blocked head stays blocked — skip the
    /// re-attempt on pure arrival events.
    head_fail_cache: Option<(JobId, u64)>,
    /// Backfill candidates whose placement failed at `.0 == state_version`
    /// — valid until any claim/release (the set is cleared when the
    /// version moves). Saves re-walking the candidate window per arrival.
    backfill_fails: (u64, BTreeSet<JobId>),
    // ---- policy plane (all empty / unused while the knobs are off) ----
    /// Decayed per-(partition, user) usage: the fair-share input.
    ledger: FairShareLedger,
    /// Per-class FIFO queues (class = resolved partition name, "" for the
    /// unpartitioned cluster): enqueue-seq → job. Mirror of `queue`,
    /// maintained only when `fair_share` is on.
    part_fifo: BTreeMap<String, BTreeMap<u64, JobId>>,
    /// Per-class, per-(QoS band, user) queued enqueue-seqs (fair-share
    /// head selection picks the lowest-usage user's earliest job inside
    /// the top band). The band component is 0 when preemption is off, so
    /// this degrades to a plain per-user index.
    part_user: BTreeMap<String, BTreeMap<(u8, Uid), BTreeSet<u64>>>,
    /// Per-class QoS band index (maintained when `preemption` is on):
    /// `(255 − qos rank, seq) → job`, so iteration order is
    /// highest-class-first with FIFO inside a band. With preemption
    /// enabled, dispatch is band-major — an urgent arrival becomes its
    /// class's head immediately instead of aging behind the backlog.
    part_qos: BTreeMap<String, BTreeMap<(u8, u64), JobId>>,
    /// Queued job → its class key (for O(log) removal).
    job_part: BTreeMap<JobId, String>,
    /// Run epoch per job; bumped on preemption so stale `JobEnd` events
    /// from the killed run are ignored. Absent = epoch 0 (never preempted).
    run_epochs: BTreeMap<JobId, u32>,
    /// Preemption history (who displaced whom, when, where).
    pub preemptions: Vec<PreemptionRecord>,
    /// Per-class reservation calendars (`reservations > 0`), rebuilt
    /// whenever the state version moves.
    calendars: BTreeMap<String, ReservationCalendar>,
    /// Per-class failed-head memo `(head, state_version)`: while nothing
    /// claimed or released *and the selected head is unchanged*, a blocked
    /// class head stays blocked.
    policy_head_cache: BTreeMap<String, (JobId, u64)>,
    /// Per-class shadow memo `(head, state_version, shadow)`.
    policy_shadow_cache: BTreeMap<String, (JobId, u64, SimTime)>,
    // ---- per-partition capacity mirrors + incremental head fit ----
    /// Flat per-partition capacity mirrors (id-ascending), lazily built and
    /// then maintained on every claim/release — partitioned shadow and
    /// calendar builds are flat copies instead of node-map walks.
    part_mirrors: BTreeMap<String, Vec<ShadowNode>>,
    /// Node → partitions whose mirror contains it (mirror maintenance).
    node_parts: BTreeMap<NodeId, Vec<String>>,
    /// Bumped on every partition-table mutation; mirrors rebuilt lazily
    /// when they trail this.
    partitions_version: u64,
    /// `partitions_version` the current mirrors were built against.
    part_mirror_version: u64,
    /// Incrementally-maintained total task-fit for the current head
    /// (`Σ fit` over its eligible nodes), updated on every claim/release/
    /// fail/repair delta — drops the remaining O(nodes) initial sum from
    /// each shadow compute.
    head_fit: Option<HeadFit>,
    events: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    next_job: u64,
    next_node: u32,
    seq: u64,
    now: SimTime,
    /// Metrics.
    pub metrics: SchedMetrics,
    epilogs: Vec<EpilogEvent>,
    /// Node-failure history.
    pub failures: Vec<FailureRecord>,
    /// Partition table (empty = partitioning disabled, all nodes eligible).
    /// Private so every mutation goes through [`Scheduler::partitions_mut`],
    /// which invalidates the placement/shadow memos — eligibility is part
    /// of what they cache.
    partitions: PartitionTable,
    admins: BTreeSet<Uid>,
    /// Observability: phase spans, memo/backfill/preemption counters, and
    /// the flight recorder. Disabled by default (every record call is one
    /// never-taken branch); [`Scheduler::enable_obs`] turns it on. Pure
    /// measurement — never consulted by a scheduling decision.
    pub obs: SchedObs,
    /// Submission trace contexts awaiting dispatch, recorded by
    /// [`Scheduler::note_submit_trace`]. Empty unless tracing is on —
    /// start-site lookup is then one `is_empty` branch — and never
    /// consulted by a scheduling decision.
    submit_traces: BTreeMap<JobId, TraceCtx>,
}

/// The head whose total task-fit is being maintained incrementally.
#[derive(Debug)]
struct HeadFit {
    job: JobId,
    spec: Arc<JobSpec>,
    /// Resolved partition name (`None` = whole cluster).
    part: Option<String>,
    /// `Σ fit(spec)` over the head's eligible nodes, kept exact by
    /// [`Scheduler::mirror_update`].
    total: u64,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new(config: SchedConfig) -> Self {
        let ledger = FairShareLedger::new(config.fair_share_half_life);
        Scheduler {
            config,
            nodes: BTreeMap::new(),
            jobs: BTreeMap::new(),
            queue: BTreeMap::new(),
            queue_pos: BTreeMap::new(),
            queue_seq: 0,
            running_ends: BTreeSet::new(),
            idle_nodes: BTreeSet::new(),
            avail_nodes: BTreeSet::new(),
            owned_nodes: BTreeMap::new(),
            shadow_scratch: Vec::new(),
            shadow_mirror: Vec::new(),
            state_version: 0,
            shadow_cache: None,
            head_fail_cache: None,
            backfill_fails: (0, BTreeSet::new()),
            ledger,
            part_fifo: BTreeMap::new(),
            part_user: BTreeMap::new(),
            part_qos: BTreeMap::new(),
            job_part: BTreeMap::new(),
            run_epochs: BTreeMap::new(),
            preemptions: Vec::new(),
            calendars: BTreeMap::new(),
            policy_head_cache: BTreeMap::new(),
            policy_shadow_cache: BTreeMap::new(),
            part_mirrors: BTreeMap::new(),
            node_parts: BTreeMap::new(),
            partitions_version: 0,
            part_mirror_version: 0,
            head_fit: None,
            events: BinaryHeap::new(),
            next_job: 1,
            next_node: 1,
            seq: 0,
            now: SimTime::ZERO,
            metrics: SchedMetrics {
                busy_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                used_cores: TimeWeighted::new(SimTime::ZERO, 0.0),
                wait_times: Histogram::new(),
                completed: Counter::new(),
                failed: Counter::new(),
                timed_out: Counter::new(),
            },
            epilogs: Vec::new(),
            failures: Vec::new(),
            partitions: PartitionTable::new(),
            admins: BTreeSet::new(),
            obs: SchedObs::disabled(),
            submit_traces: BTreeMap::new(),
        }
    }

    /// Turn on (or reconfigure) observability. Replaces the standing
    /// recorder, so counters restart from zero. Recording never influences
    /// scheduling decisions — `tests/sched_equivalence.rs` pins the engine
    /// against the reference with instrumentation compiled in.
    pub fn enable_obs(&mut self, cfg: eus_obs::ObsConfig) {
        self.obs = SchedObs::new(&cfg);
    }

    /// Attach the causal context a traced submission arrived with; the
    /// dispatch that eventually starts the job records a
    /// `sched.job.dispatch` span under it. No-op for quiet contexts or a
    /// disabled trace ring, so untraced submissions stay free.
    pub fn note_submit_trace(&mut self, id: JobId, ctx: TraceCtx) {
        if !ctx.is_none() && self.obs.trace.enabled() {
            self.submit_traces.insert(id, ctx);
        }
    }

    /// Add a node with auto-assigned id.
    pub fn add_node(&mut self, cores: u32, mem_mib: u64, gpus: u32) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes
            .insert(id, SchedNode::new(id, cores, mem_mib, gpus));
        self.idle_nodes.insert(id);
        if cores > 0 {
            self.avail_nodes.insert(id);
        }
        let sn = ShadowNode::from_node(&self.nodes[&id]);
        self.shadow_mirror.push(sn);
        if let Some(hf) = &mut self.head_fit {
            // A new node is in no partition yet, so it only widens a
            // whole-cluster head scope.
            if hf.part.is_none() {
                hf.total += sn.fit(&hf.spec, self.config.policy);
            }
        }
        self.state_version += 1;
        id
    }

    /// Refresh one node's entry in the persistent shadow mirror, the
    /// per-partition mirrors that contain it, and the maintained head
    /// total-fit. Every capacity transition (claim/release/fail/repair)
    /// funnels through here, which is what lets shadow builds start from a
    /// flat copy and a ready-made sum instead of an O(nodes) walk.
    fn mirror_update(&mut self, nid: NodeId) {
        let sn = ShadowNode::from_node(&self.nodes[&nid]);
        let idx = self
            .shadow_mirror
            .binary_search_by_key(&nid, |m| m.id)
            .expect("every node is mirrored");
        let old = self.shadow_mirror[idx];
        self.shadow_mirror[idx] = sn;
        if let Some(hf) = &mut self.head_fit {
            let in_scope = match &hf.part {
                None => true,
                Some(p) => self
                    .partitions
                    .get(p)
                    .is_some_and(|part| part.nodes.contains(&nid)),
            };
            if in_scope {
                let policy = self.config.policy;
                hf.total = hf.total + sn.fit(&hf.spec, policy) - old.fit(&hf.spec, policy);
            }
        }
        if let Some(parts) = self.node_parts.get(&nid) {
            for p in parts {
                if let Some(m) = self.part_mirrors.get_mut(p) {
                    if let Ok(i) = m.binary_search_by_key(&nid, |e| e.id) {
                        m[i] = sn;
                    }
                }
            }
        }
    }

    /// Make sure the per-partition mirrors match the current partition
    /// table generation, then build (once) and return the mirror for
    /// partition `name`: its member nodes' capacity entries, id-ascending.
    fn part_mirror(&mut self, name: &str) -> &[ShadowNode] {
        if self.part_mirror_version != self.partitions_version {
            self.part_mirrors.clear();
            self.node_parts.clear();
            self.part_mirror_version = self.partitions_version;
        }
        if !self.part_mirrors.contains_key(name) {
            let members: Vec<NodeId> = self
                .partitions
                .get(name)
                .map(|p| p.nodes.iter().copied().collect())
                .unwrap_or_default();
            let mut mirror = Vec::with_capacity(members.len());
            for nid in &members {
                if let Ok(i) = self.shadow_mirror.binary_search_by_key(nid, |e| e.id) {
                    mirror.push(self.shadow_mirror[i]);
                    self.node_parts
                        .entry(*nid)
                        .or_default()
                        .push(name.to_string());
                }
            }
            self.part_mirrors.insert(name.to_string(), mirror);
        }
        &self.part_mirrors[name]
    }

    /// Register an operator/coordinator exempt from PrivateData filtering.
    pub fn add_admin(&mut self, uid: Uid) {
        self.admins.insert(uid);
    }

    /// Is this uid a registered operator?
    pub fn is_admin(&self, uid: Uid) -> bool {
        self.admins.contains(&uid)
    }

    /// The partition table.
    pub fn partitions(&self) -> &PartitionTable {
        &self.partitions
    }

    /// Mutable access to the partition table. Changing partitions changes
    /// which nodes are eligible, so the memoized placement/shadow answers,
    /// the per-partition capacity mirrors, and the maintained head fit are
    /// all invalidated here. Configure partitions *before* jobs queue —
    /// the policy plane's per-partition queues key jobs by the partition
    /// resolution in force at submit time.
    pub fn partitions_mut(&mut self) -> &mut PartitionTable {
        self.state_version += 1;
        self.partitions_version += 1;
        self.head_fit = None;
        &mut self.partitions
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sum of all Up nodes' cores.
    pub fn total_cores(&self) -> u64 {
        self.nodes.values().map(|n| n.cores as u64).sum()
    }

    /// Claimed-core utilization over `[0, now]`: allocated core-seconds /
    /// capacity. Exclusive jobs inflate this (they claim whole nodes).
    pub fn utilization(&self) -> f64 {
        let cap = self.total_cores() as f64 * self.now.since(SimTime::ZERO).as_secs_f64();
        if cap <= 0.0 {
            return 0.0;
        }
        self.metrics.busy_cores.integral(self.now) / cap
    }

    /// Effective utilization over `[0, now]`: core-seconds actually used by
    /// tasks / capacity. This is the number that collapses under per-job
    /// exclusive allocation with many small jobs (Sec. IV-B).
    pub fn effective_utilization(&self) -> f64 {
        let cap = self.total_cores() as f64 * self.now.since(SimTime::ZERO).as_secs_f64();
        if cap <= 0.0 {
            return 0.0;
        }
        self.metrics.used_cores.integral(self.now) / cap
    }

    /// Number of jobs waiting in queue.
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    /// Number of running jobs. O(1).
    pub fn running_count(&self) -> usize {
        self.running_ends.len()
    }

    /// The fair-share usage ledger (read-only; populated only while
    /// `config.fair_share` is on).
    pub fn fair_share_ledger(&self) -> &FairShareLedger {
        &self.ledger
    }

    /// Every reservation currently held by the calendar(s), valid for the
    /// present engine state. Empty unless `config.reservations > 0` and a
    /// scheduling cycle has planned since the last state change.
    pub fn held_reservations(&self) -> Vec<Reservation> {
        self.calendars
            .values()
            .filter(|c| c.built_version == Some((self.state_version, self.queue_seq)))
            .flat_map(|c| c.reservations.iter().cloned())
            .collect()
    }

    /// Answer "when will this job start?" — the question EASY alone cannot
    /// answer for anything but the head.
    ///
    /// * running / finished jobs → their actual start;
    /// * queued jobs inside the reservation calendar's top-K → the planned
    ///   (queue-aware) reserved start;
    /// * queued jobs beyond the top-K (reservations on) → a one-off probe
    ///   reservation planned against the standing calendar profile — still
    ///   queue-aware (every hold ahead of the job is charged), visible as
    ///   `sched.calendar.probes` under the `sched.calendar.plan` span;
    /// * other queued jobs (reservations off) → the optimistic bound from
    ///   a generalized shadow replay of this spec alone (ignores queued
    ///   work ahead);
    /// * cancelled jobs → `None`.
    pub fn earliest_start(&mut self, job: JobId) -> Option<SimTime> {
        let j = self.jobs.get(&job)?;
        if j.state != JobState::Pending {
            return j.started;
        }
        let spec = Arc::clone(&j.spec);
        let class: Option<String> = if self.config.fair_share {
            self.job_part.get(&job).cloned()
        } else {
            None
        };
        if self.config.reservations > 0 {
            if let Some(head) = self.select_head(class.as_deref()) {
                self.rebuild_calendar(class.as_deref(), head);
                let ckey = class.clone().unwrap_or_default();
                if let Some(r) = self.calendars.get(&ckey).and_then(|c| c.get(job)) {
                    return Some(r.start);
                }
                // Beyond the top-K: plan a one-off probe reservation on
                // top of the finished profile (all held starts charged),
                // instead of the optimistic single-job shadow bound. The
                // probe is read-only — nothing is held for the job.
                if let Some(p) = &class {
                    self.part_mirror(p);
                }
                let base: Vec<ShadowNode> = match &class {
                    Some(p) => self.part_mirrors[p].clone(),
                    None => self.shadow_mirror.clone(),
                };
                let profile = self
                    .calendars
                    .get(&ckey)
                    .map(|c| c.profile.clone())
                    .unwrap_or_default();
                let tok = self.obs.rec.span_start();
                let planned = self.plan_reservation(job, &base, &profile);
                self.obs.rec.incr(self.obs.c_cal_probes);
                self.obs.rec.span_end(self.obs.sp_calendar, tok);
                if let Some(r) = planned {
                    return Some(r.start);
                }
                // Fits at no anchor (too big to ever start): fall through
                // — the shadow probe reports the same `MAX` answer.
            }
        }
        Some(self.shadow_probe(job, &spec))
    }

    fn push_event(&mut self, at: SimTime, ev: Ev) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse((at, seq, ev)));
    }

    /// Submit a job to arrive at `at` (clamped to now). Jobs naming an
    /// unknown partition are rejected at submission (state `Cancelled`),
    /// mirroring Slurm's submit-time validation.
    pub fn submit_at(&mut self, at: SimTime, spec: JobSpec) -> JobId {
        self.submit_at_shared(at, Arc::new(spec))
    }

    /// Submit an already-shared spec. Trace replay and fan-out experiments
    /// use this to hand the same `Arc<JobSpec>` to several schedulers
    /// without a deep copy per submission.
    pub fn submit_at_shared(&mut self, at: SimTime, spec: Arc<JobSpec>) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let valid_partition: Result<_, PartitionError> =
            self.partitions.eligible_nodes(spec.partition.as_deref());
        let rejected = valid_partition.is_err();
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                state: if rejected {
                    JobState::Cancelled
                } else {
                    JobState::Pending
                },
                submitted: at.max(self.now),
                started: None,
                ended: None,
                allocations: BTreeMap::new(),
            },
        );
        if rejected {
            self.jobs.get_mut(&id).expect("just inserted").ended = Some(at.max(self.now));
        } else {
            self.push_event(at, Ev::Submit(id));
        }
        id
    }

    /// Submit arriving now.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        self.submit_at(self.now, spec)
    }

    /// Cancel a pending job (running jobs run to completion, as `scancel`
    /// would need the full kill path we don't model).
    pub fn cancel(&mut self, id: JobId) -> bool {
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        if job.state != JobState::Pending {
            return false;
        }
        job.state = JobState::Cancelled;
        job.ended = Some(self.now);
        self.dequeue(id);
        true
    }

    /// The QoS band key: highest class iterates first, FIFO inside a band.
    fn qos_band(spec: &JobSpec) -> u8 {
        255 - spec.qos.rank()
    }

    /// The band component of the per-user index key: collapsed to one band
    /// when preemption (band-major dispatch) is off.
    fn user_band(&self, spec: &JobSpec) -> u8 {
        if self.config.preemption {
            Self::qos_band(spec)
        } else {
            0
        }
    }

    /// Append a pending job to the queue tail and to whichever policy
    /// structures are active (fair-share per-partition queues, QoS band
    /// index).
    fn enqueue(&mut self, id: JobId) {
        let key = self.queue_seq;
        self.queue_seq += 1;
        self.queue.insert(key, id);
        self.queue_pos.insert(id, key);
        if !self.config.fair_share && !self.config.preemption {
            return;
        }
        let spec = Arc::clone(&self.jobs[&id].spec);
        // Class key: resolved partition under fair-share, one global class
        // otherwise.
        let part = if self.config.fair_share {
            self.partitions
                .resolve(spec.partition.as_deref())
                .expect("validated at submit")
                .unwrap_or("")
                .to_string()
        } else {
            String::new()
        };
        if self.config.fair_share {
            let ukey = (self.user_band(&spec), spec.user);
            self.part_fifo
                .entry(part.clone())
                .or_default()
                .insert(key, id);
            self.part_user
                .entry(part.clone())
                .or_default()
                .entry(ukey)
                .or_default()
                .insert(key);
        }
        if self.config.preemption {
            self.part_qos
                .entry(part.clone())
                .or_default()
                .insert((Self::qos_band(&spec), key), id);
        }
        self.job_part.insert(id, part);
    }

    /// Remove a job from the queue (start, cancel) and from the policy
    /// structures if present.
    fn dequeue(&mut self, id: JobId) {
        let Some(key) = self.queue_pos.remove(&id) else {
            return;
        };
        self.queue.remove(&key);
        if let Some(part) = self.job_part.remove(&id) {
            if let Some(fifo) = self.part_fifo.get_mut(&part) {
                fifo.remove(&key);
                if fifo.is_empty() {
                    self.part_fifo.remove(&part);
                }
            }
            let ukey = (
                self.user_band(&self.jobs[&id].spec),
                self.jobs[&id].spec.user,
            );
            if let Some(users) = self.part_user.get_mut(&part) {
                if let Some(seqs) = users.get_mut(&ukey) {
                    seqs.remove(&key);
                    if seqs.is_empty() {
                        users.remove(&ukey);
                    }
                }
                if users.is_empty() {
                    self.part_user.remove(&part);
                }
            }
            if let Some(bands) = self.part_qos.get_mut(&part) {
                bands.remove(&(Self::qos_band(&self.jobs[&id].spec), key));
                if bands.is_empty() {
                    self.part_qos.remove(&part);
                }
            }
        }
    }

    /// This job's current run epoch (0 = never preempted).
    fn run_epoch(&self, id: JobId) -> u32 {
        self.run_epochs.get(&id).copied().unwrap_or(0)
    }

    /// Inject a node crash at `at` (the OOM-takes-down-the-node scenario of
    /// Sec. IV-B). The node repairs after `config.repair_time`.
    pub fn schedule_node_failure(&mut self, at: SimTime, node: NodeId) {
        self.push_event(at, Ev::NodeFail(node));
    }

    /// Drain accumulated epilog work (cluster layer consumes).
    pub fn drain_epilogs(&mut self) -> Vec<EpilogEvent> {
        std::mem::take(&mut self.epilogs)
    }

    /// Does `user` have a running job with an allocation on `node`? (The
    /// `pam_slurm` question.) O(log) via the node's per-user job counts.
    pub fn has_running_job_on(&self, user: Uid, node: NodeId) -> bool {
        self.nodes.get(&node).is_some_and(|n| n.has_user(user))
    }

    /// `squeue` as seen by `viewer` under the PrivateData configuration.
    /// Rows are views over the shared spec — no name/cmdline deep clones.
    pub fn squeue(&self, viewer: &Credentials) -> Vec<JobView> {
        let admin = self.is_admin(viewer.uid);
        self.jobs
            .values()
            .filter(|j| !j.state.is_terminal())
            .filter(|j| may_view(viewer, j.spec.user, self.config.private_data.jobs, admin))
            .map(|j| JobView {
                id: j.id,
                user: j.spec.user,
                spec: Arc::clone(&j.spec),
                state: j.state,
                nodes: j.allocations.keys().copied().collect(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Fire events up to and including `horizon`; the clock lands on
    /// `horizon` afterwards.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(Reverse((t, _, _))) = self.events.peek() {
            if *t > horizon {
                break;
            }
            let Reverse((t, _, ev)) = self.events.pop().expect("peeked");
            self.now = t;
            self.fire(ev);
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    /// Run until no events remain (all submitted work finished). Returns the
    /// final clock (the makespan end).
    pub fn run_to_completion(&mut self) -> SimTime {
        while let Some(Reverse((t, _, ev))) = self.events.pop() {
            self.now = t;
            self.fire(ev);
        }
        self.now
    }

    fn fire(&mut self, ev: Ev) {
        match ev {
            Ev::Submit(j) => {
                if self.jobs[&j].state == JobState::Pending {
                    self.obs.rec.event(
                        self.now,
                        "job.submit",
                        j.0,
                        self.jobs[&j].spec.tasks as u64,
                        0,
                    );
                    self.enqueue(j);
                    self.try_schedule();
                }
            }
            Ev::JobEnd(j, epoch) => {
                // A stale end event from a preempted (killed) run carries
                // the old epoch and is ignored; the requeued run pushed its
                // own end event.
                if self.jobs[&j].state == JobState::Running && self.run_epoch(j) == epoch {
                    // Did the job end on its own, or did slurmstepd kill it
                    // at the wall-time limit?
                    let spec = &self.jobs[&j].spec;
                    let outcome = if spec.time_limit < spec.duration {
                        JobState::Timeout
                    } else {
                        JobState::Completed
                    };
                    self.finish_job(j, outcome);
                    self.try_schedule();
                }
            }
            Ev::NodeFail(n) => {
                self.fail_node(n);
                self.try_schedule();
            }
            Ev::NodeRepair(n) => {
                if let Some(node) = self.nodes.get_mut(&n) {
                    if node.state == NodeState::Down {
                        node.state = NodeState::Up;
                        self.obs
                            .rec
                            .event(self.now, "node.repair", n.0 as u64, 0, 0);
                        self.state_version += 1;
                        // Everything on it died at failure time, so it
                        // rejoins idle.
                        if node.is_idle() {
                            self.idle_nodes.insert(n);
                        }
                        if node.free_cores() > 0 {
                            self.avail_nodes.insert(n);
                        }
                        self.mirror_update(n);
                    }
                }
                self.try_schedule();
            }
        }
    }

    fn fail_node(&mut self, n: NodeId) {
        let Some(node) = self.nodes.get_mut(&n) else {
            return;
        };
        if node.state != NodeState::Up {
            return;
        }
        node.state = NodeState::Down;
        self.state_version += 1;
        self.idle_nodes.remove(&n);
        self.avail_nodes.remove(&n);
        let victims: Vec<JobId> = self.nodes[&n].running.keys().copied().collect();
        self.mirror_update(n);
        let mut record = FailureRecord {
            node: n,
            at: self.now,
            failed_jobs: Vec::new(),
        };
        self.obs
            .rec
            .event(self.now, "node.fail", n.0 as u64, victims.len() as u64, 0);
        for j in victims {
            let user = self.jobs[&j].spec.user;
            record.failed_jobs.push((j, user));
            self.finish_job(j, JobState::Failed);
        }
        self.failures.push(record);
        self.push_event(self.now + self.config.repair_time, Ev::NodeRepair(n));
    }

    // ------------------------------------------------------------------
    // Index maintenance: every resource transition funnels through these.
    // ------------------------------------------------------------------

    /// Move a node between per-user owned sets when its sole owner changed.
    fn reindex_owner(&mut self, nid: NodeId, prev: Option<Uid>, new: Option<Uid>) {
        if prev == new {
            return;
        }
        if let Some(o) = prev {
            if let Some(set) = self.owned_nodes.get_mut(&o) {
                set.remove(&nid);
                if set.is_empty() {
                    self.owned_nodes.remove(&o);
                }
            }
        }
        if let Some(o) = new {
            self.owned_nodes.entry(o).or_default().insert(nid);
        }
    }

    /// Claim `alloc` on a node and keep the placement index current.
    fn claim_on(&mut self, nid: NodeId, job: JobId, alloc: TaskAlloc, user: Uid) {
        self.state_version += 1;
        let node = self.nodes.get_mut(&nid).expect("placement on known node");
        let prev_owner = node.owner();
        node.claim(job, alloc, user);
        let new_owner = node.owner();
        self.idle_nodes.remove(&nid);
        if node.free_cores() == 0 {
            self.avail_nodes.remove(&nid);
        }
        self.reindex_owner(nid, prev_owner, new_owner);
        self.mirror_update(nid);
    }

    /// Release a job's holdings on a node and keep the placement index
    /// current. A Down node's capacity returns but it rejoins no candidate
    /// set until repair.
    fn release_on(&mut self, nid: NodeId, job: JobId) -> Option<TaskAlloc> {
        self.state_version += 1;
        let node = self.nodes.get_mut(&nid)?;
        let prev_owner = node.owner();
        let alloc = node.release(job)?;
        let new_owner = node.owner();
        self.reindex_owner(nid, prev_owner, new_owner);
        let node = &self.nodes[&nid];
        if node.state == NodeState::Up {
            if node.free_cores() > 0 {
                self.avail_nodes.insert(nid);
            }
            if node.is_idle() {
                self.idle_nodes.insert(nid);
            }
        }
        self.mirror_update(nid);
        Some(alloc)
    }

    fn finish_job(&mut self, id: JobId, state: JobState) {
        let job = self.jobs.get_mut(&id).expect("known job");
        debug_assert_eq!(job.state, JobState::Running);
        job.state = state;
        job.ended = Some(self.now);
        let user = job.spec.user;
        let started = job.started.expect("running has start");
        let allocations: Vec<(NodeId, TaskAlloc)> =
            job.allocations.iter().map(|(n, a)| (*n, *a)).collect();
        let cpus_per_task = job.spec.cpus_per_task;
        self.running_ends.remove(&(started + job.spec.duration, id));
        let mut released_cores = 0u32;
        let mut released_used = 0u32;
        for (nid, alloc) in &allocations {
            if self.release_on(*nid, id).is_some() {
                released_cores += alloc.cores;
                released_used += alloc.tasks * cpus_per_task;
            }
        }
        self.metrics
            .busy_cores
            .add(self.now, -(released_cores as f64));
        self.metrics
            .used_cores
            .add(self.now, -(released_used as f64));
        match state {
            JobState::Completed => self.metrics.completed.incr(),
            JobState::Failed => self.metrics.failed.incr(),
            JobState::Timeout => self.metrics.timed_out.incr(),
            _ => {}
        }
        self.obs.rec.incr(self.obs.c_finishes);
        let outcome = match state {
            JobState::Completed => 0,
            JobState::Failed => 1,
            JobState::Timeout => 2,
            _ => 3,
        };
        self.obs
            .rec
            .event(self.now, "job.end", id.0, outcome, released_cores as u64);
        self.charge_fair_share(id, released_cores, started);
        // Epilog per node, with the "is the user gone from this node" bit.
        for (nid, alloc) in &allocations {
            let still_active = self.has_running_job_on(user, *nid);
            self.epilogs.push(EpilogEvent {
                job: id,
                user,
                node: *nid,
                gpus: alloc.gpus,
                at: self.now,
                user_still_active_on_node: still_active,
            });
        }
    }

    /// Charge a run's consumed core-seconds to the fair-share ledger
    /// (no-op unless `fair_share` is on).
    fn charge_fair_share(&mut self, id: JobId, cores: u32, started: SimTime) {
        if !self.config.fair_share {
            return;
        }
        let spec = &self.jobs[&id].spec;
        let user = spec.user;
        let part = self
            .partitions
            .resolve(spec.partition.as_deref())
            .expect("validated at submit")
            .unwrap_or("")
            .to_string();
        let consumed = cores as f64 * self.now.since(started).as_secs_f64();
        self.ledger.charge(&part, user, consumed, self.now);
    }

    fn start_job(&mut self, id: JobId, placement: Vec<(NodeId, TaskAlloc)>) {
        let now = self.now;
        let (user, duration, submitted, cpus_per_task, qos) = {
            let job = &self.jobs[&id];
            (
                job.spec.user,
                job.spec.duration,
                job.submitted,
                job.spec.cpus_per_task,
                job.spec.qos,
            )
        };
        let mut total_cores = 0u32;
        let mut used_cores = 0u32;
        for (nid, alloc) in &placement {
            self.claim_on(*nid, id, *alloc, user);
            total_cores += alloc.cores;
            used_cores += alloc.tasks * cpus_per_task;
        }
        {
            let job = self.jobs.get_mut(&id).expect("known job");
            job.state = JobState::Running;
            job.started = Some(now);
            job.allocations = placement.into_iter().collect();
        }
        self.running_ends.insert((now + duration, id));
        self.obs.rec.incr(self.obs.c_starts);
        if !self.submit_traces.is_empty() {
            if let Some(ctx) = self.submit_traces.remove(&id) {
                let _ = self.obs.trace.hit(ctx, "sched.job.dispatch", now, id.0);
            }
        }
        self.obs.rec.event(
            now,
            "job.start",
            id.0,
            self.jobs[&id].allocations.len() as u64,
            total_cores as u64,
        );
        self.metrics.busy_cores.add(now, total_cores as f64);
        self.metrics.used_cores.add(now, used_cores as f64);
        let epoch = self.run_epoch(id);
        if epoch == 0 {
            // A preempted job's wait was recorded at its first dispatch;
            // requeue delay is preemption cost, not queue wait.
            self.metrics
                .wait_times
                .record(now.since(submitted).as_secs_f64());
            if qos == crate::job::QosClass::Interactive {
                self.obs.rec.add(
                    self.obs.c_interactive_wait_us,
                    now.since(submitted).as_micros(),
                );
                self.obs.rec.incr(self.obs.c_interactive_waits);
            }
        }
        // The step daemon enforces the requested wall-time limit.
        let runtime = duration.min(self.jobs[&id].spec.time_limit);
        self.push_event(now + runtime, Ev::JobEnd(id, epoch));
    }

    // ------------------------------------------------------------------
    // Placement over the incremental index
    // ------------------------------------------------------------------

    // analyze:hot-path-begin(sched-placement)
    /// The greedy per-node allocation, identical to the reference's.
    fn alloc_for(node: &SchedNode, spec: &JobSpec, policy: NodeSharing, fit: u32) -> TaskAlloc {
        if policy.charges_whole_node(spec) {
            // Exclusive: the job takes the whole node.
            TaskAlloc {
                tasks: fit,
                cores: node.cores,
                mem_mib: node.mem_mib,
                gpus: node.gpus,
            }
        } else {
            TaskAlloc {
                tasks: fit,
                cores: fit * spec.cpus_per_task,
                mem_mib: fit as u64 * spec.mem_per_task_mib,
                gpus: fit * spec.gpus_per_task,
            }
        }
    }

    /// Try to place `spec` using the maintained candidate index instead of
    /// scanning and sorting every node. Candidate order reproduces the old
    /// sort exactly: the user's solely-owned nodes first (packing
    /// affinity), then the policy-relevant remainder, both in id order.
    fn placement_for(
        &self,
        spec: &JobSpec,
        eligible: Option<&BTreeSet<NodeId>>,
    ) -> Option<Vec<(NodeId, TaskAlloc)>> {
        let user = spec.user;
        let policy = self.config.policy;
        let mut remaining = spec.tasks;
        let mut placement = Vec::new();

        let try_node = |nid: NodeId, remaining: &mut u32, placement: &mut Vec<_>| {
            if eligible.is_some_and(|set| !set.contains(&nid)) {
                return;
            }
            let Some(node) = self.nodes.get(&nid) else {
                return; // stale index entry: node was removed this cycle
            };
            if !policy.node_admits(node, user, spec) {
                return;
            }
            let fit = tasks_that_fit(node, spec).min(*remaining);
            if fit == 0 {
                return;
            }
            placement.push((nid, Self::alloc_for(node, spec, policy, fit)));
            *remaining -= fit;
        };

        // Phase 1: nodes this user solely owns (admissibility still checked
        // — under Exclusive / per-job --exclusive they are busy and refuse).
        if let Some(owned) = self.owned_nodes.get(&user) {
            for &nid in owned {
                if remaining == 0 {
                    break;
                }
                try_node(nid, &mut remaining, &mut placement);
            }
        }

        // Phase 2: the policy-relevant remainder. Under Shared (without a
        // per-job --exclusive) any Up node with free cores is admissible;
        // under every other policy only idle nodes are. Skip nodes already
        // visited in phase 1.
        if remaining > 0 {
            let shared_path = matches!(policy, NodeSharing::Shared) && !spec.request_exclusive;
            let source: &BTreeSet<NodeId> = if shared_path {
                &self.avail_nodes
            } else {
                &self.idle_nodes
            };
            // Walk the smaller of (source, eligible); both are id-ordered
            // so candidate order is preserved either way.
            match eligible {
                Some(set) if set.len() < source.len() => {
                    for &nid in set {
                        if remaining == 0 {
                            break;
                        }
                        if !source.contains(&nid) {
                            continue;
                        }
                        if shared_path && self.nodes.get(&nid).and_then(|n| n.owner()) == Some(user)
                        {
                            continue; // phase 1 already visited
                        }
                        try_node(nid, &mut remaining, &mut placement);
                    }
                }
                _ => {
                    for &nid in source {
                        if remaining == 0 {
                            break;
                        }
                        if shared_path && self.nodes.get(&nid).and_then(|n| n.owner()) == Some(user)
                        {
                            continue; // phase 1 already visited
                        }
                        try_node(nid, &mut remaining, &mut placement);
                    }
                }
            }
        }

        if remaining == 0 {
            Some(placement)
        } else {
            None
        }
    }
    // analyze:hot-path-end

    /// Earliest time the head job could start, assuming running jobs end on
    /// schedule (the EASY shadow time).
    ///
    /// Replays running-job releases in end-time order over a flat capacity
    /// vector, maintaining the total task-fit incrementally: placement for
    /// the head exists **iff** the summed per-node fit reaches its task
    /// count (per-node fits are independent), so the first release that
    /// pushes the sum over the line is the shadow time. No node-map clone,
    /// no repeated full placements, reusable scratch. The capacity vector
    /// is a flat copy of the maintained mirror — the whole-cluster one or
    /// the per-partition one — and the initial total-fit sum comes from
    /// the incrementally-maintained [`HeadFit`] when this head was already
    /// being tracked, so a shadow recompute after a claim/release delta
    /// costs O(releases) rather than O(nodes).
    fn shadow_time_for(&mut self, head: JobId, spec: &Arc<JobSpec>) -> SimTime {
        self.shadow_time_inner(head, spec, true)
    }

    /// Like [`shadow_time_for`](Self::shadow_time_for) but without
    /// installing the incremental head-fit tracker — for ad-hoc probes
    /// ([`earliest_start`](Self::earliest_start)) that must not evict the
    /// real head's maintained sum between scheduling cycles.
    fn shadow_probe(&mut self, job: JobId, spec: &Arc<JobSpec>) -> SimTime {
        self.shadow_time_inner(job, spec, false)
    }

    fn shadow_time_inner(&mut self, head: JobId, spec: &Arc<JobSpec>, track: bool) -> SimTime {
        let part = self
            .partitions
            .resolve(spec.partition.as_deref())
            .expect("validated at submit")
            .map(str::to_string);
        let mut snodes = std::mem::take(&mut self.shadow_scratch);
        snodes.clear();
        match &part {
            Some(p) => snodes.extend_from_slice(self.part_mirror(p)),
            None => snodes.extend_from_slice(&self.shadow_mirror),
        }
        let result = self.shadow_replay(head, spec, part, track, &mut snodes);
        self.shadow_scratch = snodes;
        result
    }

    // analyze:hot-path-begin(sched-shadow-replay)
    /// The maintained `Σ fit` for `head` over `snodes`, establishing the
    /// incremental tracker on first sight of this head (unless `track` is
    /// off — ad-hoc probes read, never evict).
    fn head_total_fit(
        &mut self,
        head: JobId,
        spec: &Arc<JobSpec>,
        part: Option<String>,
        track: bool,
        snodes: &[ShadowNode],
    ) -> u64 {
        let policy = self.config.policy;
        match &self.head_fit {
            Some(hf) if hf.job == head && hf.part == part => {
                debug_assert_eq!(
                    hf.total,
                    snodes.iter().map(|sn| sn.fit(spec, policy)).sum::<u64>(),
                    "incremental head fit drifted from the mirror"
                );
                hf.total
            }
            _ => {
                let total = snodes.iter().map(|sn| sn.fit(spec, policy)).sum();
                if track {
                    self.head_fit = Some(HeadFit {
                        job: head,
                        spec: Arc::clone(spec),
                        part,
                        total,
                    });
                }
                total
            }
        }
    }

    fn shadow_replay(
        &mut self,
        head: JobId,
        spec: &Arc<JobSpec>,
        part: Option<String>,
        track: bool,
        snodes: &mut [ShadowNode],
    ) -> SimTime {
        let policy = self.config.policy;
        let needed = spec.tasks as u64;
        let mut total = self.head_total_fit(head, spec, part, track, snodes);
        if total >= needed {
            self.obs.rec.incr(self.obs.c_shadow_early_exit);
            return self.now;
        }
        self.obs.rec.incr(self.obs.c_shadow_replays);
        // Replay running-job releases in end-time order — `running_ends` is
        // maintained in exactly that order, so no per-cycle collect + sort.
        for &(end_t, jid) in &self.running_ends {
            let Some(job) = self.jobs.get(&jid) else {
                continue; // jobs retains every submission; miss is impossible
            };
            for (&nid, alloc) in &job.allocations {
                let Ok(idx) = snodes.binary_search_by_key(&nid, |sn| sn.id) else {
                    continue; // allocation on an ineligible node
                };
                if let Some(sn) = snodes.get_mut(idx) {
                    sn.fold_release(alloc, spec, policy, &mut total);
                }
            }
            if total >= needed {
                return end_t;
            }
        }
        SimTime::MAX
    }
    // analyze:hot-path-end

    fn try_schedule(&mut self) {
        if self.config.policy_plane_active() {
            self.try_schedule_policy();
        } else {
            self.try_schedule_fcfs();
        }
    }

    /// The pre-policy cycle: global FCFS head + EASY backfill. This is the
    /// path the equivalence suite pins against the reference scheduler.
    fn try_schedule_fcfs(&mut self) {
        loop {
            let Some((&head_key, &head)) = self.queue.iter().next() else {
                return;
            };
            let head_spec = Arc::clone(&self.jobs[&head].spec);
            // While nothing claimed or released, a blocked head stays
            // blocked (placement is a pure function of spec + node state):
            // skip the re-attempt on pure arrival events.
            let known_blocked = matches!(
                self.head_fail_cache,
                Some((j, v)) if j == head && v == self.state_version
            );
            let placement = if known_blocked {
                self.obs.rec.incr(self.obs.c_head_memo_hit);
                None
            } else {
                self.obs.rec.incr(self.obs.c_head_memo_miss);
                let tok = self.obs.rec.span_start();
                let eligible = self
                    .partitions
                    .eligible_nodes(head_spec.partition.as_deref())
                    .expect("validated at submit");
                let p = self.placement_for(&head_spec, eligible);
                self.obs.rec.span_end(self.obs.sp_dispatch, tok);
                p
            };
            if let Some(p) = placement {
                self.dequeue(head);
                self.start_job(head, p);
                continue;
            }
            self.head_fail_cache = Some((head, self.state_version));
            if !self.config.backfill {
                return;
            }
            // EASY backfill: start later jobs only if they cannot delay the
            // head job's shadow start. The shadow is memoized per (head,
            // state-version): arrival-flood cycles that changed nothing on
            // the nodes reuse the previous answer.
            let shadow = match self.shadow_cache {
                Some((j, v, s)) if j == head && v == self.state_version => {
                    self.obs.rec.incr(self.obs.c_shadow_memo_hit);
                    s
                }
                _ => {
                    self.obs.rec.incr(self.obs.c_shadow_memo_miss);
                    let tok = self.obs.rec.span_start();
                    let s = self.shadow_time_for(head, &head_spec);
                    self.obs.rec.span_end(self.obs.sp_shadow, tok);
                    self.shadow_cache = Some((head, self.state_version, s));
                    s
                }
            };
            let bf_tok = self.obs.rec.span_start();
            let mut scanned = 0;
            let mut cursor = head_key;
            while scanned < self.config.backfill_depth {
                let Some((&key, &cand)) = self
                    .queue
                    .range((Bound::Excluded(cursor), Bound::Unbounded))
                    .next()
                else {
                    break;
                };
                scanned += 1;
                cursor = key;
                let spec = Arc::clone(&self.jobs[&cand].spec);
                let fits_before_shadow =
                    shadow == SimTime::MAX || self.now + spec.time_limit <= shadow;
                if fits_before_shadow {
                    // Failed attempts are memoized per state version: while
                    // nothing claimed or released, the same candidate fails
                    // the same way (starting a candidate bumps the version
                    // and invalidates the set).
                    if self.backfill_fails.0 != self.state_version {
                        self.backfill_fails = (self.state_version, BTreeSet::new());
                    }
                    if self.backfill_fails.1.contains(&cand) {
                        self.obs.rec.incr(self.obs.c_bf_memo_rejects);
                        continue;
                    }
                    self.obs.rec.incr(self.obs.c_bf_attempts);
                    let placement = {
                        let eligible = self
                            .partitions
                            .eligible_nodes(spec.partition.as_deref())
                            .expect("validated at submit");
                        self.placement_for(&spec, eligible)
                    };
                    if let Some(p) = placement {
                        self.obs.rec.incr(self.obs.c_bf_accepts);
                        self.dequeue(cand);
                        self.start_job(cand, p);
                    } else {
                        self.backfill_fails.1.insert(cand);
                    }
                } else {
                    self.obs.rec.incr(self.obs.c_bf_shadow_rejects);
                }
            }
            self.obs.rec.span_end(self.obs.sp_backfill, bf_tok);
            return;
        }
    }

    // ------------------------------------------------------------------
    // Policy plane: fair-share classes, preemption, reservations
    // ------------------------------------------------------------------

    /// The policy-plane cycle. Under fair-share every partition is its own
    /// scheduling class with its own head, shadow, and backfill budget —
    /// one backlogged partition cannot head-of-line-block the others.
    /// Without fair-share the whole queue is one class (global FCFS order,
    /// as before) but preemption and reservations still apply.
    fn try_schedule_policy(&mut self) {
        if self.config.fair_share {
            let classes: Vec<String> = self.part_fifo.keys().cloned().collect();
            for class in classes {
                self.schedule_class(Some(class));
            }
        } else {
            self.schedule_class(None);
        }
    }

    /// The head of a scheduling class.
    ///
    /// * preemption on → dispatch is **QoS-band-major**: the head comes
    ///   from the highest class present (an urgent arrival surfaces
    ///   immediately instead of aging behind the backlog); inside that
    ///   band, fair-share score (if on) then FIFO;
    /// * fair-share on (preemption off) → the queued job of the user with
    ///   the lowest decayed usage in the partition, FIFO tie-break;
    /// * neither → plain FIFO (the global class).
    fn select_head(&self, class: Option<&str>) -> Option<JobId> {
        let ckey = class.unwrap_or("");
        if self.config.preemption && !self.config.fair_share {
            // Band-major FIFO over the QoS index.
            return self.part_qos.get(ckey)?.values().next().copied();
        }
        match class {
            None => self.queue.values().next().copied(),
            Some(part) => {
                // Fair-share: lowest-usage user's earliest job — restricted
                // to the top QoS band when preemption is also on (the
                // per-user index is band-major, so the top band is a
                // prefix).
                let users = self.part_user.get(part)?;
                let top_band = users.keys().next()?.0;
                let mut best: Option<(f64, u64, JobId)> = None;
                for (&(band, user), seqs) in users {
                    if band != top_band {
                        break;
                    }
                    let Some(&seq) = seqs.iter().next() else {
                        continue; // empty sets are removed eagerly
                    };
                    let score = self.ledger.score(part, user);
                    let better = match &best {
                        None => true,
                        Some((bs, bq, _)) => match score.total_cmp(bs) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => seq < *bq,
                        },
                    };
                    if better {
                        best = Some((score, seq, self.part_fifo[part][&seq]));
                    }
                }
                best.map(|(_, _, id)| id)
            }
        }
    }

    /// Run one class's dispatch loop: place heads while they fit, preempt
    /// for latency-sensitive blocked heads, then backfill behind the
    /// blocked head under the shadow bound (and, with reservations on, the
    /// full conservative calendar).
    fn schedule_class(&mut self, class: Option<String>) {
        let ckey = class.clone().unwrap_or_default();
        let head = loop {
            let sel_tok = self.obs.rec.span_start();
            let selected = self.select_head(class.as_deref());
            self.obs.rec.span_end(self.obs.sp_select, sel_tok);
            let Some(head) = selected else {
                return;
            };
            let head_spec = Arc::clone(&self.jobs[&head].spec);
            let known_blocked = self
                .policy_head_cache
                .get(&ckey)
                .is_some_and(|&(j, v)| j == head && v == self.state_version);
            if !known_blocked {
                self.obs.rec.incr(self.obs.c_head_memo_miss);
                let tok = self.obs.rec.span_start();
                let eligible = self
                    .partitions
                    .eligible_nodes(head_spec.partition.as_deref())
                    .expect("validated at submit");
                let placed = self.placement_for(&head_spec, eligible);
                self.obs.rec.span_end(self.obs.sp_dispatch, tok);
                if let Some(p) = placed {
                    self.dequeue(head);
                    self.start_job(head, p);
                    continue;
                }
                // The head would wait: a latency-sensitive class may
                // displace the cheapest lower-QoS victim set instead.
                if self.config.preemption {
                    self.obs.rec.incr(self.obs.c_preempt_searches);
                    let pre_tok = self.obs.rec.span_start();
                    let preempted = self.try_preempt_for(head, &head_spec);
                    self.obs.rec.span_end(self.obs.sp_preempt, pre_tok);
                    if let Some(p) = preempted {
                        self.dequeue(head);
                        self.start_job(head, p);
                        continue;
                    }
                }
                self.policy_head_cache
                    .insert(ckey.clone(), (head, self.state_version));
            } else {
                self.obs.rec.incr(self.obs.c_head_memo_hit);
            }
            break head;
        };
        if !self.config.backfill {
            return;
        }
        let head_spec = Arc::clone(&self.jobs[&head].spec);
        let shadow = match self.policy_shadow_cache.get(&ckey) {
            Some(&(j, v, s)) if j == head && v == self.state_version => {
                self.obs.rec.incr(self.obs.c_shadow_memo_hit);
                s
            }
            _ => {
                self.obs.rec.incr(self.obs.c_shadow_memo_miss);
                let tok = self.obs.rec.span_start();
                let s = self.shadow_time_for(head, &head_spec);
                self.obs.rec.span_end(self.obs.sp_shadow, tok);
                self.policy_shadow_cache
                    .insert(ckey.clone(), (head, self.state_version, s));
                s
            }
        };
        if self.config.reservations > 0 {
            self.rebuild_calendar(class.as_deref(), head);
        }
        let bf_tok = self.obs.rec.span_start();
        self.backfill_class(class.as_deref(), head, shadow);
        self.obs.rec.span_end(self.obs.sp_backfill, bf_tok);
    }

    /// Backfill scan for one class: candidates in enqueue order (skipping
    /// the head, which under fair-share need not be the earliest seq), the
    /// EASY shadow bound, the per-version failure memo, and — with
    /// reservations on — the conservative no-collision test against every
    /// held reservation.
    fn backfill_class(&mut self, class: Option<&str>, head: JobId, shadow: SimTime) {
        // Snapshot the holds once for the whole scan, across EVERY class's
        // calendar (overlapping partitions share nodes): starting a
        // candidate bumps the state version, which must not silently drop
        // the collision test for the rest of the scan. The snapshot stays
        // conservative — our own starts within this scan only consume
        // capacity the plan already assumed free-later, and holds whose
        // job has meanwhile started are filtered out.
        let holds: Vec<Reservation> = if self.config.reservations > 0 {
            self.calendars
                .values()
                .flat_map(|c| c.reservations.iter())
                .filter(|r| {
                    self.jobs
                        .get(&r.job)
                        .is_some_and(|j| j.state == JobState::Pending)
                })
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        let head_seq = self.queue_pos[&head];
        let mut scanned = 0;
        let mut cursor: Option<u64> = None;
        while scanned < self.config.backfill_depth {
            let next = {
                let fifo: &BTreeMap<u64, JobId> = match class {
                    None => &self.queue,
                    Some(part) => match self.part_fifo.get(part) {
                        Some(f) => f,
                        None => return, // class drained entirely
                    },
                };
                let range = match cursor {
                    None => fifo.range(..),
                    Some(c) => fifo.range((Bound::Excluded(c), Bound::Unbounded)),
                };
                range
                    .filter(|(&k, _)| k != head_seq)
                    .map(|(&k, &j)| (k, j))
                    .next()
            };
            let Some((key, cand)) = next else {
                return;
            };
            scanned += 1;
            cursor = Some(key);
            let spec = Arc::clone(&self.jobs[&cand].spec);
            let cand_end = self.now + spec.time_limit;
            let fits_before_shadow = shadow == SimTime::MAX || cand_end <= shadow;
            if !fits_before_shadow {
                self.obs.rec.incr(self.obs.c_bf_shadow_rejects);
                continue;
            }
            if self.backfill_fails.0 != self.state_version {
                self.backfill_fails = (self.state_version, BTreeSet::new());
            }
            if self.backfill_fails.1.contains(&cand) {
                self.obs.rec.incr(self.obs.c_bf_memo_rejects);
                continue;
            }
            self.obs.rec.incr(self.obs.c_bf_attempts);
            let placement = {
                let eligible = self
                    .partitions
                    .eligible_nodes(spec.partition.as_deref())
                    .expect("validated at submit");
                self.placement_for(&spec, eligible)
            };
            match placement {
                Some(p) => {
                    if crate::calendar::blocks_any(&holds, cand, &p, cand_end) {
                        // Placement exists but collides with a held
                        // reservation: conservative backfill refuses. Not
                        // memoized — the memo records placement failures,
                        // and this isn't one.
                        self.obs.rec.incr(self.obs.c_bf_rsv_refusals);
                        continue;
                    }
                    self.obs.rec.incr(self.obs.c_bf_accepts);
                    self.dequeue(cand);
                    self.start_job(cand, p);
                }
                None => {
                    self.backfill_fails.1.insert(cand);
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Preemption and the reservation calendar
// ----------------------------------------------------------------------
impl Scheduler {
    /// Try to free enough capacity for a blocked latency-sensitive head by
    /// killing-and-requeuing strictly-lower-QoS running jobs, cheapest
    /// first (cost = remaining core-seconds of lost work). Feasibility is
    /// judged by the same per-node fit-sum the shadow uses — victims are
    /// only actually killed once the sum proves the head will fit. Returns
    /// the head's placement on the freed capacity.
    fn try_preempt_for(
        &mut self,
        head: JobId,
        spec: &Arc<JobSpec>,
    ) -> Option<Vec<(NodeId, TaskAlloc)>> {
        let policy = self.config.policy;
        let qos = spec.qos;
        if !qos.may_preempt(crate::job::QosClass::Bulk) {
            return None; // not a preemptor class at all
        }
        let part = self
            .partitions
            .resolve(spec.partition.as_deref())
            .expect("validated at submit")
            .map(str::to_string);
        let eligible: Option<BTreeSet<NodeId>> = self
            .partitions
            .eligible_nodes(spec.partition.as_deref())
            .expect("validated at submit")
            .cloned();
        // Candidate victims: running, strictly lower class, holding at
        // least one eligible node. Cost-sorted ascending.
        let mut victims: Vec<(u64, JobId)> = Vec::new();
        for &(end_t, jid) in &self.running_ends {
            let vj = &self.jobs[&jid];
            if !qos.may_preempt(vj.spec.qos) {
                continue;
            }
            if let Some(set) = &eligible {
                if !vj.allocations.keys().any(|n| set.contains(n)) {
                    continue;
                }
            }
            let cores: u64 = vj.allocations.values().map(|a| a.cores as u64).sum();
            let remaining = end_t.since(self.now).as_secs_f64();
            victims.push(((cores as f64 * remaining) as u64, jid));
        }
        if victims.is_empty() {
            return None;
        }
        victims.sort_unstable();
        // Simulate releases over a scratch capacity copy until the head's
        // fit-sum clears its task count.
        if let Some(p) = &part {
            self.part_mirror(p);
        }
        let mut snodes: Vec<ShadowNode> = match &part {
            Some(p) => self.part_mirrors[p].clone(),
            None => self.shadow_mirror.clone(),
        };
        let needed = spec.tasks as u64;
        let mut total: u64 = snodes.iter().map(|sn| sn.fit(spec, policy)).sum();
        let mut chosen: Vec<JobId> = Vec::new();
        for (_, v) in victims {
            if total >= needed {
                break;
            }
            for (&nid, alloc) in &self.jobs[&v].allocations {
                let Ok(i) = snodes.binary_search_by_key(&nid, |sn| sn.id) else {
                    continue;
                };
                snodes[i].fold_release(alloc, spec, policy, &mut total);
            }
            chosen.push(v);
        }
        if total < needed {
            return None; // even killing every eligible victim won't fit it
        }
        for v in &chosen {
            self.preempt_job(*v, head);
        }
        let eligible = self
            .partitions
            .eligible_nodes(spec.partition.as_deref())
            .expect("validated at submit");
        let placement = self.placement_for(spec, eligible);
        debug_assert!(
            placement.is_some(),
            "fit-sum proved the freed capacity admits the head"
        );
        placement
    }

    /// Kill-and-requeue one victim: release its holdings (placement index,
    /// mirrors, and head fit stay current), emit the full separation
    /// epilog per node — the scrub/cleanup the cluster layer runs *before*
    /// any new tenant's prolog — charge its consumed work to the
    /// fair-share ledger, bump its run epoch (stale end events die), and
    /// put it back in the queue.
    fn preempt_job(&mut self, id: JobId, by: JobId) {
        let (user, started, duration, cpus_per_task) = {
            let job = &self.jobs[&id];
            debug_assert_eq!(job.state, JobState::Running);
            (
                job.spec.user,
                job.started.expect("running has start"),
                job.spec.duration,
                job.spec.cpus_per_task,
            )
        };
        self.running_ends.remove(&(started + duration, id));
        *self.run_epochs.entry(id).or_insert(0) += 1;
        let allocations: Vec<(NodeId, TaskAlloc)> = self.jobs[&id]
            .allocations
            .iter()
            .map(|(n, a)| (*n, *a))
            .collect();
        let mut released_cores = 0u32;
        let mut released_used = 0u32;
        for (nid, alloc) in &allocations {
            if self.release_on(*nid, id).is_some() {
                released_cores += alloc.cores;
                released_used += alloc.tasks * cpus_per_task;
            }
        }
        self.metrics
            .busy_cores
            .add(self.now, -(released_cores as f64));
        self.metrics
            .used_cores
            .add(self.now, -(released_used as f64));
        self.charge_fair_share(id, released_cores, started);
        {
            let job = self.jobs.get_mut(&id).expect("known job");
            job.state = JobState::Pending;
            job.started = None;
            job.allocations.clear();
        }
        for (nid, alloc) in &allocations {
            let still_active = self.has_running_job_on(user, *nid);
            self.epilogs.push(EpilogEvent {
                job: id,
                user,
                node: *nid,
                gpus: alloc.gpus,
                at: self.now,
                user_still_active_on_node: still_active,
            });
        }
        self.enqueue(id);
        self.obs.rec.incr(self.obs.c_preempt_kills);
        self.obs.rec.event(
            self.now,
            "preempt.kill",
            id.0,
            by.0,
            allocations.len() as u64,
        );
        self.preemptions.push(PreemptionRecord {
            victim: id,
            victim_user: user,
            preempted_by: by,
            at: self.now,
            nodes: allocations.iter().map(|(n, _)| *n).collect(),
        });
    }

    /// The top-K queued jobs of a class in dispatch order (head first).
    /// With preemption on the order follows the QoS band index (band-major
    /// FIFO — the fair-share within-band refinement is approximated by
    /// band order, which is what dispatch converges to as scores equalize).
    fn class_top_k(&self, class: Option<&str>, head: JobId, k: usize) -> Vec<JobId> {
        let mut order = vec![head];
        if self.config.preemption {
            if let Some(bands) = self.part_qos.get(class.unwrap_or("")) {
                order.extend(
                    bands
                        .values()
                        .filter(|&&j| j != head)
                        .take(k.saturating_sub(1))
                        .copied(),
                );
            }
            return order;
        }
        match class {
            Some(part) => {
                // Fair-share order: (user score, seq), derived by a K-way
                // merge over the per-user seq sets — O(U + K log U), never
                // a whole-queue sort. (Preemption is off on this branch,
                // so every per-user index key has band 0.)
                let (Some(fifo), Some(users)) =
                    (self.part_fifo.get(part), self.part_user.get(part))
                else {
                    return order;
                };
                #[derive(PartialEq)]
                struct Cand(f64, u64, Uid);
                impl Eq for Cand {}
                impl PartialOrd for Cand {
                    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                        Some(self.cmp(other))
                    }
                }
                impl Ord for Cand {
                    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                        // Reversed: BinaryHeap is a max-heap, we pop min.
                        other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
                    }
                }
                let mut heap: BinaryHeap<Cand> = users
                    .iter()
                    .filter_map(|(&(_, user), seqs)| {
                        seqs.iter()
                            .next()
                            .map(|&seq| Cand(self.ledger.score(part, user), seq, user))
                    })
                    .collect();
                while order.len() < k {
                    let Some(Cand(score, seq, user)) = heap.pop() else {
                        break;
                    };
                    let job = fifo[&seq];
                    if job != head {
                        order.push(job);
                    }
                    // Advance this user's cursor to their next queued seq.
                    if let Some(seqs) = users.get(&(0, user)) {
                        if let Some(&next) =
                            seqs.range((Bound::Excluded(seq), Bound::Unbounded)).next()
                        {
                            heap.push(Cand(score, next, user));
                        }
                    }
                }
            }
            None => {
                order.extend(
                    self.queue
                        .values()
                        .filter(|&&j| j != head)
                        .take(k.saturating_sub(1))
                        .copied(),
                );
            }
        }
        order
    }

    /// Rebuild a class's reservation calendar for the current state
    /// version: plan starts for the top-K queued jobs sequentially against
    /// a capacity profile containing running-job releases and every
    /// earlier reservation's claim/release. Anchor feasibility uses each
    /// node's *minimum* free capacity over the candidate window (future
    /// claims subtracted, releases ignored) — the conservative rule that
    /// makes double-booking impossible.
    fn rebuild_calendar(&mut self, class: Option<&str>, head: JobId) {
        let ckey = class.unwrap_or("").to_string();
        if self
            .calendars
            .get(&ckey)
            .is_some_and(|c| c.built_version == Some((self.state_version, self.queue_seq)))
        {
            self.obs.rec.incr(self.obs.c_cal_memo_hits);
            return;
        }
        let order = self.class_top_k(class, head, self.config.reservations);
        // Arrival floods: if nothing claimed or released and the top-K is
        // the same job list the standing plan was built from, the plan is
        // still exact — re-tag it instead of re-deriving the profile.
        if let Some(c) = self.calendars.get_mut(&ckey) {
            if c.built_version
                .is_some_and(|(v, _)| v == self.state_version)
                && c.planned_for == order
            {
                c.built_version = Some((self.state_version, self.queue_seq));
                self.obs.rec.incr(self.obs.c_cal_retags);
                return;
            }
        }
        if let Some(p) = class {
            self.part_mirror(p);
        }
        let base: Vec<ShadowNode> = match class {
            Some(p) => self.part_mirrors[p].clone(),
            None => self.shadow_mirror.clone(),
        };
        let tok = self.obs.rec.span_start();
        // Capacity deltas over time: running releases (+), reservation
        // claims (−) and releases (+). Kept time-sorted.
        let mut deltas: Vec<CapDelta> = Vec::new();
        for &(end_t, jid) in &self.running_ends {
            for (&nid, alloc) in &self.jobs[&jid].allocations {
                deltas.push(CapDelta {
                    at: end_t,
                    node: nid,
                    cores: alloc.cores as i64,
                    mem: alloc.mem_mib as i64,
                    gpus: alloc.gpus as i64,
                });
            }
        }
        // Sorted once; later reservation claims/releases are inserted at
        // their binary-searched position, so the per-job replay never
        // re-sorts the whole profile.
        deltas.sort_by_key(|d| d.at);
        let mut cal = ReservationCalendar::new();
        for &job in &order {
            let planned = self.plan_reservation(job, &base, &deltas);
            if let Some(r) = planned {
                let mut insert_sorted = |d: CapDelta| {
                    let at = deltas.partition_point(|e| e.at <= d.at);
                    deltas.insert(at, d);
                };
                for (nid, a) in &r.allocs {
                    insert_sorted(CapDelta {
                        at: r.start,
                        node: *nid,
                        cores: -(a.cores as i64),
                        mem: -(a.mem_mib as i64),
                        gpus: -(a.gpus as i64),
                    });
                    insert_sorted(CapDelta {
                        at: r.end,
                        node: *nid,
                        cores: a.cores as i64,
                        mem: a.mem_mib as i64,
                        gpus: a.gpus as i64,
                    });
                }
                cal.reservations.push(r);
            }
        }
        cal.planned_for = order;
        cal.profile = deltas;
        cal.built_version = Some((self.state_version, self.queue_seq));
        self.calendars.insert(ckey, cal);
        self.obs.rec.incr(self.obs.c_cal_plans);
        self.obs.rec.span_end(self.obs.sp_calendar, tok);
    }

    /// Plan the earliest conservative reservation for one job against a
    /// base capacity snapshot plus a time-sorted delta profile. Pure with
    /// respect to scheduler state — [`rebuild_calendar`](Self::rebuild_calendar)
    /// calls it per top-K job (folding each plan back into the profile),
    /// and [`earliest_start`](Self::earliest_start) calls it once against
    /// a finished profile to answer beyond-top-K jobs. `None` = the job
    /// fits at no anchor (it would never start even after every release).
    fn plan_reservation(
        &self,
        job: JobId,
        base: &[ShadowNode],
        deltas: &[CapDelta],
    ) -> Option<Reservation> {
        let policy = self.config.policy;
        let spec = Arc::clone(&self.jobs[&job].spec);
        let needed = spec.tasks as u64;
        let eligible = self
            .partitions
            .eligible_nodes(spec.partition.as_deref())
            .expect("validated at submit");
        // Anchors: now, then every future delta instant.
        let mut anchors: Vec<SimTime> = vec![self.now];
        anchors.extend(deltas.iter().map(|d| d.at).filter(|&t| t > self.now));
        anchors.dedup();
        let mut snodes = base.to_vec();
        // Two-pointer sweep: `applied` deltas are folded into `snodes`
        // (at ≤ anchor); claims with index in [applied, win_end) sit in
        // the `win` overlay (the future claims inside the current
        // window, subtracted for the conservative minimum). Each delta
        // enters and leaves each structure exactly once, and per-node
        // fits update incrementally — O(deltas log n) per job instead
        // of an O(deltas²) rescan.
        let mut win: BTreeMap<NodeId, (u64, u64, u64)> = BTreeMap::new();
        let fit_with = |sn: &ShadowNode, win: &BTreeMap<NodeId, (u64, u64, u64)>| -> u64 {
            if eligible.is_some_and(|set| !set.contains(&sn.id)) {
                return 0;
            }
            let mut s = *sn;
            if let Some(&(c, m, g)) = win.get(&sn.id) {
                s.free_cores = s.free_cores.saturating_sub(c as u32);
                s.free_mem_mib = s.free_mem_mib.saturating_sub(m);
                s.free_gpus = s.free_gpus.saturating_sub(g as u32);
                // A reserved slice makes the node non-idle for
                // exclusive-style admission.
                s.jobs += 1;
            }
            s.fit(&spec, policy)
        };
        let mut fits: Vec<u64> = Vec::new();
        let mut total = 0u64;
        let mut applied = 0usize;
        let mut win_end = 0usize;
        let mut planned: Option<Reservation> = None;
        for (ai, &t) in anchors.iter().enumerate() {
            let window_end = t + spec.time_limit;
            while applied < deltas.len() && deltas[applied].at <= t {
                let d = deltas[applied];
                if let Ok(i) = snodes.binary_search_by_key(&d.node, |sn| sn.id) {
                    // Leaving the window overlay (if it was a claim
                    // that had been counted as "future").
                    if d.cores < 0 && applied < win_end {
                        if let Some(w) = win.get_mut(&d.node) {
                            w.0 -= (-d.cores) as u64;
                            w.1 -= (-d.mem) as u64;
                            w.2 -= (-d.gpus) as u64;
                            if *w == (0, 0, 0) {
                                win.remove(&d.node);
                            }
                        }
                    }
                    let sn = &mut snodes[i];
                    sn.free_cores = (sn.free_cores as i64 + d.cores).max(0) as u32;
                    sn.free_mem_mib = (sn.free_mem_mib as i64 + d.mem).max(0) as u64;
                    sn.free_gpus = (sn.free_gpus as i64 + d.gpus).max(0) as u32;
                    if d.cores > 0 && sn.jobs > 0 {
                        sn.jobs -= 1;
                        if sn.jobs == 0 {
                            sn.owner = None;
                        }
                    } else if d.cores < 0 {
                        sn.jobs += 1;
                    }
                    if !fits.is_empty() {
                        let f = fit_with(&snodes[i], &win);
                        total = total + f - fits[i];
                        fits[i] = f;
                    }
                }
                applied += 1;
                win_end = win_end.max(applied);
            }
            // New future claims entering the window's far edge.
            while win_end < deltas.len() && deltas[win_end].at < window_end {
                let d = deltas[win_end];
                if d.cores < 0 {
                    if let Ok(i) = snodes.binary_search_by_key(&d.node, |sn| sn.id) {
                        let w = win.entry(d.node).or_insert((0, 0, 0));
                        w.0 += (-d.cores) as u64;
                        w.1 += (-d.mem) as u64;
                        w.2 += (-d.gpus) as u64;
                        if !fits.is_empty() {
                            let f = fit_with(&snodes[i], &win);
                            total = total + f - fits[i];
                            fits[i] = f;
                        }
                    }
                }
                win_end += 1;
            }
            if ai == 0 {
                // One full pass to seed the incremental fits.
                fits = snodes.iter().map(|sn| fit_with(sn, &win)).collect();
                total = fits.iter().sum();
            }
            if total < needed {
                continue;
            }
            let fit_at = |sn: &ShadowNode| -> u64 { fit_with(sn, &win) };
            // Feasible: pick the concrete allocation greedily in id
            // order against the window-minimum capacity.
            let mut remaining = spec.tasks;
            let mut allocs: Vec<(NodeId, TaskAlloc)> = Vec::new();
            for sn in &snodes {
                if remaining == 0 {
                    break;
                }
                let fit = (fit_at(sn) as u32).min(remaining);
                if fit == 0 {
                    continue;
                }
                let alloc = if policy.charges_whole_node(&spec) {
                    let node = &self.nodes[&sn.id];
                    TaskAlloc {
                        tasks: fit,
                        cores: node.cores,
                        mem_mib: node.mem_mib,
                        gpus: node.gpus,
                    }
                } else {
                    TaskAlloc {
                        tasks: fit,
                        cores: fit * spec.cpus_per_task,
                        mem_mib: fit as u64 * spec.mem_per_task_mib,
                        gpus: fit * spec.gpus_per_task,
                    }
                };
                allocs.push((sn.id, alloc));
                remaining -= fit;
            }
            debug_assert_eq!(remaining, 0, "fit-sum promised a full placement");
            planned = Some(Reservation {
                job,
                user: spec.user,
                start: t,
                end: window_end,
                allocs,
            });
            break;
        }
        planned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(policy: NodeSharing, nodes: u32, cores: u32) -> Scheduler {
        let mut s = Scheduler::new(SchedConfig {
            policy,
            ..SchedConfig::default()
        });
        for _ in 0..nodes {
            s.add_node(cores, 64_000, 0);
        }
        s
    }

    fn job(user: u32, tasks: u32, secs: u64) -> JobSpec {
        JobSpec::new(
            Uid(user),
            format!("u{user}-job"),
            SimDuration::from_secs(secs),
        )
        .with_tasks(tasks)
        .with_mem_per_task(100)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        let id = s.submit_at(SimTime::from_secs(1), job(1, 4, 10));
        let end = s.run_to_completion();
        assert_eq!(end, SimTime::from_secs(11));
        let j = &s.jobs[&id];
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.started, Some(SimTime::from_secs(1)));
        assert_eq!(s.metrics.completed.get(), 1);
        assert!(s.nodes.values().all(|n| n.is_idle()));
    }

    #[test]
    fn shared_packs_two_users_on_one_node() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 2, "both fit simultaneously");
    }

    #[test]
    fn whole_node_serializes_different_users_on_one_node() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 4, 10));
        let b = s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 1, "second user must wait");
        let end = s.run_to_completion();
        assert_eq!(end, SimTime::from_secs(20));
        assert_eq!(s.jobs[&a].state, JobState::Completed);
        assert_eq!(s.jobs[&b].started, Some(SimTime::from_secs(10)));
    }

    #[test]
    fn whole_node_packs_same_user() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.running_count(), 2, "same user's jobs co-schedule");
    }

    #[test]
    fn exclusive_charges_whole_node() {
        let mut s = sched(NodeSharing::Exclusive, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.submit_at(SimTime::ZERO, job(1, 1, 10));
        s.run_until(SimTime::from_secs(1));
        // Two nodes → two exclusive jobs; the third waits even though cores
        // are plentiful.
        assert_eq!(s.running_count(), 2);
        assert_eq!(s.pending_count(), 1);
        // Utilization is charged for the whole node.
        assert_eq!(s.metrics.busy_cores.current(), 16.0);
    }

    #[test]
    fn multi_node_job_spreads() {
        let mut s = sched(NodeSharing::Shared, 3, 4);
        let id = s.submit_at(SimTime::ZERO, job(1, 10, 5));
        s.run_until(SimTime::from_secs(1));
        let j = &s.jobs[&id];
        assert_eq!(j.state, JobState::Running);
        assert_eq!(j.allocations.len(), 3);
        let tasks: u32 = j.allocations.values().map(|a| a.tasks).sum();
        assert_eq!(tasks, 10);
    }

    #[test]
    fn job_too_big_never_starts() {
        let mut s = sched(NodeSharing::Shared, 1, 4);
        let id = s.submit_at(SimTime::ZERO, job(1, 100, 5));
        s.run_until(SimTime::from_secs(100));
        assert_eq!(s.jobs[&id].state, JobState::Pending);
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn backfill_fills_hole_without_delaying_head() {
        // 8-core node, fully busy 100s; head (8 cores) must wait to t=100; a
        // tiny 2-core job cannot start either (node full) and, once the head
        // takes the whole node at t=100, waits for the head too.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 8, 100)); // fills the node
        let head = s.submit_at(SimTime::from_secs(1), job(2, 8, 50)); // must wait to t=100
        let small = s.submit_at(SimTime::from_secs(2), job(3, 8, 99).with_cpus_per_task(0));
        s.cancel(small);
        let tiny = s.submit_at(SimTime::from_secs(2), job(3, 2, 10));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.running_count(), 1);
        s.run_to_completion();
        assert_eq!(s.jobs[&head].started, Some(SimTime::from_secs(100)));
        assert_eq!(s.jobs[&tiny].started, Some(SimTime::from_secs(150)));
    }

    #[test]
    fn backfill_true_hole_filling() {
        // Node of 8 cores: job A (6 cores, 100s) leaves a 2-core hole.
        // Head job B needs 8 cores → shadow = 100. Candidate C (2 cores,
        // 50s) fits the hole and ends at ~52 < 100 → backfills.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 6, 100));
        let b = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        let c = s.submit_at(SimTime::from_secs(2), job(3, 2, 50));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.jobs[&a].state, JobState::Running);
        assert_eq!(s.jobs[&b].state, JobState::Pending, "head waits");
        assert_eq!(s.jobs[&c].state, JobState::Running, "C backfilled");
        s.run_to_completion();
        assert_eq!(
            s.jobs[&b].started,
            Some(SimTime::from_secs(100)),
            "head not delayed by backfill"
        );
    }

    #[test]
    fn backfill_refuses_delaying_candidates() {
        // Same setup but C runs 200s > shadow → must NOT backfill.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 6, 100));
        let b = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        let c = s.submit_at(SimTime::from_secs(2), job(3, 2, 200));
        s.run_until(SimTime::from_secs(3));
        assert_eq!(s.jobs[&c].state, JobState::Pending, "would delay head");
        s.run_to_completion();
        assert_eq!(s.jobs[&b].started, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn node_failure_kills_jobs_and_repairs() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        let a = s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        let bjob = s.submit_at(SimTime::ZERO, job(2, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        // Both jobs were packed onto node 1 (first fit) in shared mode.
        assert_eq!(s.jobs[&a].state, JobState::Failed);
        assert_eq!(s.jobs[&bjob].state, JobState::Failed);
        assert_eq!(s.failures.len(), 1);
        assert_eq!(s.failures[0].affected_users().len(), 2, "blast radius 2");
        assert_eq!(s.metrics.failed.get(), 2);
        // Node repairs after repair_time (600s default).
        s.run_until(SimTime::from_secs(700));
        assert_eq!(s.nodes[&NodeId(1)].state, NodeState::Up);
    }

    #[test]
    fn whole_node_failure_blast_radius_is_one_user() {
        let mut s = sched(NodeSharing::WholeNodeUser, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        s.submit_at(SimTime::ZERO, job(2, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        assert_eq!(
            s.failures[0].affected_users().len(),
            1,
            "only node 1's owner"
        );
    }

    #[test]
    fn failed_node_rejoins_scheduling_after_repair() {
        // Regression for the placement index: a repaired node must re-enter
        // the idle/avail candidate sets and accept work again.
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 1000));
        s.schedule_node_failure(SimTime::from_secs(10), NodeId(1));
        s.run_until(SimTime::from_secs(11));
        let late = s.submit_at(SimTime::from_secs(20), job(2, 4, 10));
        s.run_until(SimTime::from_secs(21));
        assert_eq!(s.jobs[&late].state, JobState::Pending, "node still down");
        s.run_to_completion();
        assert_eq!(
            s.jobs[&late].started,
            Some(SimTime::from_secs(610)),
            "starts at repair (10s failure + 600s repair_time)"
        );
    }

    #[test]
    fn epilogs_emitted_with_user_departure_flag() {
        let mut s = sched(NodeSharing::WholeNodeUser, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 2, 10));
        s.submit_at(SimTime::ZERO, job(1, 2, 20));
        s.run_to_completion();
        let epilogs = s.drain_epilogs();
        assert_eq!(epilogs.len(), 2);
        // First job ends at t=10 while the second still runs.
        assert!(epilogs[0].user_still_active_on_node);
        // Second ending leaves the node empty of that user.
        assert!(!epilogs[1].user_still_active_on_node);
        assert!(s.drain_epilogs().is_empty(), "drain empties");
    }

    #[test]
    fn squeue_respects_private_data() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.config.private_data = PrivateData::llsc();
        s.add_admin(Uid(50));
        s.submit_at(SimTime::ZERO, job(1, 1, 100));
        s.submit_at(SimTime::ZERO, job(2, 1, 100));
        s.run_until(SimTime::from_secs(1));

        let u1 = Credentials::new(Uid(1), eus_simos::Gid(1));
        let views = s.squeue(&u1);
        assert_eq!(views.len(), 1, "only own jobs");
        assert_eq!(views[0].user, Uid(1));
        assert_eq!(views[0].name(), "u1-job");

        let admin = Credentials::new(Uid(50), eus_simos::Gid(50));
        assert_eq!(s.squeue(&admin).len(), 2, "admins see all");
        assert_eq!(s.squeue(&Credentials::root()).len(), 2);

        s.config.private_data = PrivateData::open();
        assert_eq!(s.squeue(&u1).len(), 2, "open config shows all");
    }

    #[test]
    fn cancel_only_pending() {
        let mut s = sched(NodeSharing::Shared, 1, 2);
        let a = s.submit_at(SimTime::ZERO, job(1, 2, 100));
        let b = s.submit_at(SimTime::ZERO, job(2, 2, 100));
        s.run_until(SimTime::from_secs(1));
        assert!(!s.cancel(a), "running job not cancellable here");
        assert!(s.cancel(b));
        assert_eq!(s.jobs[&b].state, JobState::Cancelled);
        assert!(!s.cancel(b), "idempotent");
    }

    #[test]
    fn utilization_math() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.submit_at(SimTime::ZERO, job(1, 8, 50));
        s.run_until(SimTime::from_secs(100));
        // 8 cores × 50 s busy out of 8 × 100 capacity = 0.5.
        assert!((s.utilization() - 0.5).abs() < 1e-9, "{}", s.utilization());
    }

    #[test]
    fn wall_time_limit_enforced() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        // Actual runtime 100s, requested limit 30s: killed at 30.
        let j = s.submit_at(
            SimTime::ZERO,
            job(1, 2, 100).with_time_limit(SimDuration::from_secs(30)),
        );
        // A well-behaved job for contrast.
        let ok = s.submit_at(SimTime::ZERO, job(2, 2, 20));
        s.run_to_completion();
        assert_eq!(s.jobs[&j].state, JobState::Timeout);
        assert_eq!(s.jobs[&j].ended, Some(SimTime::from_secs(30)));
        assert_eq!(s.jobs[&ok].state, JobState::Completed);
        assert_eq!(s.metrics.timed_out.get(), 1);
        assert_eq!(s.metrics.completed.get(), 1);
        // Resources released at the limit, not the would-be duration.
        assert!(s.nodes.values().all(|n| n.is_idle()));
    }

    #[test]
    fn partition_confines_placement() {
        let mut s = sched(NodeSharing::Shared, 4, 8);
        s.partitions_mut()
            .add("batch", [NodeId(1), NodeId(2)], true)
            .unwrap();
        s.partitions_mut().add("debug", [NodeId(3)], false).unwrap();
        // Default-partition job lands on nodes 1-2 only, even when 3-4 idle.
        let a = s.submit_at(SimTime::ZERO, job(1, 16, 10)); // needs 2 nodes
                                                            // Debug job lands on node 3.
        let d = s.submit_at(SimTime::ZERO, job(2, 2, 10).with_partition("debug"));
        s.run_until(SimTime::from_secs(1));
        let a_nodes: Vec<NodeId> = s.jobs[&a].allocations.keys().copied().collect();
        assert_eq!(a_nodes, vec![NodeId(1), NodeId(2)]);
        let d_nodes: Vec<NodeId> = s.jobs[&d].allocations.keys().copied().collect();
        assert_eq!(d_nodes, vec![NodeId(3)]);
        // Node 4 belongs to no partition: never used.
        assert!(s.nodes[&NodeId(4)].is_idle());
    }

    #[test]
    fn partition_queues_when_full_despite_free_foreign_nodes() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.partitions_mut().add("small", [NodeId(1)], true).unwrap();
        s.submit_at(SimTime::ZERO, job(1, 8, 100));
        let waiting = s.submit_at(SimTime::ZERO, job(2, 8, 10));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(
            s.jobs[&waiting].state,
            JobState::Pending,
            "node 2 is off-limits"
        );
        s.run_to_completion();
        assert_eq!(s.jobs[&waiting].started, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn unknown_partition_rejected_at_submit() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.partitions_mut().add("batch", [NodeId(1)], true).unwrap();
        let id = s.submit_at(SimTime::ZERO, job(1, 1, 10).with_partition("nope"));
        assert_eq!(s.jobs[&id].state, JobState::Cancelled);
        s.run_to_completion();
        assert_eq!(s.jobs[&id].state, JobState::Cancelled);
        assert_eq!(s.metrics.completed.get(), 0);
    }

    // ------------------------------------------------------------------
    // Policy plane
    // ------------------------------------------------------------------

    use crate::job::QosClass;

    #[test]
    fn policy_plane_defaults_off() {
        let c = SchedConfig::default();
        assert!(!c.policy_plane_active());
        assert!(SchedConfig {
            reservations: 4,
            ..SchedConfig::default()
        }
        .policy_plane_active());
    }

    #[test]
    fn urgent_head_preempts_bulk_and_victim_requeues() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            preemption: true,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        // Bulk fills the node for 1000 s.
        let bulk = s.submit_at(SimTime::ZERO, job(1, 8, 1000).with_qos(QosClass::Bulk));
        // Urgent 4-task job arrives at t=10.
        let urgent = s.submit_at(
            SimTime::from_secs(10),
            job(2, 4, 50).with_qos(QosClass::Urgent),
        );
        s.run_until(SimTime::from_secs(11));
        assert_eq!(s.jobs[&urgent].state, JobState::Running, "preempted in");
        assert_eq!(s.jobs[&urgent].started, Some(SimTime::from_secs(10)));
        assert_eq!(s.jobs[&bulk].state, JobState::Pending, "requeued");
        assert_eq!(s.preemptions.len(), 1);
        assert_eq!(s.preemptions[0].victim, bulk);
        assert_eq!(s.preemptions[0].preempted_by, urgent);
        // The victim's separation epilog fired at preemption time.
        let epilogs = s.drain_epilogs();
        assert!(epilogs
            .iter()
            .any(|e| e.job == bulk && e.at == SimTime::from_secs(10)));
        // The victim reruns after the urgent job and completes; its stale
        // end event (t=1000 from the killed run) must not truncate it.
        let end = s.run_to_completion();
        assert_eq!(s.jobs[&bulk].state, JobState::Completed);
        assert_eq!(s.jobs[&bulk].started, Some(SimTime::from_secs(60)));
        assert_eq!(end, SimTime::from_secs(1060), "full 1000 s rerun");
        assert_eq!(s.metrics.completed.get(), 2);
    }

    #[test]
    fn normal_class_never_preempts_and_off_knob_ignores_qos() {
        // Normal-class head: blocked, no preemption even over Bulk.
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            preemption: true,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(SimTime::ZERO, job(1, 8, 100).with_qos(QosClass::Bulk));
        let normal = s.submit_at(SimTime::from_secs(1), job(2, 8, 10));
        s.run_until(SimTime::from_secs(2));
        assert_eq!(s.jobs[&normal].state, JobState::Pending);
        assert!(s.preemptions.is_empty());

        // Urgent head with the knob OFF: waits like anyone else.
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(SimTime::ZERO, job(1, 8, 100).with_qos(QosClass::Bulk));
        let urgent = s.submit_at(
            SimTime::from_secs(1),
            job(2, 8, 10).with_qos(QosClass::Urgent),
        );
        s.run_until(SimTime::from_secs(2));
        assert_eq!(s.jobs[&urgent].state, JobState::Pending, "qos ignored");
        assert!(s.preemptions.is_empty());
    }

    #[test]
    fn urgent_arrival_jumps_a_deep_backlog_and_preempts() {
        // The urgent job is nowhere near the FIFO head — with preemption
        // on, dispatch is QoS-band-major, so it surfaces immediately.
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            preemption: true,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(SimTime::ZERO, job(1, 8, 5000).with_qos(QosClass::Bulk));
        for _ in 0..40 {
            s.submit_at(SimTime::ZERO, job(1, 8, 1000).with_qos(QosClass::Bulk));
        }
        let urgent = s.submit_at(
            SimTime::from_secs(30),
            job(2, 4, 60).with_qos(QosClass::Urgent),
        );
        s.run_until(SimTime::from_secs(31));
        assert_eq!(s.jobs[&urgent].state, JobState::Running);
        assert_eq!(s.jobs[&urgent].started, Some(SimTime::from_secs(30)));
        assert_eq!(s.preemptions.len(), 1);
    }

    #[test]
    fn preemption_kills_cheapest_victims_only() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            preemption: true,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.add_node(8, 64_000, 0);
        // Expensive victim: 8 cores × long remaining. Cheap victim: 8 × short.
        let expensive = s.submit_at(SimTime::ZERO, job(1, 8, 10_000).with_qos(QosClass::Bulk));
        let cheap = s.submit_at(SimTime::ZERO, job(2, 8, 500).with_qos(QosClass::Bulk));
        // Interactive job needs one node's worth.
        let inter = s.submit_at(
            SimTime::from_secs(5),
            job(3, 8, 60).with_qos(QosClass::Interactive),
        );
        s.run_until(SimTime::from_secs(6));
        assert_eq!(s.jobs[&inter].state, JobState::Running);
        assert_eq!(s.preemptions.len(), 1, "one victim sufficed");
        assert_eq!(s.preemptions[0].victim, cheap, "cheapest remaining work");
        assert_eq!(s.jobs[&expensive].state, JobState::Running, "spared");
    }

    #[test]
    fn fair_share_unblocks_backlogged_partitions() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            fair_share: true,
            backfill_depth: 2, // tiny budget: global FCFS would starve "debug"
            ..SchedConfig::default()
        });
        for _ in 0..2 {
            s.add_node(8, 64_000, 0);
        }
        s.partitions_mut().add("batch", [NodeId(1)], true).unwrap();
        s.partitions_mut().add("debug", [NodeId(2)], false).unwrap();
        // Deep batch backlog ahead of the debug job in global order.
        for i in 0..50 {
            s.submit_at(SimTime::ZERO, job(1, 8, 1000 + i));
        }
        let debug_job = s.submit_at(SimTime::from_secs(1), job(2, 4, 10).with_partition("debug"));
        s.run_until(SimTime::from_secs(2));
        assert_eq!(
            s.jobs[&debug_job].state,
            JobState::Running,
            "debug partition schedules despite the batch backlog"
        );
    }

    #[test]
    fn fair_share_orders_by_decayed_usage() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            fair_share: true,
            backfill: false,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        // User 1 burns the node; then both users queue a full-node job,
        // user 1 first. FIFO would run u1; fair-share runs u2 first.
        s.submit_at(SimTime::ZERO, job(1, 8, 100));
        let u1_next = s.submit_at(SimTime::from_secs(1), job(1, 8, 10));
        let u2_first = s.submit_at(SimTime::from_secs(2), job(2, 8, 10));
        s.run_to_completion();
        assert_eq!(s.jobs[&u2_first].started, Some(SimTime::from_secs(100)));
        assert_eq!(s.jobs[&u1_next].started, Some(SimTime::from_secs(110)));
        let ledger = s.fair_share_ledger();
        assert!(
            ledger.score("", Uid(1)) > ledger.score("", Uid(2)),
            "heavier user carries more decayed usage"
        );
    }

    #[test]
    fn reservations_answer_earliest_start_and_stay_conservative() {
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            reservations: 4,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        // Running job holds the node until t=100.
        s.submit_at(SimTime::ZERO, job(1, 8, 100));
        // Two full-node jobs queue behind it.
        let second = s.submit_at(SimTime::from_secs(1), job(2, 8, 50));
        let third = s.submit_at(SimTime::from_secs(2), job(3, 8, 30));
        s.run_until(SimTime::from_secs(3));
        // The calendar plans them back to back.
        assert_eq!(s.earliest_start(second), Some(SimTime::from_secs(100)));
        assert_eq!(s.earliest_start(third), Some(SimTime::from_secs(150)));
        let held = s.held_reservations();
        assert_eq!(held.len(), 2);
        // No double-booked cores at any overlap: the two reservations are
        // disjoint in time on the single node.
        assert!(held[0].end <= held[1].start || held[1].end <= held[0].start);
        s.run_to_completion();
        assert_eq!(s.jobs[&second].started, Some(SimTime::from_secs(100)));
        assert_eq!(s.jobs[&third].started, Some(SimTime::from_secs(150)));
    }

    #[test]
    fn conservative_backfill_protects_second_reservation() {
        // EASY protects only the head; conservative backfill must also
        // protect reservation #2. Node A busy to t=100 (head wants it);
        // node B busy to t=50, reservation #2 wants node B at t=50. A
        // 2-core 500 s filler fits node B *now* and would end after t=50:
        // EASY admits it (head's shadow is node A's t=100 — no, shadow
        // would be 50 if head fits B... so head is sized to need A+B).
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            reservations: 4,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0); // A
        s.add_node(8, 64_000, 0); // B
        s.submit_at(SimTime::ZERO, job(1, 8, 100)); // fills A
        s.submit_at(SimTime::ZERO, job(2, 6, 50)); // fills 6/8 of B
                                                   // Head needs 10 cores → both nodes → shadow t=100.
        let head = s.submit_at(SimTime::from_secs(1), job(3, 10, 20));
        // Second-in-line wants a full node at t=50 (B frees first).
        let second = s.submit_at(SimTime::from_secs(2), job(4, 8, 10));
        // Filler: 2 cores, 30 s — fits B's hole now, ends t≈33 < 50: fine.
        let ok_filler = s.submit_at(SimTime::from_secs(3), job(5, 2, 30));
        // Greedy filler: 2 cores, 60 s — fits B's hole now, ends t≈64 > 50:
        // would sit on capacity reserved for `second` at t=50.
        let bad_filler = s.submit_at(SimTime::from_secs(4), job(6, 2, 60));
        s.run_until(SimTime::from_secs(5));
        assert_eq!(s.jobs[&head].state, JobState::Pending);
        assert_eq!(s.jobs[&ok_filler].state, JobState::Running, "harmless");
        assert_eq!(
            s.jobs[&bad_filler].state,
            JobState::Pending,
            "would collide with the second reservation"
        );
        s.run_to_completion();
        // `second` was not delayed past its planned start window.
        assert!(s.jobs[&second].started.unwrap() <= SimTime::from_secs(50));
    }

    #[test]
    fn pam_slurm_query_surface() {
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 1, 100));
        s.run_until(SimTime::from_secs(1));
        assert!(s.has_running_job_on(Uid(1), NodeId(1)));
        assert!(!s.has_running_job_on(Uid(1), NodeId(2)));
        assert!(!s.has_running_job_on(Uid(2), NodeId(1)));
    }

    #[test]
    fn obs_disabled_by_default_and_enabled_records_phases() {
        // Disabled: a full run records nothing, retains no events.
        let mut s = sched(NodeSharing::Shared, 2, 8);
        s.submit_at(SimTime::ZERO, job(1, 4, 10));
        s.submit_at(SimTime::ZERO, job(2, 4, 10));
        s.run_to_completion();
        assert!(!s.obs.rec.enabled());
        assert_eq!(s.obs.rec.counter_value(s.obs.c_starts), 0);
        assert!(s.obs.rec.flight.is_empty());

        // Enabled: the same trace leaves starts/finishes, span entries,
        // and a flight-recorder trail — and the scheduling outcome is
        // identical (observability must not perturb decisions).
        let mut e = sched(NodeSharing::Shared, 2, 8);
        e.enable_obs(eus_obs::ObsConfig::enabled());
        let a = e.submit_at(SimTime::ZERO, job(1, 4, 10));
        let b = e.submit_at(SimTime::ZERO, job(2, 4, 10));
        let end = e.run_to_completion();
        assert_eq!(end, SimTime::from_secs(10));
        assert_eq!(e.jobs[&a].state, JobState::Completed);
        assert_eq!(e.jobs[&b].state, JobState::Completed);
        assert_eq!(e.obs.rec.counter_value(e.obs.c_starts), 2);
        assert_eq!(e.obs.rec.counter_value(e.obs.c_finishes), 2);
        let kinds: Vec<&str> = e.obs.rec.flight.events().iter().map(|ev| ev.kind).collect();
        assert!(kinds.contains(&"job.submit"));
        assert!(kinds.contains(&"job.start"));
        assert!(kinds.contains(&"job.end"));
        let snap = e.obs.snapshot();
        assert!(snap.span("sched.cycle.dispatch").unwrap().count > 0);
        assert!(snap.to_json().contains("sched.jobs.starts"));
    }

    #[test]
    fn obs_counts_backfill_and_shadow_memo() {
        let mut s = sched(NodeSharing::Shared, 1, 8);
        s.enable_obs(eus_obs::ObsConfig::enabled());
        // Head blocks (needs more cores than are free), filler backfills
        // into the one-core hole.
        s.submit_at(SimTime::ZERO, job(1, 7, 100));
        s.submit_at(SimTime::from_secs(1), job(2, 8, 50)); // blocked head
        s.submit_at(SimTime::from_secs(2), job(3, 1, 10)); // backfill candidate
        s.run_until(SimTime::from_secs(3));
        assert!(s.obs.rec.counter_value(s.obs.c_bf_attempts) >= 1);
        assert!(s.obs.rec.counter_value(s.obs.c_bf_accepts) >= 1);
        // The arrival at t=2 re-fires the cycle with node state untouched:
        // both the head-fail and shadow memos must have hit at least once.
        assert!(s.obs.rec.counter_value(s.obs.c_head_memo_hit) >= 1);
        assert!(s.obs.rec.counter_value(s.obs.c_shadow_memo_hit) >= 1);
        assert!(s.obs.shadow_memo_ratio() > 0.0);
    }

    #[test]
    fn earliest_start_beyond_top_k_is_reservation_backed() {
        // One 8-core node; K=1 so only the head gets a standing
        // reservation. Three FIFO jobs, each filling the node for 100 s:
        // the optimistic single-job shadow would answer t=100 for BOTH
        // queued jobs, but the probe plan must charge the head's hold and
        // answer t=200 for the job behind it.
        let mut s = Scheduler::new(SchedConfig {
            policy: NodeSharing::Shared,
            reservations: 1,
            ..SchedConfig::default()
        });
        s.add_node(8, 64_000, 0);
        s.submit_at(SimTime::ZERO, job(1, 8, 100)); // runs now
        let second = s.submit_at(SimTime::ZERO, job(2, 8, 100)); // head (top-K)
        let third = s.submit_at(SimTime::ZERO, job(3, 8, 100)); // beyond top-K
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.earliest_start(second), Some(SimTime::from_secs(100)));
        assert_eq!(
            s.earliest_start(third),
            Some(SimTime::from_secs(200)),
            "beyond-top-K answer must account for the held reservation"
        );
        s.enable_obs(eus_obs::ObsConfig::enabled());
        let _ = s.earliest_start(third);
        assert_eq!(s.obs.rec.counter_value(s.obs.c_cal_probes), 1);
        // The probe held nothing: the calendar still covers only the head.
        assert_eq!(s.held_reservations().len(), 1);
        // And the probe answer is consistent with what actually happens.
        s.run_to_completion();
        assert_eq!(s.jobs[&third].started, Some(SimTime::from_secs(200)));
    }
}
