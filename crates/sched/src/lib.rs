//! # eus-sched — Slurm-like scheduler with user-separation policies
//!
//! Implements the scheduler half of the paper (Sec. IV-B):
//!
//! * [`policy::NodeSharing`] — the three node-sharing policies the paper
//!   contrasts: default **shared** nodes, per-job **exclusive** allocation,
//!   and LLSC's **whole-node user-based** policy (one user per node at any
//!   instant, intra-user packing preserved),
//! * [`engine::Scheduler`] — FCFS + EASY backfill over those policies, on an
//!   internal discrete-event clock, with utilization/wait metrics,
//!   node-failure injection ([`engine::FailureRecord`] measures the "blast
//!   radius" of Sec. IV-B/V), and epilog emission ([`engine::EpilogEvent`])
//!   for the GPU-scrub and cleanup duties of Sec. IV-F,
//! * [`privatedata`] / [`accounting`] — `PrivateData`-filtered `squeue` and
//!   `sacct` views,
//! * [`pam_slurm`] — ssh-only-where-your-job-runs, as a PAM module over a
//!   shared scheduler handle.

#![warn(missing_docs)]

pub mod accounting;
pub mod engine;
pub mod job;
pub mod node;
pub mod pam_slurm;
pub mod partition;
pub mod policy;
pub mod privatedata;

pub use accounting::{AcctRecord, UserUsage};
pub use engine::{EpilogEvent, FailureRecord, SchedConfig, SchedMetrics, Scheduler};
pub use job::{Job, JobId, JobKind, JobSpec, JobState, TaskAlloc};
pub use node::{NodeState, SchedNode};
pub use pam_slurm::{shared_scheduler, PamSlurm, SharedScheduler};
pub use partition::{Partition, PartitionError, PartitionTable};
pub use policy::{tasks_that_fit, NodeSharing};
pub use privatedata::{may_view, JobView, PrivateData};
