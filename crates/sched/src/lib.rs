//! # eus-sched — Slurm-like scheduler with user-separation policies
//!
//! Implements the scheduler half of the paper (Sec. IV-B):
//!
//! * [`policy::NodeSharing`] — the three node-sharing policies the paper
//!   contrasts: default **shared** nodes, per-job **exclusive** allocation,
//!   and LLSC's **whole-node user-based** policy (one user per node at any
//!   instant, intra-user packing preserved),
//! * [`engine::Scheduler`] — FCFS + EASY backfill over those policies, on an
//!   internal discrete-event clock, with utilization/wait metrics,
//!   node-failure injection ([`engine::FailureRecord`] measures the "blast
//!   radius" of Sec. IV-B/V), and epilog emission ([`engine::EpilogEvent`])
//!   for the GPU-scrub and cleanup duties of Sec. IV-F,
//! * [`privatedata`] / [`accounting`] — `PrivateData`-filtered `squeue` and
//!   `sacct` views,
//! * [`pam_slurm`] — ssh-only-where-your-job-runs, as a PAM module over a
//!   shared scheduler handle.
//!
//! # Scheduler internals
//!
//! The engine's scheduling cycle is built on incremental data structures
//! rather than scan-the-world passes, so it holds up at 10k-node /
//! 100k-job scale (see the module docs on [`engine`] for the full story):
//!
//! * a **placement index** — per-user solely-owned node sets (packing
//!   affinity), the idle-node set, and the free-cores set — maintained on
//!   every claim/release, reproducing the old sorted candidate order
//!   without building it;
//! * an **allocation-free EASY shadow**: running-job releases replayed in
//!   end-time order over a flat per-node capacity vector with an
//!   incrementally-maintained total-fit sum and early exit, instead of
//!   cloning the node map and re-running full placement per release;
//! * an **order-indexed queue** (enqueue-seq `BTreeMap`) instead of a
//!   shifting `Vec`, and `Arc`-shared job specs instead of per-cycle deep
//!   clones.
//!
//! The pre-overhaul engine is retained in [`mod@reference`] as the oracle for
//! `tests/sched_equivalence.rs` and the baseline for
//! `benches/sched_throughput.rs` / `exp_sched_scale`.
//!
//! # The policy plane
//!
//! Three opt-in [`engine::SchedConfig`] knobs — all **off** by default, in
//! which case the engine is observationally identical to [`mod@reference`]:
//!
//! * `fair_share` — per-partition queues ordered by a decayed
//!   per-user/per-partition usage ledger ([`accounting::FairShareLedger`]),
//!   so one partition's backlog cannot starve another's dispatch or
//!   backfill, and heavy recent users yield to light ones;
//! * `preemption` — jobs carry a [`job::QosClass`]; blocked
//!   latency-sensitive heads may kill-and-requeue strictly-lower-class
//!   work, with the full separation epilog (scrub, cleanup) between the
//!   victim and the new tenant ([`engine::PreemptionRecord`] is the audit
//!   trail);
//! * `reservations = K` — the EASY shadow generalizes into a
//!   [`calendar::ReservationCalendar`]: planned starts (with concrete
//!   capacity holds) for the top-K queued jobs, an
//!   [`engine::Scheduler::earliest_start`] answer for any job, and
//!   *conservative* backfill that refuses to collide with any held
//!   reservation.
//!
//! `exp_sched_policy` measures the plane (interactive-vs-bulk preemption
//! storm, multi-partition fairness storm); `tests/sched_policy_properties.rs`
//! property-checks its separation invariants.

#![warn(missing_docs)]

pub mod accounting;
pub mod calendar;
pub mod engine;
pub mod job;
pub mod node;
pub mod obs;
pub mod pam_slurm;
pub mod partition;
pub mod policy;
pub mod privatedata;
pub mod reference;
pub mod table;

pub use accounting::{AcctRecord, FairShareLedger, UserUsage, FAIR_SHARE_HALF_LIFE};
pub use calendar::{Reservation, ReservationCalendar};
pub use engine::{
    EpilogEvent, FailureRecord, PreemptionRecord, SchedConfig, SchedMetrics, Scheduler,
};
pub use job::{Job, JobId, JobKind, JobSpec, JobState, QosClass, TaskAlloc};
pub use node::{NodeState, SchedNode};
pub use obs::SchedObs;
pub use pam_slurm::{shared_scheduler, PamSlurm, SharedScheduler};
pub use partition::{Partition, PartitionError, PartitionTable};
pub use policy::{tasks_that_fit, NodeSharing};
pub use privatedata::{may_view, JobView, PrivateData};
pub use reference::ReferenceScheduler;
pub use table::{NodeCols, NodeSet, NodeTable};
