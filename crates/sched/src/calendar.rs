//! The reservation calendar: conservative-backfill bookkeeping.
//!
//! EASY backfill (PR 4's shadow) protects exactly one job — the queue head
//! — from being delayed by opportunistic backfill. The calendar generalizes
//! that: with `SchedConfig::reservations = K > 0`, the engine plans the
//! **top-K queued jobs** forward in time over the same flat capacity
//! vectors the shadow uses, producing one [`Reservation`] per job — an
//! earliest start, an end bound (`start + time_limit`), and the concrete
//! per-node allocation held for it. That turns the scheduler's "when will
//! my job run?" question ([`crate::engine::Scheduler::earliest_start`])
//! into a table lookup, and turns backfill *conservative*: a candidate may
//! start only if it cannot collide with **any** held reservation, not just
//! the head's shadow.
//!
//! # Construction invariant — no double-booked cores
//!
//! Reservations are placed sequentially in dispatch order against a
//! capacity profile that already contains (a) running jobs' releases at
//! their expected end times and (b) every earlier reservation's claim and
//! release. Feasibility at an anchor time `t` is judged against each
//! node's **minimum** free capacity over the whole window
//! `[t, t + time_limit)` — future claims inside the window are subtracted
//! up front, and releases inside the window are ignored (that is the
//! "conservative" in conservative backfill). A core is therefore never
//! promised to two reservations at an overlapping instant;
//! `tests/sched_policy_properties.rs` re-derives the invariant externally
//! over random traces.
//!
//! Ownership semantics (`WholeNodeUser`) are enforced at *dispatch* time by
//! real placement, not by the calendar — a reservation is a capacity hold
//! and a start-time answer, and may be optimistic about owner affinity.
//! Similarly, under fair-share each partition *plans* its calendar against
//! its own profile: with **overlapping** partitions (the Slurm
//! "all + subset" layout) two classes' plans may promise the same shared
//! node, in which case the later start is corrected at dispatch time (the
//! backfill collision test does consult every class's holds; only the
//! planned start estimates are optimistic). Disjoint partitions — the
//! layout fair-share queues are built for — plan exactly.
//! The calendar is rebuilt whenever the engine's state version moves (any
//! claim, release, failure, or repair) *or* the queue composition changes
//! (a new arrival deserves its reservation), so stale promises are never
//! consulted.
//!
//! Under sharded dispatch ([`crate::engine::Scheduler::set_shard_threads`])
//! calendars are never planned on shard workers: shard seeds carry only
//! the head's *immediate* placement walk, and every rebuild runs on the
//! sequential class merge. That keeps the `sched.calendar.*` counters
//! thread-invariant (see the table in [`crate::obs`]) and means this
//! module needs no synchronization despite the parallel plane above it.

use crate::job::{JobId, TaskAlloc};
use eus_simcore::SimTime;
use eus_simos::{NodeId, Uid};

/// One signed capacity transition in a planning profile: a running job's
/// release (+) or a reservation's claim (−) / release (+) on one node.
/// The engine builds a time-sorted `Vec<CapDelta>` per calendar rebuild
/// and retains it on the calendar so `earliest_start` can probe-plan
/// beyond-top-K jobs against the very same profile.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CapDelta {
    /// When the transition happens.
    pub(crate) at: SimTime,
    /// The node it happens on.
    pub(crate) node: NodeId,
    /// Core delta (claims negative).
    pub(crate) cores: i64,
    /// Memory delta, MiB (claims negative).
    pub(crate) mem: i64,
    /// GPU delta (claims negative).
    pub(crate) gpus: i64,
}

/// One planned future start: the calendar's row for a queued job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservation {
    /// The queued job this start is held for.
    pub job: JobId,
    /// Its owner (separation audits key on this).
    pub user: Uid,
    /// Planned start — the job's `earliest_start` answer.
    pub start: SimTime,
    /// Hold horizon: `start + time_limit` (the backfill bound).
    pub end: SimTime,
    /// Concrete capacity held per node.
    pub allocs: Vec<(NodeId, TaskAlloc)>,
}

impl Reservation {
    /// Does this reservation hold capacity on `node`?
    #[inline]
    pub fn holds_node(&self, node: NodeId) -> bool {
        self.allocs.iter().any(|(n, _)| *n == node)
    }

    /// Total cores held across nodes.
    pub fn total_cores(&self) -> u64 {
        self.allocs.iter().map(|(_, a)| a.cores as u64).sum()
    }
}

/// The held reservations for one scheduling class (a partition under
/// fair-share, or the whole queue otherwise), tagged with the engine state
/// version they were planned against.
#[derive(Debug, Clone, Default)]
pub struct ReservationCalendar {
    /// Planned starts, in dispatch (priority) order.
    pub reservations: Vec<Reservation>,
    /// Engine `(state_version, queue_seq)` the plan is valid for — any
    /// claim/release *or* arrival invalidates it; `None` = never built.
    pub(crate) built_version: Option<(u64, u64)>,
    /// The top-K job list the plan was derived from. If an arrival leaves
    /// this list unchanged (and no capacity moved), the standing plan is
    /// still exact and is re-tagged instead of re-derived.
    pub(crate) planned_for: Vec<JobId>,
    /// The final capacity-delta profile the plan settled on (running
    /// releases + every reservation's claim/release, time-sorted). Valid
    /// exactly as long as `built_version` matches; `earliest_start` plans
    /// one-off probes for beyond-top-K jobs against it.
    pub(crate) profile: Vec<CapDelta>,
}

impl ReservationCalendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of held reservations.
    pub fn len(&self) -> usize {
        self.reservations.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }

    /// The reservation held for `job`, if any.
    pub fn get(&self, job: JobId) -> Option<&Reservation> {
        self.reservations.iter().find(|r| r.job == job)
    }

    /// Would a job (`cand`) occupying `placement` until `cand_end` collide
    /// with any reservation held for a *different* job? See [`blocks_any`].
    pub fn blocks(
        &self,
        cand: JobId,
        placement: &[(NodeId, TaskAlloc)],
        cand_end: SimTime,
    ) -> bool {
        blocks_any(&self.reservations, cand, placement, cand_end)
    }
}

/// The conservative-backfill admission test over any set of holds: overlap
/// in both time (`r.start < cand_end`) and space (any shared node) is a
/// conflict — the candidate would sit on capacity promised away. The
/// engine's backfill scan calls this against a cross-class snapshot of
/// every held reservation.
pub fn blocks_any(
    holds: &[Reservation],
    cand: JobId,
    placement: &[(NodeId, TaskAlloc)],
    cand_end: SimTime,
) -> bool {
    holds.iter().any(|r| {
        r.job != cand && r.start < cand_end && placement.iter().any(|(n, _)| r.holds_node(*n))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(cores: u32) -> TaskAlloc {
        TaskAlloc {
            tasks: cores,
            cores,
            mem_mib: 1024,
            gpus: 0,
        }
    }

    fn res(job: u64, node: u32, start: u64, end: u64) -> Reservation {
        Reservation {
            job: JobId(job),
            user: Uid(1),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            allocs: vec![(NodeId(node), alloc(4))],
        }
    }

    #[test]
    fn conflict_requires_time_and_space_overlap() {
        let cal = ReservationCalendar {
            reservations: vec![res(1, 1, 100, 200)],
            built_version: Some((0, 0)),
            planned_for: vec![JobId(1)],
            profile: Vec::new(),
        };
        let placement = vec![(NodeId(1), alloc(2))];
        // Ends before the reservation starts: no conflict.
        assert!(!cal.blocks(JobId(9), &placement, SimTime::from_secs(100)));
        // Overlaps in time on the reserved node: conflict.
        assert!(cal.blocks(JobId(9), &placement, SimTime::from_secs(101)));
        // Overlaps in time on a different node: no conflict.
        let elsewhere = vec![(NodeId(2), alloc(2))];
        assert!(!cal.blocks(JobId(9), &elsewhere, SimTime::from_secs(500)));
        // A job never conflicts with its own reservation.
        assert!(!cal.blocks(JobId(1), &placement, SimTime::from_secs(500)));
    }

    #[test]
    fn lookup_and_totals() {
        let cal = ReservationCalendar {
            reservations: vec![res(1, 1, 100, 200), res(2, 2, 50, 80)],
            built_version: Some((3, 0)),
            planned_for: vec![JobId(1), JobId(2)],
            profile: Vec::new(),
        };
        assert_eq!(cal.len(), 2);
        assert!(!cal.is_empty());
        assert_eq!(cal.get(JobId(2)).unwrap().start, SimTime::from_secs(50));
        assert!(cal.get(JobId(7)).is_none());
        assert!(cal.get(JobId(1)).unwrap().holds_node(NodeId(1)));
        assert!(!cal.get(JobId(1)).unwrap().holds_node(NodeId(2)));
        assert_eq!(cal.get(JobId(1)).unwrap().total_cores(), 4);
    }
}
