//! Cache-native node storage for the scheduler core.
//!
//! [`NodeTable`] keeps every [`SchedNode`] in a dense `Vec` (node ids are
//! allocated sequentially from 1, so `slot = id.0 - 1`) and mirrors the
//! placement-relevant fields into struct-of-arrays columns: a candidate
//! scan that rejects a node on `free_cores` alone touches 4 bytes, not a
//! 200-byte struct behind a `BTreeMap` pointer chase. The columns are
//! refreshed through [`NodeTable::sync`], which the engine calls from the
//! same funnel that maintains the shadow mirror (`mirror_update`), so the
//! columns can never drift from the slots between scheduling decisions.
//!
//! [`NodeSet`] replaces the old `BTreeSet<NodeId>` idle/avail indexes with
//! a bitmap whose iteration order is still ascending node id — the
//! placement walk order (and therefore every trace) is unchanged from the
//! map-based engine, which is what keeps the equivalence suites green.

use crate::node::{NodeState, SchedNode};
use eus_simos::{NodeId, Uid};

/// Borrowed struct-of-arrays view over the node columns, for dense scans.
///
/// All slices share one length ([`NodeTable::len`]); slot `i` describes
/// `NodeId(i as u32 + 1)`.
#[derive(Debug, Clone, Copy)]
pub struct NodeCols<'a> {
    /// Unclaimed cores per slot.
    pub free_cores: &'a [u32],
    /// Unclaimed memory (MiB) per slot.
    pub free_mem: &'a [u64],
    /// Unclaimed GPUs per slot.
    pub free_gpus: &'a [u32],
    /// Running-allocation count per slot.
    pub jobs: &'a [u32],
    /// Sole owner per slot (`None` when idle or mixed-user).
    pub owner: &'a [Option<Uid>],
    /// `true` when the slot's node is `Up`.
    pub up: &'a [bool],
    /// Total cores per slot.
    pub cap_cores: &'a [u32],
    /// Total memory (MiB) per slot.
    pub cap_mem: &'a [u64],
    /// Total GPUs per slot.
    pub cap_gpus: &'a [u32],
}

/// Dense node storage: `SchedNode` slots plus SoA columns kept in sync.
#[derive(Debug, Clone, Default)]
pub struct NodeTable {
    slots: Vec<SchedNode>,
    free_cores: Vec<u32>,
    free_mem: Vec<u64>,
    free_gpus: Vec<u32>,
    jobs: Vec<u32>,
    owner: Vec<Option<Uid>>,
    up: Vec<bool>,
    cap_cores: Vec<u32>,
    cap_mem: Vec<u64>,
    cap_gpus: Vec<u32>,
}

/// Dense slot index for a node id (`NodeId(1)` → slot 0).
#[inline]
pub fn slot_of(id: NodeId) -> usize {
    (id.0 as usize).wrapping_sub(1)
}

impl NodeTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Append a node. Ids must arrive dense and ascending (the engine
    /// allocates them sequentially from 1); anything else would break the
    /// `slot = id - 1` addressing every column scan relies on.
    pub fn push(&mut self, node: SchedNode) {
        assert_eq!(
            slot_of(node.id),
            self.slots.len(),
            "node ids must be dense ascending"
        );
        self.free_cores.push(node.free_cores());
        self.free_mem.push(node.free_mem_mib());
        self.free_gpus.push(node.free_gpus());
        self.jobs.push(node.running.len() as u32);
        self.owner.push(node.owner());
        self.up.push(node.state == NodeState::Up);
        self.cap_cores.push(node.cores);
        self.cap_mem.push(node.mem_mib);
        self.cap_gpus.push(node.gpus);
        self.slots.push(node);
    }

    /// Refresh slot `id`'s columns from its `SchedNode`. The engine calls
    /// this from the mirror-update funnel after every claim / release /
    /// fail / repair, so column reads between scheduling decisions always
    /// see the slot's current state.
    pub fn sync(&mut self, id: NodeId) {
        let i = slot_of(id);
        // analyze:hot-path-begin(sched-soa-sync)
        if let Some(node) = self.slots.get(i) {
            if let Some(c) = self.free_cores.get_mut(i) {
                *c = node.free_cores();
            }
            if let Some(m) = self.free_mem.get_mut(i) {
                *m = node.free_mem_mib();
            }
            if let Some(g) = self.free_gpus.get_mut(i) {
                *g = node.free_gpus();
            }
            if let Some(j) = self.jobs.get_mut(i) {
                *j = node.running.len() as u32;
            }
            if let Some(o) = self.owner.get_mut(i) {
                *o = node.owner();
            }
            if let Some(u) = self.up.get_mut(i) {
                *u = node.state == NodeState::Up;
            }
        }
        // analyze:hot-path-end
    }

    /// The struct-of-arrays view for dense scans.
    pub fn cols(&self) -> NodeCols<'_> {
        NodeCols {
            free_cores: &self.free_cores,
            free_mem: &self.free_mem,
            free_gpus: &self.free_gpus,
            jobs: &self.jobs,
            owner: &self.owner,
            up: &self.up,
            cap_cores: &self.cap_cores,
            cap_mem: &self.cap_mem,
            cap_gpus: &self.cap_gpus,
        }
    }

    /// Borrow a node.
    pub fn get(&self, id: &NodeId) -> Option<&SchedNode> {
        self.slots.get(slot_of(*id))
    }

    /// Mutably borrow a node. Callers that change placement-relevant state
    /// must route through the engine's mirror-update funnel (which calls
    /// [`NodeTable::sync`]) before the next column scan.
    pub fn get_mut(&mut self, id: &NodeId) -> Option<&mut SchedNode> {
        self.slots.get_mut(slot_of(*id))
    }

    /// Iterate nodes in ascending id order.
    pub fn values(&self) -> std::slice::Iter<'_, SchedNode> {
        self.slots.iter()
    }
}

impl std::ops::Index<&NodeId> for NodeTable {
    type Output = SchedNode;

    fn index(&self, id: &NodeId) -> &SchedNode {
        &self.slots[slot_of(*id)]
    }
}

/// A node-id bitmap with ascending-id iteration — the intrusive free-list
/// analog for the idle/avail indexes (membership flips are O(1) bit ops;
/// iteration is a word scan instead of a `BTreeSet` pointer chase).
#[derive(Debug, Clone, Default)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no nodes are members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add `id`; returns `true` when it was not already present.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let bit = slot_of(id);
        let word = bit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        // analyze:hot-path-begin(sched-soa-nodeset)
        let mask = 1u64 << (bit % 64);
        if let Some(w) = self.words.get_mut(word) {
            if *w & mask == 0 {
                *w |= mask;
                self.len += 1;
                return true;
            }
        }
        // analyze:hot-path-end
        false
    }

    /// Remove `id`; returns `true` when it was present.
    pub fn remove(&mut self, id: &NodeId) -> bool {
        let bit = slot_of(*id);
        // analyze:hot-path-begin(sched-soa-nodeset)
        let mask = 1u64 << (bit % 64);
        if let Some(w) = self.words.get_mut(bit / 64) {
            if *w & mask != 0 {
                *w &= !mask;
                self.len -= 1;
                return true;
            }
        }
        // analyze:hot-path-end
        false
    }

    /// Membership test.
    pub fn contains(&self, id: &NodeId) -> bool {
        let bit = slot_of(*id);
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Iterate member ids in ascending order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending-id iterator over a [`NodeSet`].
#[derive(Debug)]
pub struct NodeSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for NodeSetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        // analyze:hot-path-begin(sched-soa-nodeset)
        while self.current == 0 {
            self.word_idx += 1;
            match self.words.get(self.word_idx) {
                Some(w) => self.current = *w,
                None => return None,
            }
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        let slot = self.word_idx * 64 + bit;
        // analyze:hot-path-end
        Some(NodeId(slot as u32 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, TaskAlloc};

    fn node(id: u32) -> SchedNode {
        SchedNode::new(NodeId(id), 16, 65_536, 2)
    }

    #[test]
    fn columns_track_claims_through_sync() {
        let mut t = NodeTable::new();
        t.push(node(1));
        t.push(node(2));
        assert_eq!(t.len(), 2);
        let alloc = TaskAlloc {
            tasks: 1,
            cores: 4,
            mem_mib: 1_000,
            gpus: 1,
        };
        t.get_mut(&NodeId(2)).unwrap().claim(JobId(7), alloc, Uid(9));
        // Columns are stale until the funnel syncs the slot.
        assert_eq!(t.cols().free_cores[1], 16);
        t.sync(NodeId(2));
        let c = t.cols();
        assert_eq!(c.free_cores[1], 12);
        assert_eq!(c.free_mem[1], 64_536);
        assert_eq!(c.free_gpus[1], 1);
        assert_eq!(c.jobs[1], 1);
        assert_eq!(c.owner[1], Some(Uid(9)));
        assert!(c.up[1]);
        assert_eq!(c.cap_cores[1], 16);
        assert_eq!(t[&NodeId(1)].id, NodeId(1));
        assert_eq!(
            t.values().map(|n| n.id.0).collect::<Vec<_>>(),
            vec![1, 2],
            "values() walks ascending ids"
        );
    }

    #[test]
    fn down_state_reaches_the_up_column() {
        let mut t = NodeTable::new();
        t.push(node(1));
        t.get_mut(&NodeId(1)).unwrap().state = NodeState::Down;
        t.sync(NodeId(1));
        assert!(!t.cols().up[0]);
    }

    #[test]
    #[should_panic(expected = "dense ascending")]
    fn sparse_ids_rejected() {
        let mut t = NodeTable::new();
        t.push(node(2));
    }

    #[test]
    fn nodeset_tracks_membership_in_id_order() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        for id in [130u32, 1, 64, 65, 2] {
            assert!(s.insert(NodeId(id)));
        }
        assert!(!s.insert(NodeId(64)), "double insert is a no-op");
        assert_eq!(s.len(), 5);
        assert!(s.contains(&NodeId(65)));
        assert!(!s.contains(&NodeId(3)));
        assert!(!s.contains(&NodeId(100_000)), "past-end probe is false");
        assert_eq!(
            s.iter().map(|n| n.0).collect::<Vec<_>>(),
            vec![1, 2, 64, 65, 130],
            "iteration is ascending like the BTreeSet it replaces"
        );
        assert!(s.remove(&NodeId(64)));
        assert!(!s.remove(&NodeId(64)));
        assert!(!s.remove(&NodeId(99_999)));
        assert_eq!(s.len(), 4);
        assert_eq!(
            s.iter().map(|n| n.0).collect::<Vec<_>>(),
            vec![1, 2, 65, 130]
        );
    }
}
