//! Node-sharing policies (paper Sec. IV-B).
//!
//! * [`NodeSharing::Shared`] — default Slurm: any user's tasks co-resident
//!   on a node. Best packing, worst blast radius and isolation.
//! * [`NodeSharing::Exclusive`] — `--exclusive` for every job: a job owns
//!   whole nodes. Full isolation, poor utilization for many-small-job
//!   workloads ("it results in poor utilization if a user is executing many
//!   bulk synchronous parallel jobs").
//! * [`NodeSharing::WholeNodeUser`] — LLSC's policy [refs 25, 26]: once a
//!   user's job lands on a node, only *that user's* jobs may fill the
//!   remaining capacity. One user per node at any instant, without giving
//!   up intra-user packing.
//!
//! # Where these rules are consulted
//!
//! [`NodeSharing::node_admits`] is the single admissibility predicate: the
//! engine's placement walk, the EASY-shadow / reservation-calendar replays
//! (via their capacity-vector `fit`, which mirrors this logic exactly —
//! placement exists **iff** the summed per-node fit covers the task
//! count), and the preemption feasibility check all answer through it or
//! its mirror. [`tasks_that_fit`] is the capacity half: how many tasks of
//! a spec the node's *cached* free counters admit, O(1) per node.
//!
//! Orthogonal axes that compose with the policy:
//!
//! * a per-job `--exclusive` request ([`crate::job::JobSpec::exclusive`])
//!   tightens any policy to an empty node and charges the whole node;
//! * the QoS class ([`crate::job::QosClass`]) never changes *where* a job
//!   may run — preemption frees capacity and then places through the same
//!   `node_admits` gate, so no policy invariant (e.g. one user per node)
//!   is ever violated by urgency.

use crate::job::JobSpec;
use crate::node::{NodeState, SchedNode};
use eus_simos::Uid;
use std::fmt;

/// The cluster-wide node-sharing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSharing {
    /// Multiple users per node.
    Shared,
    /// Whole nodes per job.
    Exclusive,
    /// Whole nodes per **user** (the paper's policy).
    WholeNodeUser,
}

impl fmt::Display for NodeSharing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeSharing::Shared => "shared",
            NodeSharing::Exclusive => "exclusive",
            NodeSharing::WholeNodeUser => "whole-node",
        })
    }
}

impl NodeSharing {
    /// All three, for experiment sweeps.
    pub fn all() -> [NodeSharing; 3] {
        [
            NodeSharing::Shared,
            NodeSharing::Exclusive,
            NodeSharing::WholeNodeUser,
        ]
    }

    /// May tasks of `user` be placed on `node` under this policy (capacity
    /// aside)? A per-job `--exclusive` request tightens Shared/WholeNodeUser
    /// to an empty node.
    pub fn node_admits(&self, node: &SchedNode, user: Uid, spec: &JobSpec) -> bool {
        if node.state != NodeState::Up {
            return false;
        }
        if spec.request_exclusive && !node.is_idle() {
            return false;
        }
        match self {
            NodeSharing::Shared => true,
            NodeSharing::Exclusive => node.is_idle(),
            NodeSharing::WholeNodeUser => match node.owner() {
                None => true,
                Some(owner) => owner == user,
            },
        }
    }

    /// Does this policy charge the whole node to a job placed on it?
    /// (Exclusive jobs hold every core even if tasks need fewer.)
    pub fn charges_whole_node(&self, spec: &JobSpec) -> bool {
        matches!(self, NodeSharing::Exclusive) || spec.request_exclusive
    }
}

/// How many tasks of `spec` fit in the node's current free capacity.
pub fn tasks_that_fit(node: &SchedNode, spec: &JobSpec) -> u32 {
    if node.state != NodeState::Up {
        return 0;
    }
    let by_cores = node.free_cores() / spec.cpus_per_task.max(1);
    let by_mem = node
        .free_mem_mib()
        .checked_div(spec.mem_per_task_mib)
        .map_or(u32::MAX, |n| n.min(u32::MAX as u64) as u32);
    let by_gpus = node
        .free_gpus()
        .checked_div(spec.gpus_per_task)
        .unwrap_or(u32::MAX);
    by_cores.min(by_mem).min(by_gpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, TaskAlloc};
    use eus_simcore::SimDuration;
    use eus_simos::NodeId;

    fn node() -> SchedNode {
        SchedNode::new(NodeId(1), 16, 32_768, 2)
    }

    fn spec(user: u32) -> JobSpec {
        JobSpec::new(Uid(user), "j", SimDuration::from_secs(10))
            .with_cpus_per_task(2)
            .with_mem_per_task(4096)
    }

    #[test]
    fn shared_admits_everyone() {
        let mut n = node();
        n.claim(
            JobId(1),
            TaskAlloc {
                tasks: 1,
                cores: 2,
                mem_mib: 4096,
                gpus: 0,
            },
            Uid(1),
        );
        assert!(NodeSharing::Shared.node_admits(&n, Uid(2), &spec(2)));
    }

    #[test]
    fn exclusive_requires_idle() {
        let mut n = node();
        assert!(NodeSharing::Exclusive.node_admits(&n, Uid(1), &spec(1)));
        n.claim(
            JobId(1),
            TaskAlloc {
                tasks: 1,
                cores: 2,
                mem_mib: 4096,
                gpus: 0,
            },
            Uid(1),
        );
        // Even the same user cannot add an exclusive job to a busy node.
        assert!(!NodeSharing::Exclusive.node_admits(&n, Uid(1), &spec(1)));
    }

    #[test]
    fn whole_node_admits_owner_only() {
        let mut n = node();
        assert!(NodeSharing::WholeNodeUser.node_admits(&n, Uid(1), &spec(1)));
        n.claim(
            JobId(1),
            TaskAlloc {
                tasks: 1,
                cores: 2,
                mem_mib: 4096,
                gpus: 0,
            },
            Uid(1),
        );
        assert!(NodeSharing::WholeNodeUser.node_admits(&n, Uid(1), &spec(1)));
        assert!(!NodeSharing::WholeNodeUser.node_admits(&n, Uid(2), &spec(2)));
    }

    #[test]
    fn per_job_exclusive_request_respected() {
        let mut n = node();
        n.claim(
            JobId(1),
            TaskAlloc {
                tasks: 1,
                cores: 2,
                mem_mib: 4096,
                gpus: 0,
            },
            Uid(1),
        );
        let excl = spec(1).exclusive();
        assert!(!NodeSharing::Shared.node_admits(&n, Uid(1), &excl));
        assert!(NodeSharing::Shared.charges_whole_node(&excl));
        assert!(!NodeSharing::Shared.charges_whole_node(&spec(1)));
        assert!(NodeSharing::Exclusive.charges_whole_node(&spec(1)));
    }

    #[test]
    fn down_node_admits_nothing() {
        let mut n = node();
        n.state = NodeState::Down;
        assert!(!NodeSharing::Shared.node_admits(&n, Uid(1), &spec(1)));
        assert_eq!(tasks_that_fit(&n, &spec(1)), 0);
    }

    #[test]
    fn fit_is_min_over_resources() {
        let n = node(); // 16 cores, 32 GiB, 2 GPUs
        let s = spec(1); // 2 cores + 4 GiB per task → 8 by cores, 8 by mem
        assert_eq!(tasks_that_fit(&n, &s), 8);
        let gpu_spec = spec(1).with_gpus_per_task(1); // 2 GPUs → 2 tasks
        assert_eq!(tasks_that_fit(&n, &gpu_spec), 2);
        let fat_mem = spec(1).with_mem_per_task(20_000); // 1 by memory
        assert_eq!(tasks_that_fit(&n, &fat_mem), 1);
    }
}
