//! Jobs: what users submit.

use eus_simcore::{SimDuration, SimTime};
use eus_simos::{NodeId, Uid};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Job identifier, dense and increasing in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job:{}", self.0)
    }
}

/// Broad job categories; interactive/web jobs matter to the portal and to
/// `pam_slurm` experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Classic batch job.
    Batch,
    /// Interactive shell/session.
    Interactive,
    /// A job exposing a web interface (Jupyter, TensorBoard, …).
    WebApp,
}

/// Quality-of-service class: the priority band a job submits under, and the
/// input to the scheduler's preemption rule (`SchedConfig::preemption`).
///
/// Classes are ordered. A job may displace (kill-and-requeue, with the full
/// separation epilog — node scrub, process cleanup — between the victim and
/// the new tenant) only jobs of a *strictly lower* class, and only the two
/// latency-sensitive classes ([`Interactive`](QosClass::Interactive) and
/// [`Urgent`](QosClass::Urgent)) are preemptors at all: `Normal` work never
/// preempts `Bulk` work, it just outranks it in fair-share ties. With
/// `SchedConfig::preemption` off (the default) the class is carried but
/// ignored, so traces decorated with QoS stay bit-identical to the
/// reference scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Throughput work: sweeps, long MPI production runs. Preemptible by
    /// every higher class.
    Bulk,
    /// The default band.
    Normal,
    /// Latency-sensitive interactive/debug sessions. May preempt `Bulk`.
    Interactive,
    /// On-demand / operational urgency (the LLSC "rapid response" shape).
    /// May preempt `Bulk`, `Normal`, and `Interactive`.
    Urgent,
}

impl QosClass {
    /// Numeric rank: higher outranks lower.
    pub fn rank(self) -> u8 {
        match self {
            QosClass::Bulk => 0,
            QosClass::Normal => 1,
            QosClass::Interactive => 2,
            QosClass::Urgent => 3,
        }
    }

    /// May a job of this class displace a running job of `victim`'s class?
    /// Only latency-sensitive classes preempt, and only strictly downward.
    pub fn may_preempt(self, victim: QosClass) -> bool {
        self >= QosClass::Interactive && victim < self
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QosClass::Bulk => "bulk",
            QosClass::Normal => "normal",
            QosClass::Interactive => "interactive",
            QosClass::Urgent => "urgent",
        })
    }
}

/// What a job asks for and how it behaves once started.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Submitting user.
    pub user: Uid,
    /// Human-readable name (visible in `squeue`, hence privacy-relevant).
    pub name: String,
    /// Number of tasks (MPI ranks / sweep points).
    pub tasks: u32,
    /// Cores per task.
    pub cpus_per_task: u32,
    /// Memory per task, MiB.
    pub mem_per_task_mib: u64,
    /// GPUs per task.
    pub gpus_per_task: u32,
    /// Actual runtime once started.
    pub duration: SimDuration,
    /// Requested wall-time limit (the backfill bound). Defaults to
    /// `duration` in the builder.
    pub time_limit: SimDuration,
    /// Job kind.
    pub kind: JobKind,
    /// Target partition; `None` routes to the default partition (or to all
    /// nodes when partitioning is not configured).
    pub partition: Option<String>,
    /// Command line — what other users could read at `hidepid=0`.
    pub cmdline: Vec<String>,
    /// Environment passed to tasks (CVE-2020-27746's secret lives here or on
    /// the cmdline depending on the scenario).
    pub environ: BTreeMap<String, String>,
    /// If true, the job requests `--exclusive` at submission.
    pub request_exclusive: bool,
    /// QoS class: priority band and preemption standing. Ignored unless the
    /// scheduler's policy plane (`SchedConfig::preemption`) is enabled.
    pub qos: QosClass,
}

impl JobSpec {
    /// A minimal single-task batch job; customize with the `with_*` methods.
    pub fn new(user: Uid, name: impl Into<String>, duration: SimDuration) -> Self {
        JobSpec {
            user,
            name: name.into(),
            tasks: 1,
            cpus_per_task: 1,
            mem_per_task_mib: 1024,
            gpus_per_task: 0,
            duration,
            time_limit: duration,
            kind: JobKind::Batch,
            partition: None,
            cmdline: Vec::new(),
            environ: BTreeMap::new(),
            request_exclusive: false,
            qos: QosClass::Normal,
        }
    }

    /// Builder: target partition.
    pub fn with_partition(mut self, name: impl Into<String>) -> Self {
        self.partition = Some(name.into());
        self
    }

    /// Builder: number of tasks.
    pub fn with_tasks(mut self, tasks: u32) -> Self {
        self.tasks = tasks.max(1);
        self
    }

    /// Builder: cores per task.
    pub fn with_cpus_per_task(mut self, cpus: u32) -> Self {
        self.cpus_per_task = cpus.max(1);
        self
    }

    /// Builder: memory per task (MiB).
    pub fn with_mem_per_task(mut self, mib: u64) -> Self {
        self.mem_per_task_mib = mib;
        self
    }

    /// Builder: GPUs per task.
    pub fn with_gpus_per_task(mut self, gpus: u32) -> Self {
        self.gpus_per_task = gpus;
        self
    }

    /// Builder: wall-time limit (defaults to the duration).
    pub fn with_time_limit(mut self, limit: SimDuration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Builder: job kind.
    pub fn with_kind(mut self, kind: JobKind) -> Self {
        self.kind = kind;
        self
    }

    /// Builder: command line.
    pub fn with_cmdline(mut self, argv: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.cmdline = argv.into_iter().map(Into::into).collect();
        self
    }

    /// Builder: one environment variable.
    pub fn with_env(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.environ.insert(k.into(), v.into());
        self
    }

    /// Builder: request `--exclusive`.
    pub fn exclusive(mut self) -> Self {
        self.request_exclusive = true;
        self
    }

    /// Builder: QoS class.
    pub fn with_qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }

    /// Total cores requested.
    pub fn total_cores(&self) -> u64 {
        self.tasks as u64 * self.cpus_per_task as u64
    }

    /// Total memory requested (MiB).
    pub fn total_mem_mib(&self) -> u64 {
        self.tasks as u64 * self.mem_per_task_mib
    }

    /// Total GPUs requested.
    pub fn total_gpus(&self) -> u64 {
        self.tasks as u64 * self.gpus_per_task as u64
    }
}

/// Job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in queue.
    Pending,
    /// Dispatched and executing.
    Running,
    /// Finished normally.
    Completed,
    /// Killed by a node failure (or OOM).
    Failed,
    /// Killed for exceeding its requested wall-time limit.
    Timeout,
    /// Removed before starting.
    Cancelled,
}

impl JobState {
    /// Terminal states never change again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled | JobState::Timeout
        )
    }
}

/// Resources a job holds on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAlloc {
    /// Tasks placed on this node.
    pub tasks: u32,
    /// Cores claimed.
    pub cores: u32,
    /// Memory claimed (MiB).
    pub mem_mib: u64,
    /// GPUs claimed.
    pub gpus: u32,
}

/// A job as tracked by the scheduler.
///
/// The spec sits behind an [`Arc`] so scheduling cycles and view queries
/// (`squeue`) share it instead of deep-cloning cmdline/name strings — field
/// access is unchanged (`job.spec.user` auto-derefs).
#[derive(Debug, Clone)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// The request (shared, immutable once submitted).
    pub spec: Arc<JobSpec>,
    /// Lifecycle state.
    pub state: JobState,
    /// Submission time.
    pub submitted: SimTime,
    /// Dispatch time, once running.
    pub started: Option<SimTime>,
    /// Completion/failure time.
    pub ended: Option<SimTime>,
    /// Per-node resource holdings while running. Set exactly once at
    /// dispatch and never mutated while the job is running — the engine's
    /// `running_ends` index snapshots it at start time, and the shadow
    /// replay and calendar profile read that snapshot instead of this map.
    pub allocations: BTreeMap<NodeId, TaskAlloc>,
}

impl Job {
    /// Queue wait so far / at start.
    pub fn wait_time(&self) -> Option<SimDuration> {
        self.started.map(|s| s.since(self.submitted))
    }

    /// Core-seconds actually consumed (0 until ended).
    pub fn core_seconds(&self) -> f64 {
        match (self.started, self.ended) {
            (Some(s), Some(e)) => {
                let cores: u64 = self.allocations.values().map(|a| a.cores as u64).sum();
                cores as f64 * e.since(s).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_totals() {
        let s = JobSpec::new(Uid(1), "sweep", SimDuration::from_secs(60))
            .with_tasks(8)
            .with_cpus_per_task(2)
            .with_mem_per_task(2048)
            .with_gpus_per_task(1);
        assert_eq!(s.total_cores(), 16);
        assert_eq!(s.total_mem_mib(), 16384);
        assert_eq!(s.total_gpus(), 8);
        assert_eq!(s.time_limit, s.duration, "limit defaults to duration");
        assert_eq!(s.kind, JobKind::Batch);
    }

    #[test]
    fn zero_guards() {
        let s = JobSpec::new(Uid(1), "x", SimDuration::from_secs(1))
            .with_tasks(0)
            .with_cpus_per_task(0);
        assert_eq!(s.tasks, 1);
        assert_eq!(s.cpus_per_task, 1);
    }

    #[test]
    fn qos_preemption_lattice() {
        use QosClass::*;
        assert_eq!(
            JobSpec::new(Uid(1), "j", SimDuration::from_secs(1)).qos,
            Normal
        );
        // Only latency-sensitive classes preempt, strictly downward.
        assert!(Urgent.may_preempt(Interactive));
        assert!(Urgent.may_preempt(Normal));
        assert!(Urgent.may_preempt(Bulk));
        assert!(Interactive.may_preempt(Bulk));
        assert!(Interactive.may_preempt(Normal));
        assert!(!Interactive.may_preempt(Interactive));
        assert!(!Interactive.may_preempt(Urgent));
        assert!(!Normal.may_preempt(Bulk), "Normal is not a preemptor");
        assert!(!Bulk.may_preempt(Bulk));
        assert!(Bulk.rank() < Normal.rank() && Normal.rank() < Interactive.rank());
        assert_eq!(Urgent.to_string(), "urgent");
    }

    #[test]
    fn terminal_states() {
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Pending.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn core_seconds_accounting() {
        let spec = JobSpec::new(Uid(1), "j", SimDuration::from_secs(10)).with_tasks(4);
        let mut job = Job {
            id: JobId(1),
            spec: Arc::new(spec),
            state: JobState::Completed,
            submitted: SimTime::ZERO,
            started: Some(SimTime::from_secs(5)),
            ended: Some(SimTime::from_secs(15)),
            allocations: BTreeMap::from([(
                NodeId(1),
                TaskAlloc {
                    tasks: 4,
                    cores: 4,
                    mem_mib: 4096,
                    gpus: 0,
                },
            )]),
        };
        assert_eq!(job.core_seconds(), 40.0);
        assert_eq!(job.wait_time(), Some(SimDuration::from_secs(5)));
        job.started = None;
        assert_eq!(job.core_seconds(), 0.0);
    }
}
